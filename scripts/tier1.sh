#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from the repo root:
#
#   scripts/tier1.sh                # gate only (includes the bench smoke)
#   scripts/tier1.sh --bench        # gate + bench JSONs
#   scripts/tier1.sh --faults       # gate + release-mode fault-injection suite
#   scripts/tier1.sh --monitor      # gate + delta-log/monitor crash suites
#   scripts/tier1.sh --concurrency  # gate + snapshot-reader / delta-handoff
#                                   #   concurrency suites (release)
#   scripts/tier1.sh --packed       # packed-layout stage only (release
#                                   #   equivalence suites + packed bench smoke)
#   scripts/tier1.sh --bench-smoke  # bench smoke stage only
#
# The bench step writes BENCH_parallel_audit.json, BENCH_audit_plan.json,
# BENCH_compiled_population.json, BENCH_delta_audit.json,
# BENCH_delta_log.json, BENCH_packed_population.json, and
# BENCH_snapshot_readers.json at the repo root (median/mean ns plus host
# metadata; see crates/bench/benches/).
#
# The bench smoke runs every bench binary at tiny population sizes
# (QPV_BENCH_SMOKE=1, see qpv_bench::bench_n) purely as a correctness
# check: each sample asserts its reports against the oracle, so a broken
# fast path fails here in seconds without waiting on full-size benches.
#
# The fault step re-runs the crash-torture matrix (crash-stop/torn-write at
# every I/O op index) and the WAL bit/byte-flip corruption properties under
# the release optimizer. Both suites are clock-free and seed-pinned (the
# torture seeds are the op indices themselves; the vendored proptest
# derives its RNG from the test name), so a failure here reproduces
# byte-for-byte on any machine. Any panic fails the stage, and backtraces
# are captured.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke() {
    echo "== bench smoke (tiny populations, oracle-asserted) =="
    QPV_BENCH_SMOKE=1 cargo bench -p qpv-bench
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke
    echo "tier-1 bench smoke: OK"
    exit 0
fi

if [[ "${1:-}" == "--packed" ]]; then
    # Targeted gate for the packed-lane, row-deduplicated population
    # layout (PR 7): the equivalence suites that pin the packed counts /
    # sweep / delta paths byte-identical to `run_reference`, under the
    # release optimizer, plus the packed bench in smoke mode (every
    # sample asserts its aggregates against the string-path oracle).
    echo "== packed: population equivalence (release) =="
    cargo test -q --release -p qpv-core --test pop_equivalence
    echo "== packed: delta equivalence (release) =="
    cargo test -q --release -p qpv-core --test delta_equivalence
    echo "== packed: bench smoke (oracle-asserted) =="
    QPV_BENCH_SMOKE=1 cargo bench -p qpv-bench --bench packed_population
    echo "tier-1 packed: OK"
    exit 0
fi

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== plan equivalence (release) =="
# The compiled-plan == string-path contract, re-checked under the exact
# optimization level the benches and production builds use.
cargo test -q --release -p qpv-core --test plan_equivalence

echo "== population equivalence (release) =="
# Same contract for the compiled structure-of-arrays population: one
# compile, sequential/parallel/multi-policy passes all byte-identical to
# the string-path oracle.
cargo test -q --release -p qpv-core --test pop_equivalence

echo "== delta equivalence (release) =="
# The incremental contract: random delta sequences applied in place (to
# the compiled population and to a live auditor) land byte-identically on
# a fresh compile+audit of the mutated profiles, flat and lattice,
# sequential and parallel.
cargo test -q --release -p qpv-core --test delta_equivalence

bench_smoke

if [[ "${1:-}" == "--faults" ]]; then
    # Wall-clock budget: the whole fault stage must finish inside this
    # many seconds (the matrix is ~2 s in release; the cap catches
    # recovery livelocks, not slowness).
    FAULT_BUDGET="${QPV_FAULT_BUDGET:-300}"
    echo "== fault injection: crash torture matrix (release, ${FAULT_BUDGET}s budget) =="
    RUST_BACKTRACE=1 timeout "$FAULT_BUDGET" \
        cargo test -q --release -p qpv-reldb --test torture -- --nocapture
    echo "== fault injection: WAL corruption properties (release) =="
    RUST_BACKTRACE=1 timeout "$FAULT_BUDGET" \
        cargo test -q --release -p qpv-reldb --test wal_corruption
    echo "== fault injection: audit worker panic containment (release) =="
    RUST_BACKTRACE=1 timeout "$FAULT_BUDGET" \
        cargo test -q --release --test par_faults
fi

if [[ "${1:-}" == "--monitor" ]]; then
    # Same shape as --faults, aimed at the continuous-monitoring stack:
    # the delta-log torture matrix (crash-stop/torn-write at every
    # delta-log I/O op index, plus flaky-medium retries) and the
    # kill-and-recover monitor suite under synthetic churn. Both are
    # clock-free and seed-pinned like the reldb matrix.
    MONITOR_BUDGET="${QPV_MONITOR_BUDGET:-300}"
    echo "== monitor: delta-log crash torture matrix (release, ${MONITOR_BUDGET}s budget) =="
    RUST_BACKTRACE=1 timeout "$MONITOR_BUDGET" \
        cargo test -q --release -p qpv-core --test deltalog_torture -- --nocapture
    echo "== monitor: kill-and-recover under churn (release) =="
    RUST_BACKTRACE=1 timeout "$MONITOR_BUDGET" \
        cargo test -q --release --test monitor_recovery
fi

if [[ "${1:-}" == "--concurrency" ]]; then
    # The PR 8 gate: snapshot-isolated readers under live writes, crashes
    # and reclamation included, plus the exactly-once delta-handoff
    # property, all under the release optimizer (real-thread stress only
    # races usefully with optimized codegen). Clock-free and seed-pinned
    # except the threaded stress tests, whose invariants are
    # schedule-independent. The budget catches deadlocks and reader
    # livelocks, not slowness.
    CONC_BUDGET="${QPV_CONC_BUDGET:-300}"
    echo "== concurrency: snapshot-reader torture matrix (release, ${CONC_BUDGET}s budget) =="
    RUST_BACKTRACE=1 timeout "$CONC_BUDGET" \
        cargo test -q --release -p qpv-reldb --test concurrent_torture -- --nocapture
    echo "== concurrency: delta handoff exactly-once property (release) =="
    RUST_BACKTRACE=1 timeout "$CONC_BUDGET" \
        cargo test -q --release -p qpv-core --test concurrent_handoff
    echo "== concurrency: snapshot reader bench (writer p50/p99 + JSON) =="
    RUST_BACKTRACE=1 timeout "$CONC_BUDGET" \
        env QPV_BENCH_SMOKE=1 QPV_BENCH_JSON="$PWD/BENCH_snapshot_readers.json" \
        cargo bench -p qpv-bench --bench snapshot_readers
    echo "tier-1 concurrency: OK"
    exit 0
fi

if [[ "${1:-}" == "--bench" ]]; then
    echo "== parallel audit bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_parallel_audit.json" \
        cargo bench -p qpv-bench --bench parallel_audit
    echo "== audit plan bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_audit_plan.json" \
        cargo bench -p qpv-bench --bench audit_plan
    echo "== compiled population bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_compiled_population.json" \
        cargo bench -p qpv-bench --bench compiled_population
    echo "== delta audit bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_delta_audit.json" \
        cargo bench -p qpv-bench --bench delta_audit
    echo "== delta log bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_delta_log.json" \
        cargo bench -p qpv-bench --bench delta_log
    echo "== packed population bench (10M providers) =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_packed_population.json" \
        cargo bench -p qpv-bench --bench packed_population
    echo "== snapshot readers bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_snapshot_readers.json" \
        cargo bench -p qpv-bench --bench snapshot_readers
fi

echo "tier-1: OK"
