#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from the repo root:
#
#   scripts/tier1.sh            # gate only
#   scripts/tier1.sh --bench    # gate + parallel-audit bench JSON
#
# The bench step writes BENCH_parallel_audit.json at the repo root
# (median/mean ns per thread count; see crates/bench/benches/parallel_audit.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

if [[ "${1:-}" == "--bench" ]]; then
    echo "== parallel audit bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_parallel_audit.json" \
        cargo bench -p qpv-bench --bench parallel_audit
fi

echo "tier-1: OK"
