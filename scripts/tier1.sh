#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from the repo root:
#
#   scripts/tier1.sh            # gate only
#   scripts/tier1.sh --bench    # gate + bench JSONs
#
# The bench step writes BENCH_parallel_audit.json and BENCH_audit_plan.json
# at the repo root (median/mean ns; see crates/bench/benches/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== plan equivalence (release) =="
# The compiled-plan == string-path contract, re-checked under the exact
# optimization level the benches and production builds use.
cargo test -q --release -p qpv-core --test plan_equivalence

if [[ "${1:-}" == "--bench" ]]; then
    echo "== parallel audit bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_parallel_audit.json" \
        cargo bench -p qpv-bench --bench parallel_audit
    echo "== audit plan bench =="
    QPV_BENCH_FULL=1 QPV_BENCH_JSON="$PWD/BENCH_audit_plan.json" \
        cargo bench -p qpv-bench --bench audit_plan
fi

echo "tier-1: OK"
