//! The owned data-model tree every serialization passes through.

use std::fmt;
use std::ops::Index;

/// A JSON-shaped value.
///
/// Integers are held as `i128` so every `u64` (and the workspace's `u128`
/// violation totals, which stay far below `i128::MAX`) round-trips exactly.
/// Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON integers.
    Int(i128),
    /// JSON non-integral numbers.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload as i64, if any and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer payload as u64, if any and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The numeric payload as f64 (integers convert), if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `value["key"]` on objects; `Null` for missing members or non-objects
/// (matching `serde_json`'s panic-free indexing).
impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: &Value = &Value::Null;
        self.get(key).unwrap_or(NULL)
    }
}

/// `value[i]` on arrays; `Null` out of range or on non-arrays.
impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: &Value = &Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(NULL),
            _ => NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (used by `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write_f64(f, *x),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Render an f64 as JSON: non-finite becomes `null` (as `serde_json` has no
/// representation for it), and finite values keep a `.0` so they re-parse
/// as floats.
pub(crate) fn write_f64(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    if x == x.trunc() && x.abs() < 1e15 {
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

/// Render a string with JSON escaping.
pub(crate) fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_total() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v["a"], 1i64);
        assert!(v["missing"].is_null());
        assert!(v[0].is_null());
        let arr = Value::Array(vec![Value::Bool(true)]);
        assert_eq!(arr[0], true);
        assert!(arr[9].is_null());
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("a\"b".into())),
            ("n".into(), Value::Float(1.0)),
            ("l".into(), Value::Array(vec![Value::Null, Value::Int(-3)])),
        ]);
        assert_eq!(v.to_string(), r#"{"s":"a\"b","n":1.0,"l":[null,-3]}"#);
    }
}
