//! Vendored serde core.
//!
//! A value-tree serialization framework exposing the subset of the real
//! `serde` API this workspace uses: the [`Serialize`] / [`Deserialize`]
//! traits (with matching `#[derive]` macros from `serde_derive`), the
//! `ser`/`de` module paths, and `#[serde(transparent)]`.
//!
//! Unlike real serde's streaming visitor architecture, serialization here
//! goes through an owned [`value::Value`] tree: `Serialize` renders into a
//! `Value` via any [`ser::Serializer`], and `Deserialize` consumes a
//! `Value` pulled from any [`de::Deserializer`]. That keeps custom impls
//! written against the real serde signatures (`serializer.serialize_str`,
//! `String::deserialize(deserializer)?`) source-compatible while staying a
//! few hundred lines with no proc-macro dependencies beyond the companion
//! derive crate.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros share their trait names, living in the macro namespace.
pub use serde_derive::{Deserialize, Serialize};

/// Support machinery for the derive macros. Not a public API.
#[doc(hidden)]
pub mod __private {
    use crate::de::{DeError, Error as _};
    use crate::value::Value;

    pub use crate::de::from_value;
    pub use crate::ser::to_value;

    /// Unwrap an object payload, or error with the expected type name.
    pub fn expect_object(v: Value, ty: &str) -> Result<Vec<(String, Value)>, DeError> {
        match v {
            Value::Object(fields) => Ok(fields),
            other => Err(DeError::custom(format!(
                "expected object for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwrap an array payload, or error with the expected type name.
    pub fn expect_array(v: Value, ty: &str) -> Result<Vec<Value>, DeError> {
        match v {
            Value::Array(items) => Ok(items),
            other => Err(DeError::custom(format!(
                "expected array for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Remove a named field from an object; missing fields read as `Null`
    /// (so `Option` fields deserialize to `None`, and every other type
    /// reports a type error naming the field).
    pub fn take_field(fields: &mut Vec<(String, Value)>, name: &str) -> Value {
        match fields.iter().position(|(k, _)| k == name) {
            Some(i) => fields.swap_remove(i).1,
            None => Value::Null,
        }
    }

    /// Deserialize one struct field, contextualizing errors with its name.
    pub fn parse_field<T: for<'de> crate::Deserialize<'de>>(
        fields: &mut Vec<(String, Value)>,
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        from_value(take_field(fields, name))
            .map_err(|e| DeError::custom(format!("{ty}.{name}: {e}")))
    }
}
