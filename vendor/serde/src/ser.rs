//! Serialization: types render themselves into a [`Value`] through any
//! [`Serializer`].

use std::collections::{BTreeMap, HashMap};
use std::convert::Infallible;
use std::fmt::Display;

use crate::value::Value;

/// Errors a serializer may produce.
pub trait Error: Sized + std::fmt::Debug {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

impl Error for Infallible {
    fn custom<T: Display>(msg: T) -> Self {
        unreachable!("infallible serializer reported: {msg}")
    }
}

/// A sink for one value.
///
/// The single required method is [`Serializer::serialize_value`]; the
/// `serialize_*` conveniences mirror real serde's method names so custom
/// `Serialize` impls written against the real API compile unchanged.
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// The error type.
    type Error: Error;

    /// Consume a fully-built data-model value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }

    /// Serialize a bool.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serialize an i64.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v as i128))
    }

    /// Serialize a u64.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v as i128))
    }

    /// Serialize an i128.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }

    /// Serialize a u128 (must fit in `i128`, which every workspace value does).
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error> {
        match i128::try_from(v) {
            Ok(i) => self.serialize_value(Value::Int(i)),
            Err(_) => Err(Self::Error::custom("u128 value exceeds data model range")),
        }
    }

    /// Serialize a u8.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }

    /// Serialize a u16.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }

    /// Serialize a u32.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }

    /// Serialize an i8.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }

    /// Serialize an i16.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }

    /// Serialize an i32.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }

    /// Serialize an f64.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }

    /// Serialize an f32.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(v as f64)
    }

    /// Serialize a unit.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(to_value(value))
    }
}

/// A serializable type.
pub trait Serialize {
    /// Render `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The canonical serializer: yields the built [`Value`] itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Infallible;

    fn serialize_value(self, v: Value) -> Result<Value, Infallible> {
        Ok(v)
    }
}

/// Serialize anything into a data-model [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
    }
}

/// Render a map key: strings pass through, integers and bools print — the
/// superset `serde_json` accepts plus integer-newtype keys like
/// `ProviderId`, which this workspace stores in `HashMap`s.
fn key_string<K: Serialize>(key: &K) -> String {
    match to_value(key) {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

// ---- impls for std types ----

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Int(*self as i128))
            }
        }
    )*};
}
impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u128(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Array(vec![$(to_value(&self.$n)),+]))
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let fields = self
            .iter()
            .map(|(k, v)| (key_string(k), to_value(v)))
            .collect();
        serializer.serialize_value(Value::Object(fields))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let fields = self
            .iter()
            .map(|(k, v)| (key_string(k), to_value(v)))
            .collect();
        serializer.serialize_value(Value::Object(fields))
    }
}
