//! Deserialization: types rebuild themselves from the [`Value`] a
//! [`Deserializer`] yields.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};

use crate::value::Value;

/// Errors a deserializer may produce.
pub trait Error: Sized + std::fmt::Debug {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The concrete error used by value-tree deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A source of one value.
///
/// The lifetime parameter mirrors real serde's signature so impls written
/// as `impl<'de> Deserialize<'de> for T` compile unchanged; all values here
/// are owned, so nothing actually borrows from the input.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: Error;

    /// Yield the complete data-model value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A deserializable type.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The canonical deserializer over an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Rebuild any deserializable type from a data-model [`Value`].
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(value))
}

fn type_err<T>(expected: &str, found: &Value) -> Result<T, DeError> {
    Err(DeError::custom(format!(
        "expected {expected}, found {}",
        found.kind()
    )))
}

// ---- impls for std types ----

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => type_err("bool", &other).map_err(convert::<D>),
        }
    }
}

/// Re-wrap a `DeError` into the deserializer's error type.
fn convert<'de, D: Deserializer<'de>>(e: DeError) -> D::Error {
    D::Error::custom(e)
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::Int(i) => <$t>::try_from(i).map_err(|_| {
                        D::Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => type_err(stringify!($t), &other).map_err(convert::<D>),
                }
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            other => type_err("f64", &other).map_err(convert::<D>),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => type_err("string", &other).map_err(convert::<D>),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(()),
            other => type_err("null", &other).map_err(convert::<D>),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(convert::<D>),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(convert::<D>))
                .collect(),
            other => type_err("array", &other).map_err(convert::<D>),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                match d.take_value()? {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_value::<$t>(it.next().expect("length checked"))
                                .map_err(convert::<De>)?,
                        )+))
                    }
                    Value::Array(items) => Err(De::Error::custom(format!(
                        "expected {}-tuple, found array of {}",
                        $len,
                        items.len()
                    ))),
                    other => type_err("tuple array", &other).map_err(convert::<De>),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Decode one map key: try the raw string, then (for integer-newtype keys
/// like `ProviderId`) its integer reading.
fn key_from_string<'de, K: Deserialize<'de>>(key: String) -> Result<K, DeError> {
    let parsed_int = key.parse::<i128>();
    match from_value::<K>(Value::Str(key)) {
        Ok(k) => Ok(k),
        Err(e) => match parsed_int {
            Ok(i) => from_value::<K>(Value::Int(i)).map_err(|_| e),
            Err(_) => Err(e),
        },
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string::<K>(k).map_err(convert::<D>)?,
                        from_value::<V>(v).map_err(convert::<D>)?,
                    ))
                })
                .collect(),
            other => type_err("object", &other).map_err(convert::<D>),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string::<K>(k).map_err(convert::<D>)?,
                        from_value::<V>(v).map_err(convert::<D>)?,
                    ))
                })
                .collect(),
            other => type_err("object", &other).map_err(convert::<D>),
        }
    }
}
