//! Vendored `Serialize` / `Deserialize` derive macros.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline): a small token walker parses the struct or enum
//! shape, and codegen emits impls against the value-tree core in the
//! vendored `serde` crate.
//!
//! Supported shapes — the full set this workspace uses:
//!
//! * structs with named fields (plus `#[serde(transparent)]` newtypes)
//! * tuple structs (1-field newtypes serialize as their inner value,
//!   wider ones as arrays)
//! * unit structs
//! * enums with unit, newtype, tuple, and struct variants, in serde's
//!   externally-tagged representation
//!
//! Generic type parameters are not supported (nothing in the workspace
//! derives on a generic type); the macro panics with a clear message if it
//! meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---- parsing ----

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments and #[serde(...)]).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_transparent(g.stream()) {
                        transparent = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) and friends.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for item kind `{other}`"),
    };

    Input {
        name,
        transparent,
        kind,
    }
}

fn attr_is_serde_transparent(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.get(1) {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "transparent")),
        _ => false,
    }
}

/// Split a token sequence on top-level commas, treating `<...>` nesting as
/// opaque (group delimiters are already single trees).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Drop leading attributes and visibility from one field/variant chunk.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            };
            match chunk.get(1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("serde_derive: expected ':' after field {name}, found {other:?}"),
            }
            Field {
                name,
                ty: tokens_to_string(&chunk[2..]),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .iter()
        .map(|chunk| tokens_to_string(strip_attrs_and_vis(chunk)))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    split_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            let shape = match chunk.get(1) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                // `Variant = 3` discriminants: value irrelevant to serde's
                // name-based representation.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => Shape::Unit,
                other => panic!("serde_derive: unsupported variant body for {name}: {other:?}"),
            };
            (name, shape)
        })
        .collect()
}

// ---- codegen ----

const VALUE: &str = "::serde::value::Value";
const TO_VALUE: &str = "::serde::__private::to_value";
const FROM_VALUE: &str = "::serde::__private::from_value";

/// `.map_err` suffix converting a `DeError` into the deserializer's error.
fn demap() -> String {
    ".map_err(|__e| <__D::Error as ::serde::de::Error>::custom(__e))?".to_string()
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "__serializer.serialize_unit()".to_string(),
        Kind::Struct(Shape::Tuple(tys)) if tys.len() == 1 => {
            // Newtype (and transparent): serialize as the inner value.
            "::serde::ser::Serialize::serialize(&self.0, __serializer)".to_string()
        }
        Kind::Struct(Shape::Named(fields)) if input.transparent && fields.len() == 1 => {
            format!(
                "::serde::ser::Serialize::serialize(&self.{}, __serializer)",
                fields[0].name
            )
        }
        Kind::Struct(Shape::Tuple(tys)) => {
            let items: Vec<String> = (0..tys.len())
                .map(|i| format!("{TO_VALUE}(&self.{i})"))
                .collect();
            format!(
                "__serializer.serialize_value({VALUE}::Array(vec![{}]))",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{n}\".to_string(), {TO_VALUE}(&self.{n}))", n = f.name))
                .collect();
            format!(
                "__serializer.serialize_value({VALUE}::Object(vec![{}]))",
                pushes.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => __serializer.serialize_value({VALUE}::Str(\"{vname}\".to_string())),"
                    ),
                    Shape::Tuple(tys) if tys.len() == 1 => format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_value({VALUE}::Object(vec![(\"{vname}\".to_string(), {TO_VALUE}(__f0))])),"
                    ),
                    Shape::Tuple(tys) => {
                        let binds: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("{TO_VALUE}({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({binds}) => __serializer.serialize_value({VALUE}::Object(vec![(\"{vname}\".to_string(), {VALUE}::Array(vec![{items}]))])),",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{n}: __b_{n}", n = f.name))
                            .collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), {TO_VALUE}(__b_{n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => __serializer.serialize_value({VALUE}::Object(vec![(\"{vname}\".to_string(), {VALUE}::Object(vec![{items}]))])),",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => {
            format!("let _ = __d.take_value()?; ::std::result::Result::Ok({name})")
        }
        Kind::Struct(Shape::Tuple(tys)) if tys.len() == 1 => format!(
            "let __inner: {} = ::serde::de::Deserialize::deserialize(__d)?;\n\
             ::std::result::Result::Ok({name}(__inner))",
            tys[0]
        ),
        Kind::Struct(Shape::Named(fields)) if input.transparent && fields.len() == 1 => format!(
            "let __inner: {} = ::serde::de::Deserialize::deserialize(__d)?;\n\
             ::std::result::Result::Ok({name} {{ {}: __inner }})",
            fields[0].ty, fields[0].name
        ),
        Kind::Struct(Shape::Tuple(tys)) => {
            let n = tys.len();
            let parses: Vec<String> = tys
                .iter()
                .map(|ty| {
                    format!(
                        "{FROM_VALUE}::<{ty}>(__items.next().expect(\"length checked\")){}",
                        demap()
                    )
                })
                .collect();
            format!(
                "let __v = __d.take_value()?;\n\
                 let __arr = ::serde::__private::expect_array(__v, \"{name}\"){m}; \n\
                 if __arr.len() != {n} {{\n\
                   return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     format!(\"expected array of {n} for {name}, found {{}}\", __arr.len())));\n\
                 }}\n\
                 let mut __items = __arr.into_iter();\n\
                 ::std::result::Result::Ok({name}({parses}))",
                m = demap_direct(),
                parses = parses.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let parses: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: ::serde::__private::parse_field::<{ty}>(&mut __fields, \"{name}\", \"{n}\"){m}",
                        n = f.name,
                        ty = f.ty,
                        m = demap()
                    )
                })
                .collect();
            format!(
                "let __v = __d.take_value()?;\n\
                 let mut __fields = ::serde::__private::expect_object(__v, \"{name}\"){m};\n\
                 ::std::result::Result::Ok({name} {{ {parses} }})",
                m = demap_direct(),
                parses = parses.join(", ")
            )
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__d: __D)\n\
         -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}"
    )
}

/// Like [`demap`] but for expressions already yielding `Result<_, DeError>`
/// where the `?` is applied in the same statement.
fn demap_direct() -> String {
    demap()
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Shape)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, s)| matches!(s, Shape::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|(_, s)| !matches!(s, Shape::Unit))
        .map(|(vname, shape)| match shape {
            Shape::Unit => unreachable!(),
            Shape::Tuple(tys) if tys.len() == 1 => format!(
                "\"{vname}\" => {{\n\
                   let __inner: {ty} = {FROM_VALUE}(__payload){m};\n\
                   ::std::result::Result::Ok({name}::{vname}(__inner))\n\
                 }}",
                ty = tys[0],
                m = demap()
            ),
            Shape::Tuple(tys) => {
                let n = tys.len();
                let parses: Vec<String> = tys
                    .iter()
                    .map(|ty| {
                        format!(
                            "{FROM_VALUE}::<{ty}>(__items.next().expect(\"length checked\")){}",
                            demap()
                        )
                    })
                    .collect();
                format!(
                    "\"{vname}\" => {{\n\
                       let __arr = ::serde::__private::expect_array(__payload, \"{name}::{vname}\"){m};\n\
                       if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                           \"wrong tuple arity for {name}::{vname}\"));\n\
                       }}\n\
                       let mut __items = __arr.into_iter();\n\
                       ::std::result::Result::Ok({name}::{vname}({parses}))\n\
                     }}",
                    m = demap(),
                    parses = parses.join(", ")
                )
            }
            Shape::Named(fields) => {
                let parses: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{n}: ::serde::__private::parse_field::<{ty}>(&mut __fields, \"{name}::{vname}\", \"{n}\"){m}",
                            n = f.name,
                            ty = f.ty,
                            m = demap()
                        )
                    })
                    .collect();
                format!(
                    "\"{vname}\" => {{\n\
                       let mut __fields = ::serde::__private::expect_object(__payload, \"{name}::{vname}\"){m};\n\
                       ::std::result::Result::Ok({name}::{vname} {{ {parses} }})\n\
                     }}",
                    m = demap(),
                    parses = parses.join(", ")
                )
            }
        })
        .collect();

    format!(
        "let __v = __d.take_value()?;\n\
         match __v {{\n\
           {VALUE}::Str(__s) => match __s.as_str() {{\n\
             {unit_arms}\n\
             __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
               format!(\"unknown variant {{__other}} for {name}\"))),\n\
           }},\n\
           {VALUE}::Object(mut __fields) if __fields.len() == 1 => {{\n\
             let (__tag, __payload) = __fields.pop().expect(\"length checked\");\n\
             match __tag.as_str() {{\n\
               {tagged_arms}\n\
               __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"unknown variant {{__other}} for {name}\"))),\n\
             }}\n\
           }}\n\
           __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
             format!(\"expected enum {name}, found {{}}\", __other.kind()))),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}
