//! Vendored subset of the `rand` crate API.
//!
//! Implements exactly what this workspace uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` (over integer and float ranges, half-open and inclusive) and
//! `gen_bool`. The generator is xoshiro256++ (the same family the real
//! `SmallRng` uses on 64-bit targets), seeded through SplitMix64 — high
//! statistical quality, deterministic per seed, dependency-free.
//!
//! The stream differs from the real crate's, which is fine: every consumer
//! in this workspace treats seeds as opaque reproducibility handles, not as
//! cross-library fixtures.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]` (matching `rand`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` via Lemire's widening-multiply
/// rejection method.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone below `zone` keeps the multiply-shift unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * span as u128) >> 64) as u64;
        let lo = (v as u128 * span as u128) as u64;
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = sample_span(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = sample_span(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating rounding can land exactly on `end`; clamp to stay half-open.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range in gen_range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let differs = (0..100)
            .any(|_| SmallRng::seed_from_u64(7).gen_range(0..u64::MAX) != c.gen_range(0..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(10..20usize);
            assert!((10..20).contains(&y));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_range(0..4u32) == 0).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "p={p}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
