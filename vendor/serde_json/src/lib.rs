//! Vendored `serde_json`: JSON text on one side, the vendored `serde`
//! value tree on the other.
//!
//! Covers the slice of the real API this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`Value`], and the
//! [`json!`] macro.

use std::fmt::{self, Display, Write as _};

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::ser::to_value(value).to_string())
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &serde::ser::to_value(value), 0);
    Ok(out)
}

/// Serialize into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(serde::ser::to_value(value))
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T> {
    serde::de::from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let value = parse(s)?;
    serde::de::from_value(value).map_err(|e| Error::new(e.to_string()))
}

#[doc(hidden)]
pub fn __macro_to_value<T: Serialize>(value: T) -> Value {
    serde::ser::to_value(&value)
}

/// Build a [`Value`] from JSON-ish syntax.
///
/// Values must be single token trees (literals, identifiers, parenthesized
/// expressions, or nested `{...}` / `[...]`), which covers idiomatic use;
/// wrap multi-token expressions in parentheses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($value)) ),*
        ])
    };
    ($other:expr) => { $crate::__macro_to_value($other) };
}

// ---- pretty printer ----

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                let _ = write!(out, "{}: ", Value::Str(k.clone()));
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        // Empty containers and scalars reuse the compact rendering.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        let hi = self.hex4()?;
        // Surrogate pairs for astral-plane characters.
        if (0xD800..0xDC00).contains(&hi) {
            if !self.eat_keyword("\\u") {
                return Err(Error::new("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(Error::new("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or_else(|| Error::new("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| Error::new("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let src = r#"{"a":[1,2.5,null,true],"b":"x\ny","c":{"d":-7}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn json_macro_builds_values() {
        let n = 41i64;
        let v = json!({"ok": true, "n": (n + 1), "list": [1, "two", null], "nested": {"x": 2.5}});
        assert_eq!(v["ok"], true);
        assert_eq!(v["n"], 42i64);
        assert_eq!(v["list"][1], "two");
        assert_eq!(v["nested"]["x"], 2.5);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}, "empty": {}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
