//! Vendored subset of the `bytes` crate: the [`Buf`] and [`BufMut`] traits
//! implemented for `&[u8]` and `Vec<u8>`, which is all this workspace uses.
//!
//! Semantics match `bytes`: multi-byte accessors are big-endian unless the
//! `_le` suffix says otherwise, and reading past the end panics (callers
//! guard with [`Buf::remaining`] / [`Buf::has_remaining`]).

/// Read-side cursor over a byte sequence.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out. Panics on underrun.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write-side byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64(42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r.get_u8(), b'y');
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16();
    }
}
