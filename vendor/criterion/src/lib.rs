//! Vendored `criterion`: a small wall-clock benchmarking harness exposing
//! the slice of the real API these benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, groups, `BenchmarkId`, `Throughput`).
//!
//! Compared to real Criterion there is no statistical analysis, plotting,
//! or baseline storage: each benchmark is calibrated once, timed for a
//! fixed number of samples, and reported as median/mean ns per iteration.
//!
//! Knobs (environment variables):
//!
//! * `QPV_BENCH_JSON=<path>` — also write results as a JSON array.
//! * `QPV_BENCH_FULL=1` — larger per-sample time budget for stabler numbers.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// The top-level harness state.
pub struct Criterion {
    results: Vec<BenchResult>,
    skipped: Vec<(String, String)>,
    metrics: Vec<(String, f64, String)>,
    default_sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let full = std::env::var("QPV_BENCH_FULL").is_ok_and(|v| v == "1");
        Criterion {
            results: Vec::new(),
            skipped: Vec::new(),
            metrics: Vec::new(),
            default_sample_size: 10,
            sample_budget: if full {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(2)
            },
        }
    }
}

/// The thread count the scheduler will actually grant this process —
/// benches gate their thread sweeps on this so a 1-CPU container does
/// not report flat-by-construction "scaling" curves.
pub fn threads_available() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl Criterion {
    /// Record a benchmark that was deliberately *not* run (e.g. a thread
    /// count above [`threads_available`]). Skips print like results and
    /// land in a `"skipped"` array in the JSON, so a BENCH trajectory
    /// distinguishes "not measured here" from "measured flat".
    pub fn record_skip(&mut self, id: impl Into<String>, reason: impl Into<String>) -> &mut Self {
        let (id, reason) = (id.into(), reason.into());
        println!("{id:<48} skipped ({reason})");
        self.skipped.push((id, reason));
        self
    }

    /// Record a derived scalar measurement (bytes/provider, dedup ratio,
    /// …) alongside the timings; lands in a `"metrics"` array in the
    /// JSON.
    pub fn record_metric(
        &mut self,
        id: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> &mut Self {
        let (id, unit) = (id.into(), unit.into());
        println!("{id:<48} {value:.3} {unit}");
        self.metrics.push((id, value, unit));
        self
    }
    /// Benchmark a closure under the given name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Print the summary table; write JSON when `QPV_BENCH_JSON` is set.
    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("QPV_BENCH_JSON") {
            let json = self.results_json();
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("benchmark results written to {path}");
            }
        }
    }

    fn results_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "\"host\": {{\"cpus_allowed_list\": {:?}, \"threads_available\": {}, \
             \"build_profile\": {:?}}},",
            cpus_allowed_list(),
            std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
        );
        out.push_str("\"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  {{\"id\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}",
                r.id, r.mean_ns, r.median_ns, r.samples, r.iters_per_sample
            );
            if let Some(tp) = &r.throughput {
                let (unit, amount) = match tp {
                    Throughput::Elements(n) => ("elements", *n),
                    Throughput::Bytes(n) => ("bytes", *n),
                };
                let per_sec = amount as f64 * 1e9 / r.median_ns.max(1.0);
                let _ = write!(
                    out,
                    ", \"throughput_unit\": {unit:?}, \"throughput_per_iter\": {amount}, \
                     \"per_second\": {per_sec:.1}"
                );
            }
            out.push('}');
        }
        out.push_str("\n],\n\"skipped\": [\n");
        for (i, (id, reason)) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "  {{\"id\": {id:?}, \"reason\": {reason:?}}}");
        }
        out.push_str("\n],\n\"metrics\": [\n");
        for (i, (id, value, unit)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  {{\"id\": {id:?}, \"value\": {value:.3}, \"unit\": {unit:?}}}"
            );
        }
        out.push_str("\n]\n}\n");
        out
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        // Calibrate: one iteration tells us roughly how expensive this is.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let iters = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            sample_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = sample_ns[sample_ns.len() / 2];
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;

        let mut line = format!(
            "{id:<48} median {} mean {}",
            fmt_ns(median_ns),
            fmt_ns(mean_ns)
        );
        if let Some(tp) = &throughput {
            let (amount, unit) = match tp {
                Throughput::Elements(n) => (*n, "elem"),
                Throughput::Bytes(n) => (*n, "B"),
            };
            let per_sec = amount as f64 * 1e9 / median_ns.max(1.0);
            let _ = write!(line, "  ({per_sec:.0} {unit}/s)");
        }
        println!("{line}");

        self.results.push(BenchResult {
            id,
            mean_ns,
            median_ns,
            samples: sample_size,
            iters_per_sample: iters,
            throughput,
        });
    }
}

/// The CPU affinity mask the kernel reports for this process
/// (`Cpus_allowed_list` in `/proc/self/status`) — recorded in every JSON
/// result so numbers are interpretable on pinned/containerized hosts.
fn cpus_allowed_list() -> String {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Cpus_allowed_list:"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>8.3} µs", ns / 1e3)
    } else {
        format!("{ns:>8.1} ns")
    }
}

/// A set of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Work per iteration, for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into().id);
        self.criterion
            .run_one(full_id, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure over an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(full_id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; settings die with it).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[1].id, "grp/with_input/5");
        assert!(c.results[0].median_ns >= 0.0);
        let json = c.results_json();
        assert!(json.contains("\"id\": \"noop\""));
        assert!(json.contains("throughput_unit"));
        // Host metadata rides along in every JSON emission.
        assert!(json.contains("\"cpus_allowed_list\""));
        assert!(json.contains("\"threads_available\""));
        assert!(json.contains("\"build_profile\": \"debug\""));
        // Still valid JSON overall: object with host + results array.
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn skips_and_metrics_land_in_the_json() {
        let mut c = Criterion::default();
        c.record_skip("grp/threads/8", "above threads_available (1)");
        c.record_metric("grp/bytes_per_provider", 23.5, "bytes");
        let json = c.results_json();
        assert!(json.contains(
            "\"skipped\": [\n  {\"id\": \"grp/threads/8\", \
             \"reason\": \"above threads_available (1)\"}"
        ));
        assert!(json.contains(
            "\"metrics\": [\n  {\"id\": \"grp/bytes_per_provider\", \
             \"value\": 23.500, \"unit\": \"bytes\"}"
        ));
        assert!(threads_available() >= 1);
    }
}
