//! Vendored `proptest`: the generation half of the real crate, enough to run
//! this workspace's property tests offline.
//!
//! Differences from real proptest, by design:
//!
//! * minimal shrinking — on failure the runner greedily probes a bounded
//!   number of simplifications (integers halve toward their lower bound,
//!   vectors shorten, tuples shrink component-wise; `prop_map` outputs do
//!   not shrink), prints the smallest still-failing input, and re-runs it
//!   so the real assertion message surfaces;
//! * deterministic: every test derives its RNG seed from the test name, so
//!   runs are reproducible across machines and thread counts;
//! * `&str` strategies support a small regex subset (literals, `.`, simple
//!   `[...]` classes, and `{m,n}` / `*` / `+` / `?` quantifiers), which
//!   covers the patterns used here.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                // All bindings as one tuple strategy, so generation order
                // (and thus the RNG stream) matches the pre-shrinking
                // runner, and shrinking can reuse the tuple's
                // component-wise candidates.
                let __strats = ( $( ($strat), )+ );
                for __case in 0..__config.cases {
                    let __values =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    // Probe runs clone the inputs and catch the panic, so
                    // only the minimal case re-runs uncaught below.
                    if !$crate::test_runner::panics(|| {
                        let ($($pat,)+) = ::std::clone::Clone::clone(&__values);
                        $body
                    }) {
                        continue;
                    }
                    // Greedy bounded shrink: adopt the first still-failing
                    // candidate and restart from it; stop when no candidate
                    // fails or the probe budget runs out.
                    let mut __minimal = __values;
                    let mut __probes = 0usize;
                    '__shrinking: loop {
                        for __cand in
                            $crate::strategy::Strategy::shrink(&__strats, &__minimal)
                        {
                            if __probes >= 256 {
                                break '__shrinking;
                            }
                            __probes += 1;
                            if $crate::test_runner::panics(|| {
                                let ($($pat,)+) = ::std::clone::Clone::clone(&__cand);
                                $body
                            }) {
                                __minimal = __cand;
                                continue '__shrinking;
                            }
                        }
                        break;
                    }
                    eprintln!(
                        "proptest: case {} of {} failed; minimal failing input \
                         ({} shrink probes): {:#?}",
                        __case + 1,
                        stringify!($name),
                        __probes,
                        __minimal
                    );
                    // Re-run the minimal case uncaught so the assertion's
                    // own message and backtrace reach the harness.
                    let ($($pat,)+) = __minimal;
                    $body
                    panic!(
                        "proptest: {} failed during shrinking but the minimal \
                         case passed on re-run (non-deterministic test body?)",
                        stringify!($name)
                    );
                }
            }
        )*
    };
}

/// Assert within a property test: delegates to `assert!`, whose panic the
/// `proptest!` runner catches and feeds to the shrinker.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
