//! Vendored `proptest`: the generation half of the real crate, enough to run
//! this workspace's property tests offline.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! * deterministic: every test derives its RNG seed from the test name, so
//!   runs are reproducible across machines and thread counts;
//! * `&str` strategies support a small regex subset (literals, `.`, simple
//!   `[...]` classes, and `{m,n}` / `*` / `+` / `?` quantifiers), which
//!   covers the patterns used here.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($pat,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
