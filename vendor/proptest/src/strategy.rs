//! Strategies: composable random-value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, each strictly
    /// "smaller" by the strategy's own measure (so greedy shrinking
    /// terminates). The default — no candidates — is correct for any
    /// strategy; overriding is purely a usability upgrade. Integer
    /// strategies halve toward their lower bound, vectors shorten toward
    /// their minimum length, tuples shrink component-wise. `prop_map` does
    /// not shrink (the mapping is not invertible), so mapped values only
    /// simplify via the collection that holds them.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, regenerating otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// References to strategies are strategies (so `generate(&strat)` works on
/// both owned and borrowed expressions).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.whence
        );
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink the underlying value, keeping only candidates that still
        // satisfy the predicate (so shrunk inputs stay in the domain).
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
    fn dyn_shrink(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.dyn_shrink(value)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one branch");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- any::<T>() ----

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Strictly-smaller candidates for shrinking (see
    /// [`Strategy::shrink`]). Defaults to none.
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// Shared integer shrinker: toward zero by magnitude — `0`, the halfway
/// point, and one step closer. Every candidate has strictly smaller
/// absolute value, so greedy shrinking cannot cycle.
fn shrink_int_i128(v: i128) -> Vec<i128> {
    if v == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in [0, v / 2, if v > 0 { v - 1 } else { v + 1 }] {
        if c.unsigned_abs() < v.unsigned_abs() && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                shrink_int_i128(*value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
    fn shrink(value: &u128) -> Vec<u128> {
        let v = *value;
        let mut out = Vec::new();
        for c in [0, v / 2, v.saturating_sub(1)] {
            if c < v && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
    fn shrink(value: &i128) -> Vec<i128> {
        shrink_int_i128(*value)
    }
}

impl Arbitrary for f64 {
    /// Raw bit patterns: covers subnormals, infinities, and NaNs, which is
    /// exactly what serialization round-trip tests want to see.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

// ---- integer ranges ----

/// Range shrinker: toward the range's lower bound — `lo`, halfway between
/// `lo` and `v`, and `v - 1`. Candidates are strictly below `v` (and at or
/// above `lo`), so they stay in the range and shrinking terminates.
fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    for c in [lo, lo + (v - lo) / 2, v - 1] {
        if c >= lo && c < v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain u64/i64 ranges: raw bits are uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: shrink one position at a time, holding
                // the others fixed.
                let mut out = Vec::new();
                $(
                    for c in self.$n.shrink(&value.$n) {
                        let mut next = value.clone();
                        next.$n = c;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

// ---- regex string strategies ----

/// `&str` as a strategy: the pattern is a small regex subset — literal
/// characters, `.`, `[...]` classes with ranges, and `{m,n}` / `{m}` /
/// `*` / `+` / `?` quantifiers.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let count = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    Any,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // Mostly printable ASCII, with occasional multi-byte
                // characters to exercise UTF-8 handling. Never '\n',
                // matching regex `.` semantics.
                const EXOTIC: [char; 6] = ['é', 'ß', 'λ', '中', '\u{2603}', '😀'];
                if rng.below(10) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = *hi as u64 - *lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32)
                            .expect("class range stays in valid chars");
                    }
                    pick -= span;
                }
                unreachable!("pick < total")
            }
        }
    }
}

/// Parse into (atom, min-count, max-count) runs.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '\\' => Atom::Literal(chars.next().expect("dangling escape in pattern")),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("dangling escape in class"),
                        Some(ch) => ch,
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') => {
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) => ranges.push((lo, hi)),
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        out.push((atom, min, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy_tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let v = (-50i64..50).generate(&mut r);
            assert!((-50..50).contains(&v));
            let u = (0u8..3).generate(&mut r);
            assert!(u < 3);
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_oneof_compose() {
        let mut r = rng();
        let strat = crate::prop_oneof![
            Just(0i64),
            (1i64..10).prop_map(|v| v * 100),
            (1i64..1000).prop_filter("even", |v| v % 2 == 0),
        ];
        let mut saw_even_filter = false;
        for _ in 0..256 {
            let v = strat.generate(&mut r);
            assert!(v == 0 || (100..=900).contains(&v) && v % 100 == 0 || v % 2 == 0);
            if v != 0 && v % 100 != 0 {
                saw_even_filter = true;
                assert_eq!(v % 2, 0);
            }
        }
        assert!(saw_even_filter);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..64 {
            let s = ".{0,64}".generate(&mut r);
            assert!(s.chars().count() <= 64);
            let hex = "[0-9a-f]{4}".generate(&mut r);
            assert_eq!(hex.len(), 4);
            assert!(hex
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
            let lit = "ab?c*".generate(&mut r);
            assert!(lit.starts_with('a'));
        }
    }

    #[test]
    fn range_shrink_stays_in_bounds_and_strictly_descends() {
        let strat = -50i64..50;
        let mut v = 37i64;
        // Greedy descent must reach the lower bound and terminate.
        for _ in 0..200 {
            let cands = strat.shrink(&v);
            for c in &cands {
                assert!((-50..50).contains(c));
                assert!(*c < v);
            }
            match cands.first() {
                Some(&c) => v = c,
                None => break,
            }
        }
        assert_eq!(v, -50);
        assert!(strat.shrink(&-50).is_empty());
        assert!((0u32..=9).shrink(&0).is_empty());
        assert_eq!((3u32..=9).shrink(&4), vec![3]);
    }

    #[test]
    fn any_int_and_bool_shrink_toward_zero() {
        for c in any::<i64>().shrink(&-37) {
            assert!(c.unsigned_abs() < 37);
        }
        assert!(any::<u64>().shrink(&0).is_empty());
        assert_eq!(any::<u64>().shrink(&1), vec![0]);
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
    }

    #[test]
    fn tuple_and_filter_shrinks_compose() {
        let strat = (0u8..10, 0u8..10);
        let cands = strat.shrink(&(4, 6));
        // One component moves at a time, the other stays fixed.
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            assert!((*a, *b) != (4, 6));
            assert!(*a == 4 || *b == 6);
        }
        // Filtered strategies only propose candidates in the domain.
        let even = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for c in even.shrink(&8) {
            assert_eq!(c % 2, 0);
            assert!(c < 8);
        }
        // Mapped strategies don't shrink: the mapping is one-way.
        assert!((0u64..9).prop_map(|v| v * 3).shrink(&12).is_empty());
    }

    #[test]
    fn whole_domain_inclusive_ranges() {
        let mut r = rng();
        for _ in 0..64 {
            let _ = (0u64..=u64::MAX).generate(&mut r);
            let v = (i64::MIN..=i64::MAX).generate(&mut r);
            let _ = v;
        }
    }
}
