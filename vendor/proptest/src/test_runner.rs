//! Deterministic RNG and per-test configuration.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than real proptest's 256: these suites run in debug builds
        // under tier-1, and without shrinking a failure prints the raw case
        // anyway.
        ProptestConfig { cases: 64 }
    }
}

/// Whether `f` panics — the probe primitive the `proptest!` shrinker uses
/// to ask "does this candidate still fail?" without aborting the test.
/// `AssertUnwindSafe` is sound here: the closure only touches clones of
/// the generated inputs, which are discarded if it panics.
pub fn panics(f: impl FnOnce()) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err()
}

/// xoshiro256++, seeded deterministically from the test name so failures
/// reproduce across runs and machines.
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seed from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a folds the name into one u64; SplitMix64 expands it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a raw u64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    /// Lemire widening-multiply with rejection, so it is unbiased.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bounds");
        for bound in [1u64, 2, 3, 7, 100, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
