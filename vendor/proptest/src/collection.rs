//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// How many elements a collection strategy may produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        let (len, min) = (value.len(), self.size.min);
        // Length shrinks first — they discard the most at once: halve the
        // excess over the minimum, then drop just the last element.
        let half = min + (len - min) / 2;
        if half < len {
            out.push(value[..half].to_vec());
        }
        if len > min && len - 1 != half {
            out.push(value[..len - 1].to_vec());
        }
        // Then element-wise, one position at a time. Capped so a long
        // vector of richly-shrinkable elements cannot explode the
        // candidate list (the runner probes a bounded number anyway).
        for (i, v) in value.iter().enumerate() {
            if out.len() >= 256 {
                break;
            }
            for c in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = c;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec_sizes");
        let strat = vec(any::<u8>(), 3..7);
        for _ in 0..128 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
    }

    #[test]
    fn vec_shrink_shortens_toward_min_then_shrinks_elements() {
        let strat = vec(0u8..10, 3..7);
        let v = vec![5u8, 0, 9, 2, 7, 1];
        let cands = strat.shrink(&v);
        // Length candidates first: halve the excess over min, drop last.
        assert_eq!(cands[0], vec![5, 0, 9, 2]);
        assert_eq!(cands[1], vec![5, 0, 9, 2, 7]);
        // Element-wise candidates keep the length and change one slot.
        for c in &cands[2..] {
            assert_eq!(c.len(), v.len());
            assert_eq!(c.iter().zip(&v).filter(|(a, b)| a != b).count(), 1);
        }
        // At the minimum length only element shrinks remain.
        let at_min = vec![0u8, 0, 0];
        assert!(strat.shrink(&at_min).is_empty());
    }

    #[test]
    fn nested_vec_strategies() {
        let mut rng = TestRng::deterministic("nested");
        let strat = vec(vec(any::<bool>(), 0..4), 1..5);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 5);
        assert!(v.iter().all(|inner| inner.len() < 4));
    }
}
