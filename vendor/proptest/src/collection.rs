//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// How many elements a collection strategy may produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec_sizes");
        let strat = vec(any::<u8>(), 3..7);
        for _ in 0..128 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
    }

    #[test]
    fn nested_vec_strategies() {
        let mut rng = TestRng::deterministic("nested");
        let strat = vec(vec(any::<bool>(), 0..4), 1..5);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 5);
        assert!(v.iter().all(|inner| inner.len() < 4));
    }
}
