//! End-to-end checks of the minimal shrinker: the greedy loop lands on a
//! local minimum, and a failing property still fails (loudly) after
//! shrinking rather than being swallowed by the probe runs.

use proptest::prelude::*;

/// Greedy first-still-failing descent — the same policy the `proptest!`
/// runner uses — driven by an explicit predicate so the end state is
/// checkable. "Failing" here means `sum >= 100`.
#[test]
fn greedy_shrink_reaches_a_local_minimum() {
    let strat = proptest::collection::vec(0u32..100, 1..20);
    let mut v = vec![99, 3, 57, 12, 99, 40];
    while let Some(c) = strat
        .shrink(&v)
        .into_iter()
        .find(|c| c.iter().sum::<u32>() >= 100)
    {
        v = c;
    }
    // Halving lengths then decrementing elements lands exactly on the
    // boundary: any shorter vector or smaller element drops below 100.
    assert_eq!(v, vec![97, 3]);
}

proptest! {
    /// The runner's failure path: probes are caught, the minimal case is
    /// re-run uncaught, and the test still dies — visible to the harness
    /// only through `should_panic`.
    #[test]
    #[should_panic]
    fn failing_property_still_panics_after_shrinking(
        v in proptest::collection::vec(0u32..100, 5..20)
    ) {
        prop_assert!(v.iter().sum::<u32>() < 50);
    }
}
