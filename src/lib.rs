//! # Quantifying Privacy Violations
//!
//! A full reproduction of *Quantifying Privacy Violations* (Banerjee,
//! Karimi Adl, Wu, Barker; SDM @ VLDB 2011): a four-dimensional model of
//! privacy violations for relational databases, with severity measurement,
//! provider-default prediction, α-PPDB compliance checking, and the policy
//! expansion economics of the paper's §9 — all built on a from-scratch
//! relational storage engine.
//!
//! This crate is the facade: it re-exports the workspace's crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ## The pieces
//!
//! * [`taxonomy`] — the privacy space: purpose, visibility, granularity,
//!   retention ([`qpv_taxonomy`]).
//! * [`reldb`] — the relational engine: slotted pages, buffer pool, WAL,
//!   B+trees, SQL ([`qpv_reldb`]).
//! * [`policy`] — house policies, provider preferences, and the policy DSL
//!   ([`qpv_policy`]).
//! * [`core`] — the violation model itself: `w_i`, `conf`, `Violation_i`,
//!   `P(W)`, `P(Default)`, the α-PPDB ([`qpv_core`]).
//! * [`economics`] — §9's widening-vs-default trade-off ([`qpv_economics`]).
//! * [`synth`] — Westin-segment population generation ([`qpv_synth`]).
//!
//! ## Quickstart
//!
//! ```
//! use quantifying_privacy_violations::prelude::*;
//!
//! // The paper's §8 worked example, end to end.
//! let scenario = Scenario::worked_example();
//! let report = scenario.engine().run(&scenario.population.profiles);
//! assert_eq!(report.providers[1].score, 60);          // Ted (Eq. 20)
//! assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12); // Eq. 24
//! ```

pub use qpv_core as core;
pub use qpv_economics as economics;
pub use qpv_policy as policy;
pub use qpv_reldb as reldb;
pub use qpv_synth as synth;
pub use qpv_taxonomy as taxonomy;

/// The names almost every user of the library wants in scope.
pub mod prelude {
    pub use qpv_core::{
        default_threads, AuditEngine, AuditReport, DatumSensitivity, Ppdb, PpdbConfig,
        ProviderProfile,
    };
    pub use qpv_economics::{ExpansionSweep, UtilityModel};
    pub use qpv_policy::{HousePolicy, ProviderId, ProviderPreferences};
    pub use qpv_reldb::{Database, Row, Value};
    pub use qpv_synth::Scenario;
    pub use qpv_taxonomy::{
        Dim, GranularityLevel, Level, PrivacyPoint, PrivacyTuple, Purpose, RetentionLevel,
        VisibilityLevel,
    };
}
