//! Policy-change transparency: diff two policy versions, then quantify.
//!
//! The paper's §10 names "frequently changing privacy policies on social
//! networking sites" as the canonical frustration, and argues the first
//! step toward trust is making changes *quantifiable*. This example walks
//! the full transparency loop:
//!
//! 1. both policy versions live as DSL text (what users could actually
//!    read);
//! 2. a structural diff says *what* changed and in which direction;
//! 3. the cheap screen (`may_increase_exposure`) says whether an audit is
//!    even needed;
//! 4. the audit quantifies the damage: ΔViolations, ΔP(W), ΔP(Default).
//!
//! Run with: `cargo run --example policy_transparency_diff`

use quantifying_privacy_violations::core::whatif::WhatIf;
use quantifying_privacy_violations::policy::{diff, dsl, ChangeKind};
use quantifying_privacy_violations::prelude::*;

const POLICY_V1: &str = r#"
policy "connectly-v1" {
  attribute age {
    purpose "service" { vis house; gran partial; ret 1y; }
  }
  attribute location {
    purpose "service" { vis house; gran partial; ret 90d; }
  }
  attribute interests {
    purpose "service" { vis house; gran specific; ret 1y; }
  }
}
"#;

const POLICY_V2: &str = r#"
// The quarterly "we updated our privacy policy" email.
policy "connectly-v2" {
  attribute age {
    purpose "service" { vis house; gran partial; ret 1y; }
    purpose "ads"     { vis third-party; gran partial; ret 2y; }   // NEW
  }
  attribute location {
    purpose "service" { vis house; gran specific; ret 1y; }        // finer + longer
    purpose "ads"     { vis third-party; gran partial; ret 2y; }   // NEW
  }
  attribute interests {
    purpose "service" { vis house; gran partial; ret 1y; }         // coarser (narrowed!)
    purpose "ads"     { vis third-party; gran specific; ret 2y; }  // NEW
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v1 = dsl::parse(POLICY_V1)?.policies.remove(0);
    let v2 = dsl::parse(POLICY_V2)?.policies.remove(0);

    // 2. The structural diff.
    let d = diff::diff(&v1, &v2);
    println!("== What changed (v1 → v2) ==\n");
    println!("{d}\n");
    println!(
        "{} added, {} widened, {} narrowed, {} removed",
        d.of_kind(ChangeKind::Added).count(),
        d.of_kind(ChangeKind::Widened).count(),
        d.of_kind(ChangeKind::Narrowed).count(),
        d.of_kind(ChangeKind::Removed).count(),
    );

    // 3. The cheap screen.
    assert!(d.may_increase_exposure());
    println!("\nscreen: this change CAN increase exposure — auditing...\n");

    // 4. Quantify against a population whose stated preferences match v1
    //    (they joined under v1, so v1 violates no one).
    let mut population = Vec::new();
    for i in 0..1_000u64 {
        let mut p = ProviderProfile::new(ProviderId(i), 1_000 + (i % 8) * 1_000);
        for t in v1.tuples() {
            // Consent exactly to v1, with a small personal margin.
            let margin = (i % 3) as u32;
            let pt = PrivacyPoint::from_raw(
                t.tuple.point.get(Dim::Visibility) + margin,
                t.tuple.point.get(Dim::Granularity) + margin,
                t.tuple.point.get(Dim::Retention) + margin,
            );
            p.preferences.add(
                &t.attribute,
                PrivacyTuple::from_point(t.tuple.purpose.clone(), pt),
            );
            p.sensitivities
                .insert(t.attribute.clone(), DatumSensitivity::new(1, 1, 2, 1));
        }
        population.push(p);
    }
    let mut weights =
        quantifying_privacy_violations::core::sensitivity::AttributeSensitivities::new();
    weights.set("age", 2);
    weights.set("location", 3);
    weights.set("interests", 1);
    let engine = AuditEngine::new(v1.clone(), ["age", "location", "interests"], weights);
    let whatif = WhatIf::new(&engine, &population);

    let before = whatif.evaluate("v1", &v1);
    let after = whatif.evaluate("v2", &v2);
    println!(
        "            {:>14} {:>8} {:>10} {:>9}",
        "Violations", "P(W)", "P(Default)", "N_future"
    );
    for o in [&before, &after] {
        println!(
            "{:<10} {:>14} {:>8.3} {:>10.3} {:>9}",
            o.label, o.total_violations, o.p_violation, o.p_default, o.remaining
        );
    }
    println!(
        "\nΔViolations = +{}, ΔP(W) = +{:.3}, providers lost = {}",
        after.total_violations - before.total_violations,
        after.p_violation - before.p_violation,
        before.remaining - after.remaining,
    );
    assert_eq!(before.p_violation, 0.0, "v1 is the consented baseline");
    assert!(
        after.p_violation > 0.9,
        "the ads purposes violate nearly everyone"
    );
    assert!(
        after.p_default > 0.0 && after.p_default < 1.0,
        "defaults split the population"
    );
    Ok(())
}
