//! A patient registry audits its privacy posture.
//!
//! The paper's introduction names healthcare as a motivating domain: high
//! attribute sensitivity (Westin ranks health and financial data highest)
//! and real consequences when stated practice exceeds consent. This example
//! builds a 500-patient registry with a Westin-mix population, stores it in
//! a PPDB, renders the house policy in the textual DSL (the transparency
//! surface), audits, and checks α-PPDB compliance at several α.
//!
//! Run with: `cargo run --example healthcare_audit`

use quantifying_privacy_violations::core::report;
use quantifying_privacy_violations::policy::dsl;
use quantifying_privacy_violations::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::healthcare(500, 2024);

    // The policy as patients would read it.
    println!("== The registry's stated policy ==\n");
    println!("{}", dsl::print_policy(&scenario.baseline_policy));

    // Load everything into storage.
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("patients", "provider_id"),
        scenario.data_schema(),
    )?;
    ppdb.set_policy(&scenario.baseline_policy)?;
    for attr in &scenario.spec.attributes {
        ppdb.set_attribute_weight(&attr.name, attr.weight)?;
    }
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone())?;
    }

    let audit = ppdb.audit()?;
    println!("== Audit summary ==");
    println!("{}", report::render_summary("baseline", &audit));

    println!("\nα-PPDB compliance:");
    for alpha in [0.05, 0.1, 0.25, 0.5] {
        println!(
            "  α = {alpha:>5}: {}",
            if audit.is_alpha_ppdb(alpha) {
                "compliant"
            } else {
                "NOT compliant"
            }
        );
    }

    // Who is most severely violated? Top 5 by Violation_i.
    let mut ranked: Vec<_> = audit.providers.iter().collect();
    ranked.sort_by_key(|p| std::cmp::Reverse(p.score));
    println!("\nmost-violated patients:");
    for p in ranked.iter().take(5) {
        println!(
            "  {} Violation_i = {:>6}  (threshold {}, {})",
            p.provider,
            p.score,
            p.threshold,
            if p.defaulted { "DEFAULTS" } else { "stays" }
        );
    }

    // A defaulting patient actually leaves: remove them and re-audit.
    let leavers: Vec<ProviderId> = audit.defaulters().map(|p| p.provider).collect();
    println!("\n{} patients default and are removed", leavers.len());
    for id in &leavers {
        ppdb.remove_provider(*id)?;
    }
    let after = ppdb.audit()?;
    println!("{}", report::render_summary("after-defaults", &after));
    assert_eq!(after.population(), audit.population() - leavers.len());
    // Everyone who was going to default has gone.
    assert_eq!(after.defaulters().count(), 0);
    Ok(())
}
