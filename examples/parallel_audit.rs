//! Sharded parallel audit of a large population.
//!
//! The model's per-provider quantities — Definition 1's `w_i`, Equation
//! 15's `Violation_i`, Definition 4's `default_i` — are independent given
//! the house side, so an audit shards perfectly across worker threads.
//! This example generates a large healthcare registry with the
//! shard-stable generator, audits it sequentially and in parallel at
//! several thread counts, verifies the reports are identical, and prints
//! the observed speedups.
//!
//! Run with: `cargo run --release --example parallel_audit`

use std::num::NonZeroUsize;
use std::time::Instant;

use quantifying_privacy_violations::prelude::*;
use quantifying_privacy_violations::synth::population::par_generate;

fn main() {
    let n = 100_000;
    let scenario = Scenario::healthcare(64, 2024); // spec donor; population regenerated below
    let threads = default_threads();
    println!(
        "generating {n} providers on {} threads (shard-stable)...",
        threads
    );
    let t = Instant::now();
    let population = par_generate(&scenario.spec, n, 2024, threads);
    println!("  generated in {:.2?}", t.elapsed());

    // Shard-stable means the split is invisible: one worker produces the
    // exact same population.
    let single = par_generate(&scenario.spec, 512, 2024, NonZeroUsize::MIN);
    assert_eq!(single.profiles[..], population.profiles[..512]);

    let engine = scenario.engine();

    let _warmup = engine.run(&population.profiles); // fault pages in before timing
    let t = Instant::now();
    let sequential = engine.run(&population.profiles);
    let base = t.elapsed();
    println!(
        "\nsequential audit: {base:.2?}  (P(W) = {:.4}, P(Default) = {:.4})",
        sequential.p_violation(),
        sequential.p_default()
    );

    for workers in [2usize, 4, 8] {
        let t = Instant::now();
        let parallel = engine
            .par_audit(
                &population.profiles,
                NonZeroUsize::new(workers).expect("nonzero"),
            )
            .expect("no fault injection in this example");
        let took = t.elapsed();
        assert_eq!(
            parallel, sequential,
            "parallel report must be identical to sequential"
        );
        println!(
            "{workers} threads:        {took:.2?}  ({:.2}x, report identical)",
            base.as_secs_f64() / took.as_secs_f64()
        );
    }
}
