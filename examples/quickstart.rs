//! Quickstart: the paper's §8 worked example, end to end, through storage.
//!
//! Builds a privacy-preserving database (PPDB), registers Alice, Ted, and
//! Bob with the exact preferences, sensitivities, and thresholds of
//! Table 1, stores the house policy, and audits — reproducing Equations
//! 19–24.
//!
//! Run with: `cargo run --example quickstart`

use quantifying_privacy_violations::core::report;
use quantifying_privacy_violations::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The worked-example scenario carries the exact Table 1 population.
    let scenario = Scenario::worked_example();

    // Create the PPDB: data table + privacy metadata tables in one
    // relational database (in-memory here; `Database::open(dir)` for a
    // durable one).
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("people", "provider_id"),
        scenario.data_schema(),
    )?;

    // Store the house policy and the social attribute weight Σ_weight = 4.
    ppdb.set_policy(&scenario.baseline_policy)?;
    ppdb.set_attribute_weight("weight", 4)?;

    // Register each provider: data row + preferences + sensitivities +
    // default threshold, transactionally.
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone())?;
    }

    // The audit reads everything back from storage.
    let audit = ppdb.audit()?;
    println!("== Table 1, recomputed from storage ==\n");
    println!("{}", report::render(&audit));

    // The same numbers the paper derives:
    assert_eq!(audit.providers[0].score, 0); // Alice (Eq. 20)
    assert_eq!(audit.providers[1].score, 60); // Ted
    assert_eq!(audit.providers[2].score, 80); // Bob
    assert!(audit.providers[1].defaulted); // Eq. 22
    assert!(!audit.providers[2].defaulted); // Eq. 23
    assert!((audit.p_default() - 1.0 / 3.0).abs() < 1e-12); // Eq. 24

    // And because it is all relational, the metadata is just SQL:
    let rs = ppdb
        .db_mut()
        .query("SELECT provider, threshold FROM _qpv_thresholds ORDER BY provider")?;
    println!("thresholds, via SQL:");
    for row in &rs.rows {
        println!("  provider {} -> v_i = {}", row.values[0], row.values[1]);
    }
    Ok(())
}
