//! A social network changes its privacy policy — what happens?
//!
//! The paper's §10 points at "frequently changing privacy policies on
//! social networking sites" as the canonical frustration its model can
//! quantify. This example evaluates two kinds of change over a 2,000-user
//! network as *what-if scenarios* (no stored state is modified):
//!
//! 1. uniform widening of every tuple (more visibility, finer granularity,
//!    longer retention), and
//! 2. purpose creep — granting brand-new, unconsented purposes, which
//!    Definition 1's implicit-preference rule makes maximally violating.
//!
//! It then finds the widest change that keeps the network an α-PPDB.
//!
//! Run with: `cargo run --example social_network_policy_change`

use quantifying_privacy_violations::core::whatif::WhatIf;
use quantifying_privacy_violations::prelude::*;
use quantifying_privacy_violations::synth::workload::PolicySweep;

fn main() {
    let scenario = Scenario::social_network(2_000, 7);
    let engine = scenario.engine();
    let whatif = WhatIf::new(&engine, &scenario.population.profiles);

    println!("== Uniform widening ==");
    println!(
        "{:<12} {:>12} {:>8} {:>10} {:>10}",
        "scenario", "Violations", "P(W)", "P(Default)", "N_future"
    );
    let sweep = PolicySweep::uniform(&scenario.baseline_policy, 6);
    for (label, policy) in &sweep.steps {
        let o = whatif.evaluate(label.clone(), policy);
        println!(
            "{:<12} {:>12} {:>8.3} {:>10.3} {:>10}",
            o.label, o.total_violations, o.p_violation, o.p_default, o.remaining
        );
    }

    println!("\n== Purpose creep (new unconsented purposes) ==");
    // New purposes arrive at third-party visibility, exact granularity,
    // and multi-year retention (bucket 5 on the scenario's ordinal scale).
    let creep = PolicySweep::purpose_creep(
        &scenario.baseline_policy,
        PrivacyPoint::new(
            VisibilityLevel::THIRD_PARTY,
            GranularityLevel::SPECIFIC,
            RetentionLevel::from_raw(5),
        ),
        4,
    );
    for (label, policy) in &creep.steps {
        let o = whatif.evaluate(label.clone(), policy);
        println!(
            "{:<12} {:>12} {:>8.3} {:>10.3} {:>10}",
            o.label, o.total_violations, o.p_violation, o.p_default, o.remaining
        );
    }

    // The α-PPDB frontier: how far can the network widen and still claim
    // P(W) ≤ α?
    println!("\n== α-PPDB frontier (uniform widening) ==");
    for alpha in [0.3, 0.5, 0.7] {
        match whatif.max_compliant_widening(&scenario.baseline_policy, alpha, 20) {
            Some((steps, outcome)) => println!(
                "  α = {alpha}: widest compliant widening = +{steps} (P(W) = {:.3})",
                outcome.p_violation
            ),
            None => println!("  α = {alpha}: baseline already non-compliant"),
        }
    }
}
