//! The §9 economics: when does widening the policy stop paying?
//!
//! A house earns `U` per provider, and each widening step unlocks extra
//! per-provider utility `T` — but also violates more preferences, pushing
//! providers over their default thresholds. This example tabulates the
//! whole trade-off (Equations 25–31) for a healthcare registry, finds the
//! house's optimal widening, and then plays the iterated best-response game
//! from the paper's closing remark.
//!
//! Run with: `cargo run --example policy_negotiation_game`

use quantifying_privacy_violations::economics::expansion::render_table;
use quantifying_privacy_violations::economics::game::BestResponseGame;
use quantifying_privacy_violations::prelude::*;

fn main() {
    let scenario = Scenario::healthcare(1_000, 11);
    let engine = scenario.engine();
    let utility = UtilityModel::new(scenario.utility_per_provider);

    // §9's premise: "currently, no data providers have defaulted" — the
    // population in the system is, by construction, the set of providers
    // the *current* policy does not push out. Condition on them.
    let baseline_report = engine.run(&scenario.population.profiles);
    let current: Vec<ProviderProfile> = scenario
        .population
        .profiles
        .iter()
        .zip(baseline_report.providers.iter())
        .filter(|(_, audit)| !audit.defaulted)
        .map(|(p, _)| p.clone())
        .collect();
    println!(
        "population: {} generated, {} compatible with the current policy\n",
        scenario.population.len(),
        current.len()
    );

    // Each widening step is worth an extra 15% of U per provider.
    let t_per_step = scenario.utility_per_provider * 0.15;
    let sweep = ExpansionSweep::new(&engine, &current, utility, t_per_step);
    let rows = sweep.run_uniform(&scenario.baseline_policy, 10);

    println!("== Policy expansion table (Eqs. 25-31) ==\n");
    print!("{}", render_table(&rows));

    if let Some(best) = ExpansionSweep::optimal_step(&rows) {
        println!(
            "\nhouse optimum: widen by +{} (net gain {:+.1}); wider is self-defeating",
            best.step, best.net_gain
        );
    }
    let last = rows.last().expect("non-empty sweep");
    println!(
        "at +{} widening: {} of {} providers default — the detriment the abstract warns about",
        last.step,
        last.defaults,
        current.len()
    );

    // The iterated game: enact the optimum, let defaulters leave, repeat.
    println!("\n== Iterated best-response game ==\n");
    let game = BestResponseGame::new(engine, utility, t_per_step, 10);
    let (log, survivors) = game.play(current.clone(), 20);
    for round in &log {
        println!(
            "round {}: N = {:>4}, house widens +{}, net gain {:+.1}, {} providers leave",
            round.round, round.population, round.chosen_step, round.net_gain, round.defaults
        );
    }
    println!(
        "\nfixed point after {} round(s): {} of {} providers remain",
        log.len(),
        survivors.len(),
        current.len()
    );
}
