//! Property-based tests of the violation model's invariants.
//!
//! These pin down the semantics the paper states informally:
//!
//! * Definition 1 agrees with the Figure 1 geometry (violated ⇔ the policy
//!   escapes the preference box);
//! * `Violation_i` is monotone under policy widening and additive over
//!   policy tuples;
//! * with all-1 sensitivities, `Violation_i` equals the raw order distance;
//! * `w_i = 1 ⟺ Violation_i > 0` whenever all sensitivities are positive;
//! * the implicit deny-all preference is exactly "stating ⟨0,0,0⟩".

use proptest::prelude::*;

use quantifying_privacy_violations::core::sensitivity::{AttributeSensitivities, SensitivityModel};
use quantifying_privacy_violations::core::severity::violation_score;
use quantifying_privacy_violations::core::violation::{is_violated, witnesses};
use quantifying_privacy_violations::core::DatumSensitivity;
use quantifying_privacy_violations::prelude::*;

fn arb_point() -> impl Strategy<Value = PrivacyPoint> {
    (0u32..8, 0u32..8, 0u32..8).prop_map(|(v, g, r)| PrivacyPoint::from_raw(v, g, r))
}

fn arb_sens() -> impl Strategy<Value = DatumSensitivity> {
    (1u32..5, 1u32..5, 1u32..5, 1u32..5).prop_map(|(a, b, c, d)| DatumSensitivity::new(a, b, c, d))
}

/// A provider with one stated preference and a policy over the same
/// attribute/purpose.
fn single_pair(
    pref: PrivacyPoint,
    pol: PrivacyPoint,
    sens: DatumSensitivity,
    weight: u32,
) -> (ProviderPreferences, HousePolicy, SensitivityModel) {
    let prefs = ProviderPreferences::builder(ProviderId(0))
        .tuple("a", PrivacyTuple::from_point("pr", pref))
        .build();
    let policy = HousePolicy::builder("h")
        .tuple("a", PrivacyTuple::from_point("pr", pol))
        .build();
    let mut model = SensitivityModel::new();
    model.set_attribute("a", weight);
    model.set_datum(ProviderId(0), "a", sens);
    (prefs, policy, model)
}

proptest! {
    /// Definition 1 ⇔ Figure 1 geometry.
    #[test]
    fn violated_iff_policy_escapes_the_box(pref in arb_point(), pol in arb_point()) {
        let (prefs, policy, _) = single_pair(pref, pol, DatumSensitivity::neutral(), 1);
        let escaped = !pol.bounded_by(&pref);
        prop_assert_eq!(is_violated(&prefs, &policy, &["a"]), escaped);
        prop_assert_eq!(!witnesses(&prefs, &policy, &["a"]).is_empty(), escaped);
    }

    /// With neutral sensitivities the score is the raw order distance.
    #[test]
    fn neutral_score_is_total_exceedance(pref in arb_point(), pol in arb_point()) {
        let (prefs, policy, model) = single_pair(pref, pol, DatumSensitivity::neutral(), 1);
        let score = violation_score(&prefs, &policy, &["a"], &model);
        let expected: u64 = pref.exceedance(&pol).iter().map(|&(_, d)| d as u64).sum();
        prop_assert_eq!(score, expected);
    }

    /// Positive sensitivities: w_i = 1 ⟺ Violation_i > 0.
    #[test]
    fn flag_and_score_agree(
        pref in arb_point(),
        pol in arb_point(),
        sens in arb_sens(),
        weight in 1u32..6,
    ) {
        let (prefs, policy, model) = single_pair(pref, pol, sens, weight);
        let score = violation_score(&prefs, &policy, &["a"], &model);
        prop_assert_eq!(is_violated(&prefs, &policy, &["a"]), score > 0);
    }

    /// Monotonicity: widening a policy never decreases any provider's score.
    #[test]
    fn widening_is_monotone(
        pref in arb_point(),
        pol in arb_point(),
        sens in arb_sens(),
        weight in 1u32..6,
        dim_idx in 0usize..3,
        amount in 0u32..5,
    ) {
        let (prefs, policy, model) = single_pair(pref, pol, sens, weight);
        let before = violation_score(&prefs, &policy, &["a"], &model);
        let wider = policy.widened(Dim::ALL[dim_idx], amount);
        let after = violation_score(&prefs, &wider, &["a"], &model);
        prop_assert!(after >= before, "widening decreased the score: {before} -> {after}");
    }

    /// Additivity: the score over a two-tuple policy is the sum of the
    /// per-tuple scores (Equation 15 is a plain sum).
    #[test]
    fn score_is_additive_over_policy_tuples(
        pref in arb_point(),
        pol1 in arb_point(),
        pol2 in arb_point(),
        sens in arb_sens(),
    ) {
        let prefs = ProviderPreferences::builder(ProviderId(0))
            .tuple("a", PrivacyTuple::from_point("pr", pref))
            .tuple("a", PrivacyTuple::from_point("qr", pref))
            .build();
        let mut model = SensitivityModel::new();
        model.set_datum(ProviderId(0), "a", sens);
        let hp1 = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pol1))
            .build();
        let hp2 = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("qr", pol2))
            .build();
        let combined = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pol1))
            .tuple("a", PrivacyTuple::from_point("qr", pol2))
            .build();
        let s1 = violation_score(&prefs, &hp1, &["a"], &model);
        let s2 = violation_score(&prefs, &hp2, &["a"], &model);
        let s = violation_score(&prefs, &combined, &["a"], &model);
        prop_assert_eq!(s, s1 + s2);
    }

    /// The implicit preference rule: never stating a purpose is exactly the
    /// same as stating ⟨0,0,0⟩ for it.
    #[test]
    fn implicit_equals_explicit_zero(pol in arb_point(), sens in arb_sens()) {
        let silent = ProviderPreferences::new(ProviderId(0));
        let explicit = ProviderPreferences::builder(ProviderId(0))
            .tuple("a", PrivacyTuple::from_point("pr", PrivacyPoint::ZERO))
            .build();
        let policy = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pol))
            .build();
        let mut model = SensitivityModel::new();
        model.set_datum(ProviderId(0), "a", sens);
        prop_assert_eq!(
            violation_score(&silent, &policy, &["a"], &model),
            violation_score(&explicit, &policy, &["a"], &model)
        );
        prop_assert_eq!(
            is_violated(&silent, &policy, &["a"]),
            is_violated(&explicit, &policy, &["a"])
        );
    }

    /// Sensitivity scaling: doubling the attribute weight exactly doubles
    /// the score (Equation 14 is linear in each factor).
    #[test]
    fn score_is_linear_in_attribute_weight(
        pref in arb_point(),
        pol in arb_point(),
        sens in arb_sens(),
        weight in 1u32..8,
    ) {
        let (prefs, policy, mut model) = single_pair(pref, pol, sens, weight);
        let base = violation_score(&prefs, &policy, &["a"], &model);
        model.set_attribute("a", weight * 2);
        let doubled = violation_score(&prefs, &policy, &["a"], &model);
        prop_assert_eq!(doubled, base * 2);
    }
}

// Deterministic spot check that the audit report's population quantities
// stay consistent with the per-provider records under arbitrary mixes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn report_quantities_are_self_consistent(seed in 0u64..500) {
        let scenario = Scenario::healthcare(60, seed);
        let report = scenario.engine().run(&scenario.population.profiles);
        let violated = report.providers.iter().filter(|p| p.violated).count();
        let defaulted = report.providers.iter().filter(|p| p.defaulted).count();
        prop_assert!((report.p_violation() - violated as f64 / 60.0).abs() < 1e-12);
        prop_assert!((report.p_default() - defaulted as f64 / 60.0).abs() < 1e-12);
        prop_assert_eq!(report.remaining(), 60 - defaulted);
        let sum: u128 = report.providers.iter().map(|p| p.score as u128).sum();
        prop_assert_eq!(report.total_violations, sum);
        // Defaulting requires violation (score > threshold ≥ 0 ⇒ score > 0
        // ⇒ some witness, given positive sensitivities from the generator).
        for p in &report.providers {
            if p.defaulted {
                prop_assert!(p.violated, "{:?} defaulted without violation", p.provider);
            }
        }
    }
}

/// Sensitivities of zero silence severity but not the violation flag —
/// Definition 1 is sensitivity-free. (Regression guard for the distinction
/// between `w_i` and `Violation_i`.)
#[test]
fn zero_sensitivity_keeps_flag_but_zeroes_score() {
    let pref = PrivacyPoint::from_raw(1, 1, 1);
    let pol = PrivacyPoint::from_raw(3, 3, 3);
    let prefs = ProviderPreferences::builder(ProviderId(0))
        .tuple("a", PrivacyTuple::from_point("pr", pref))
        .build();
    let policy = HousePolicy::builder("h")
        .tuple("a", PrivacyTuple::from_point("pr", pol))
        .build();
    let mut model = SensitivityModel::new();
    model.attributes = AttributeSensitivities::new();
    model.set_datum(ProviderId(0), "a", DatumSensitivity::new(0, 1, 1, 1));
    assert!(is_violated(&prefs, &policy, &["a"]));
    assert_eq!(violation_score(&prefs, &policy, &["a"], &model), 0);
}
