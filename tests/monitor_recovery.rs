//! Kill-and-recover: the §10 continuous monitor, crashed mid-stream under
//! churn, must restart from its delta log onto exactly the durable prefix
//! — and the recovered auditor's JSON report must be **byte-identical** to
//! a fresh compile + audit of that state. After recovery, re-feeding the
//! unacknowledged churn must land the monitor on the same final state a
//! never-crashed run reaches: the log loses nothing it acknowledged and
//! invents nothing it didn't.

use qpv_core::deltalog::{DeltaLog, Monitor, MonitorAlert, MonitorConfig};
use qpv_core::{AuditEngine, CompiledPopulation, ProviderProfile};
use qpv_reldb::fault::{FaultInjector, FaultKind, FaultPlan};
use qpv_synth::{churn_batches, generate_stable, Scenario};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-monrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn report_pop(engine: &AuditEngine, pop: &CompiledPopulation) -> String {
    serde_json::to_string(&engine.audit_compiled(pop)).unwrap()
}

fn report_json(engine: &AuditEngine, profiles: &[ProviderProfile]) -> String {
    report_pop(engine, &CompiledPopulation::from_profiles(profiles))
}

#[test]
fn killed_monitor_recovers_byte_identical_and_loses_nothing() {
    const N: usize = 200;
    let scenario = Scenario::healthcare(N, 42);
    let spec = &scenario.spec;
    let engine = scenario.engine();
    let initial = generate_stable(spec, N, 42).profiles;
    let batches = churn_batches(spec, N, 150, 5, 7);
    let config = MonitorConfig {
        alpha: 0.5,
        hysteresis: 0.1,
        group_commit: 1, // every ingest is one group commit: acked == applied
        snapshot_every: 8,
    };

    // Dry run: count the delta-log I/O ops the full stream produces, and
    // capture the never-crashed final report as the ground truth.
    let dry_dir = temp_dir("dry");
    let dry = FaultInjector::new(FaultPlan::none());
    let mut m = Monitor::start_with(
        &dry_dir,
        initial.clone(),
        spec.attribute_names(),
        &spec.attribute_weights(),
        spec.baseline_policy("base"),
        config.clone(),
        Some(dry.clone()),
    )
    .unwrap();
    for batch in &batches {
        m.ingest(batch.clone()).unwrap();
    }
    m.flush().unwrap();
    let final_report = report_pop(&engine, m.auditor().compiled());
    let total_ops = dry.ops_seen();
    drop(m);
    std::fs::remove_dir_all(&dry_dir).unwrap();
    assert!(total_ops > 20, "stream too small: {total_ops} ops");

    // Crash runs at several points of the op stream, including just after
    // create and just before the end.
    for c in [
        4,
        total_ops / 3,
        total_ops / 2,
        4 * total_ops / 5,
        total_ops - 1,
    ] {
        let dir = temp_dir(&format!("crash-{c}"));
        let injector = FaultInjector::new(FaultPlan::fail_at(c, FaultKind::CrashStop));
        let Ok(mut m) = Monitor::start_with(
            &dir,
            initial.clone(),
            spec.attribute_names(),
            &spec.attribute_weights(),
            spec.baseline_policy("base"),
            config.clone(),
            Some(injector),
        ) else {
            // Crashed inside create: nothing published, nothing to
            // recover — the caller starts fresh.
            assert!(DeltaLog::recover(&dir).is_err());
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        // Mirror of the *acknowledged* population: with group_commit = 1
        // every Ok ingest is durable. The batch whose ingest errored may
        // still have reached the medium when the crash hit the snapshot
        // rotation *after* its group commit — so the durable state is the
        // acked prefix or that plus one batch, never more.
        let mut acked_profiles = initial.clone();
        let mut acked = 0usize;
        for batch in &batches {
            if m.ingest(batch.clone()).is_err() {
                break;
            }
            batch.apply_to_profiles(&mut acked_profiles);
            acked += 1;
        }
        assert!(acked < batches.len(), "crash at op {c} never fired");
        drop(m); // the "kill": staged/unacked state dies with the process

        // Recover (no faults) and check byte-identity against a fresh
        // compile + audit of the durable prefix.
        let mut m2 = Monitor::recover(
            &dir,
            spec.attribute_names(),
            &spec.attribute_weights(),
            spec.baseline_policy("base"),
            config.clone(),
        )
        .unwrap_or_else(|e| panic!("crash at op {c}: recovery failed: {e}"));
        let rec_report = report_pop(&engine, m2.auditor().compiled());
        let mut next_profiles = acked_profiles.clone();
        batches[acked].apply_to_profiles(&mut next_profiles);
        let durable = if rec_report == report_json(&engine, &acked_profiles) {
            acked
        } else if rec_report == report_json(&engine, &next_profiles) {
            acked_profiles = next_profiles;
            acked + 1
        } else {
            panic!("crash at op {c}: recovered population is neither the acked prefix nor +1");
        };
        // The branch above *is* the byte-identity check: the recovered
        // auditor's report equals a fresh compile + audit of the durable
        // prefix. (Re-feeding from `durable` is safe even on a report
        // collision — every churn op is idempotent under re-apply.)
        assert_eq!(rec_report, report_json(&engine, &acked_profiles));

        // Re-feed everything the crash swallowed: the monitor must land
        // on the never-crashed final state, reports byte-identical.
        for batch in &batches[durable..] {
            m2.ingest(batch.clone()).unwrap();
        }
        m2.flush().unwrap();
        let resumed = report_pop(&engine, m2.auditor().compiled());
        assert_eq!(
            resumed, final_report,
            "crash at op {c}: resumed stream diverged from the never-crashed run"
        );
        drop(m2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Alerts survive the restart protocol: a monitor that recovers into a
/// population already in breach re-raises the breach immediately (alert
/// state is derived from the durable population, not from volatile
/// memory).
#[test]
fn recovered_monitor_rederives_breach_state() {
    const N: usize = 60;
    let scenario = Scenario::healthcare(N, 9);
    let spec = &scenario.spec;
    let initial = generate_stable(spec, N, 9).profiles;
    let dir = temp_dir("breach");
    // healthcare's baseline policy violates a chunk of the population;
    // alpha = 0 means any violation at all is a breach.
    let config = MonitorConfig {
        alpha: 0.0,
        hysteresis: 0.0,
        group_commit: 1,
        snapshot_every: 0,
    };
    let m = Monitor::start(
        &dir,
        initial,
        spec.attribute_names(),
        &spec.attribute_weights(),
        spec.baseline_policy("base"),
        config.clone(),
    )
    .unwrap();
    assert!(m.in_breach(), "healthcare baseline must breach alpha = 0");
    assert!(matches!(m.alerts(), [MonitorAlert::Breach { seq: 0, .. }]));
    let p_before = m.p_violation();
    drop(m);

    let m2 = Monitor::recover(
        &dir,
        spec.attribute_names(),
        &spec.attribute_weights(),
        spec.baseline_policy("base"),
        config,
    )
    .unwrap();
    assert!(
        m2.in_breach(),
        "breach state must be re-derived on recovery"
    );
    assert_eq!(m2.p_violation(), p_before);
    assert!(matches!(m2.alerts(), [MonitorAlert::Breach { .. }]));
    drop(m2);
    std::fs::remove_dir_all(&dir).unwrap();
}
