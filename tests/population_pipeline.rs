//! The population-scale pipeline: synth → storage → audit → economics.
//!
//! Cross-checks every pathway that computes the same quantity: the pure
//! audit engine, the storage-backed PPDB audit, the incremental auditor,
//! and the what-if evaluator must all agree on a generated population.

use quantifying_privacy_violations::core::incremental::IncrementalAuditor;
use quantifying_privacy_violations::core::whatif::WhatIf;
use quantifying_privacy_violations::economics::EmpiricalDefaultCdf;
use quantifying_privacy_violations::prelude::*;

fn loaded_ppdb(scenario: &Scenario) -> Ppdb {
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("patients", "provider_id"),
        scenario.data_schema(),
    )
    .unwrap();
    ppdb.set_policy(&scenario.baseline_policy).unwrap();
    for attr in &scenario.spec.attributes {
        ppdb.set_attribute_weight(&attr.name, attr.weight).unwrap();
    }
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone()).unwrap();
    }
    ppdb
}

#[test]
fn storage_backed_audit_equals_pure_audit() {
    let scenario = Scenario::healthcare(300, 17);
    let pure = scenario.engine().run(&scenario.population.profiles);
    let mut ppdb = loaded_ppdb(&scenario);
    let stored = ppdb.audit().unwrap();

    assert_eq!(stored.population(), pure.population());
    assert_eq!(stored.total_violations, pure.total_violations);
    assert_eq!(stored.p_violation(), pure.p_violation());
    assert_eq!(stored.p_default(), pure.p_default());
    // Per-provider too (order may differ only if storage reordered rows —
    // it does not: heap order is insert order).
    for (a, b) in stored.providers.iter().zip(pure.providers.iter()) {
        assert_eq!(a.provider, b.provider);
        assert_eq!(a.score, b.score);
        assert_eq!(a.defaulted, b.defaulted);
    }
}

#[test]
fn incremental_and_whatif_agree_across_a_sweep() {
    let scenario = Scenario::social_network(400, 23);
    let engine = scenario.engine();
    let whatif = WhatIf::new(&engine, &scenario.population.profiles);
    let mut auditor = IncrementalAuditor::new(
        scenario.population.profiles.clone(),
        scenario.spec.attribute_names(),
        &scenario.spec.attribute_weights(),
        scenario.baseline_policy.clone(),
    );
    for step in [0u32, 2, 5, 1, 4] {
        let policy = scenario.baseline_policy.widened_uniform(step);
        let outcome = whatif.evaluate(format!("s{step}"), &policy);
        auditor.apply_policy(policy);
        assert_eq!(
            auditor.total_violations(),
            outcome.total_violations,
            "step {step}"
        );
        assert_eq!(auditor.p_violation(), outcome.p_violation, "step {step}");
        assert_eq!(auditor.p_default(), outcome.p_default, "step {step}");
    }
}

#[test]
fn empirical_cdf_matches_direct_simulation() {
    // Build the default CDF from a widening sweep, then verify its
    // projections reproduce the sweep's N_future exactly.
    let scenario = Scenario::healthcare(250, 31);
    let engine = scenario.engine();
    let max_steps = 8u32;

    // First defaulting width per provider.
    let mut first_default: Vec<Option<u32>> = vec![None; scenario.population.len()];
    for step in 0..=max_steps {
        let policy = scenario.baseline_policy.widened_uniform(step);
        let report = engine.run_with_policy(&scenario.population.profiles, &policy);
        for (i, audit) in report.providers.iter().enumerate() {
            if audit.defaulted && first_default[i].is_none() {
                first_default[i] = Some(step);
            }
        }
    }
    let cdf = EmpiricalDefaultCdf::from_observations(&first_default);

    for step in 0..=max_steps {
        let policy = scenario.baseline_policy.widened_uniform(step);
        let report = engine.run_with_policy(&scenario.population.profiles, &policy);
        assert_eq!(
            cdf.projected_remaining(step, scenario.population.len()),
            report.remaining(),
            "step {step}"
        );
    }
}

#[test]
fn segment_stratification_is_ordered() {
    use quantifying_privacy_violations::synth::Segment;
    // At every widening step, fundamentalists violate at least as often as
    // pragmatists, who violate at least as often as the unconcerned.
    let scenario = Scenario::healthcare(600, 5);
    let engine = scenario.engine();
    for step in 0..5u32 {
        let policy = scenario.baseline_policy.widened_uniform(step);
        let report = engine.run_with_policy(&scenario.population.profiles, &policy);
        let outcomes = report.violation_outcomes();
        let rate = |segment| {
            let members = scenario.population.segment_members(segment);
            if members.is_empty() {
                return 0.0;
            }
            members.iter().filter(|&&i| outcomes[i]).count() as f64 / members.len() as f64
        };
        let f = rate(Segment::Fundamentalist);
        let u = rate(Segment::Unconcerned);
        assert!(f >= u, "step {step}: fundamentalist {f} < unconcerned {u}");
    }
}

#[test]
fn bulk_registration_round_trips_every_profile() {
    let scenario = Scenario::social_network(150, 9);
    let mut ppdb = loaded_ppdb(&scenario);
    // Spot-check a handful of profiles read back from storage.
    for idx in [0usize, 7, 77, 149] {
        let expected = &scenario.population.profiles[idx];
        let got = ppdb.provider_profile(expected.id()).unwrap();
        assert_eq!(&got, expected, "profile {idx}");
    }
    assert_eq!(ppdb.provider_ids().unwrap().len(), 150);
}
