//! End-to-end: the paper's §8 worked example through every layer —
//! DSL text → policy objects → durable relational storage → crash
//! recovery → audit — must still produce Table 1 exactly.

use quantifying_privacy_violations::core::report;
use quantifying_privacy_violations::policy::dsl;
use quantifying_privacy_violations::prelude::*;

/// The §8 configuration written in the policy DSL (v=5, g=5, r=5 as raw
/// levels; preferences per Table 1).
const TABLE1_DSL: &str = r#"
    policy "house" {
      attribute weight {
        purpose "pr" { vis 5; gran 5; ret 5; }
      }
    }
    preferences provider 0 { // Alice: <v+2, g+1, r+3>
      attribute weight { purpose "pr" { vis 7; gran 6; ret 8; } }
    }
    preferences provider 1 { // Ted: <v+2, g-1, r+2>
      attribute weight { purpose "pr" { vis 7; gran 4; ret 7; } }
    }
    preferences provider 2 { // Bob: <v, g-1, r-1>
      attribute weight { purpose "pr" { vis 5; gran 4; ret 4; } }
    }
"#;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn table1_from_dsl_through_durable_storage() {
    let doc = dsl::parse(TABLE1_DSL).expect("dsl parses");
    assert_eq!(doc.policies.len(), 1);
    assert_eq!(doc.preferences.len(), 3);

    let dir = temp_dir("table1");
    let scenario = Scenario::worked_example();

    // Phase 1: build a durable PPDB from the DSL document.
    {
        let db = Database::open(&dir).expect("open durable db");
        let mut ppdb = Ppdb::create(
            db,
            PpdbConfig::new("people", "provider_id"),
            scenario.data_schema(),
        )
        .expect("create ppdb");
        ppdb.set_policy(&doc.policies[0]).unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();

        // Sensitivities and thresholds from Table 1; preferences from DSL.
        let sens = [
            DatumSensitivity::new(1, 1, 2, 1),
            DatumSensitivity::new(3, 1, 5, 2),
            DatumSensitivity::new(4, 1, 3, 2),
        ];
        let thresholds = [10u64, 50, 100];
        for (i, prefs) in doc.preferences.iter().enumerate() {
            let mut profile = ProviderProfile::new(prefs.provider, thresholds[i]);
            profile.preferences = prefs.clone();
            profile.sensitivities.insert("weight".into(), sens[i]);
            ppdb.register_provider(
                &profile,
                Row::from_values([Value::Int(i as i64), Value::Int(70)]),
            )
            .unwrap();
        }
        // Drop without checkpoint: recovery must come from the WAL.
    }

    // Phase 2: reopen (crash recovery) and audit.
    {
        let db = Database::open(&dir).expect("recovering open");
        let mut ppdb = Ppdb::open(db, PpdbConfig::new("people", "provider_id")).unwrap();
        let audit = ppdb.audit().unwrap();

        let scores: Vec<u64> = audit.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80], "Eq. 20 after recovery");
        let defaults: Vec<bool> = audit.providers.iter().map(|p| p.defaulted).collect();
        assert_eq!(defaults, vec![false, true, false], "Eqs. 21-23");
        assert!((audit.p_default() - 1.0 / 3.0).abs() < 1e-12, "Eq. 24");
        assert_eq!(audit.total_violations, 140);

        // The rendered report names the violated dimensions.
        let text = report::render(&audit);
        assert!(text.contains("weight/pr[gran]"), "{text}");
        assert!(text.contains("weight/pr[gran,ret]"), "{text}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dsl_round_trip_preserves_audit_results() {
    // policy → DSL text → policy must audit identically.
    let scenario = Scenario::worked_example();
    let printed = dsl::print_policy(&scenario.baseline_policy);
    let reparsed = dsl::parse(&printed).unwrap();
    assert_eq!(reparsed.policies.len(), 1);

    let engine = scenario.engine();
    let before = engine.run(&scenario.population.profiles);
    let after = engine.run_with_policy(&scenario.population.profiles, &reparsed.policies[0]);
    assert_eq!(before.total_violations, after.total_violations);
    assert_eq!(before.p_violation(), after.p_violation());
}

#[test]
fn removing_ted_restores_alpha_compliance() {
    // After Ted defaults and leaves, P(W) drops from 2/3 to 1/2.
    let scenario = Scenario::worked_example();
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("people", "provider_id"),
        scenario.data_schema(),
    )
    .unwrap();
    ppdb.set_policy(&scenario.baseline_policy).unwrap();
    ppdb.set_attribute_weight("weight", 4).unwrap();
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone()).unwrap();
    }
    let before = ppdb.audit().unwrap();
    assert!(!before.is_alpha_ppdb(0.5));

    let leavers: Vec<ProviderId> = before.defaulters().map(|p| p.provider).collect();
    assert_eq!(leavers, vec![ProviderId(1)]); // Ted
    for id in leavers {
        ppdb.remove_provider(id).unwrap();
    }
    let after = ppdb.audit().unwrap();
    assert_eq!(after.population(), 2);
    // Bob is still violated (w=1) but does not default.
    assert!((after.p_violation() - 0.5).abs() < 1e-12);
    assert!(after.is_alpha_ppdb(0.5));
    assert_eq!(after.p_default(), 0.0);
}
