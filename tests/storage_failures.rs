//! Failure injection against the storage substrate.
//!
//! A privacy-preserving database is only trustworthy if its storage fails
//! *loudly*: silently dropping a preference row would mean silently missing
//! a violation. These tests corrupt the on-disk artefacts in targeted ways
//! and assert the engine either recovers exactly the acknowledged state or
//! refuses to open.

use quantifying_privacy_violations::prelude::*;
use quantifying_privacy_violations::reldb::db::{catalog_snap_path, pages_snap_path, wal_path};
use quantifying_privacy_violations::reldb::DbError;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-fail-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_db(dir: &std::path::Path) {
    let mut db = Database::open(dir).unwrap();
    db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
}

fn count_rows(dir: &std::path::Path) -> i64 {
    let mut db = Database::open(dir).unwrap();
    let rs = db.query("SELECT COUNT(*) FROM t").unwrap();
    rs.rows[0].values[0].as_int().unwrap()
}

#[test]
fn torn_wal_tail_loses_only_unacknowledged_writes() {
    let dir = temp_dir("torn-tail");
    seed_db(&dir);
    // Append garbage bytes to the WAL, as if a crash tore the last frame.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path(&dir, 0))
            .unwrap();
        f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe])
            .unwrap();
    }
    // All three committed rows survive; the torn frame is ignored.
    assert_eq!(count_rows(&dir), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_corruption_midfile_truncates_to_the_valid_prefix() {
    let dir = temp_dir("mid-corrupt");
    seed_db(&dir);
    // Flip a byte early in the WAL: everything after the first bad frame
    // is unrecoverable, and recovery must not invent data. (The DDL frame
    // comes first, so corrupting a *late* byte keeps the table itself.)
    let wal = wal_path(&dir, 0);
    let mut bytes = std::fs::read(&wal).unwrap();
    let target = bytes.len() - 10; // inside the last frames
    bytes[target] ^= 0xff;
    std::fs::write(&wal, bytes).unwrap();
    let mut db = Database::open(&dir).unwrap();
    // The table exists (its DDL frame precedes the corruption)…
    let rs = db.query("SELECT COUNT(*) FROM t").unwrap();
    let n = rs.rows[0].values[0].as_int().unwrap();
    // …and we kept a prefix, never more than was committed.
    assert!(n <= 3, "recovered {n} rows from a corrupt log");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_catalog_snapshot_is_refused() {
    let dir = temp_dir("bad-catalog");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.checkpoint().unwrap();
    }
    // Scribble over the catalog snapshot (generation 1 after the
    // checkpoint above).
    std::fs::write(catalog_snap_path(&dir, 1), b"not a catalog").unwrap();
    let err = Database::open(&dir).unwrap_err();
    assert!(matches!(err, DbError::Corruption(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_page_snapshot_is_refused() {
    let dir = temp_dir("bad-pages");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.checkpoint().unwrap();
    }
    // Truncate the page snapshot to a non-page-multiple length.
    let snap = pages_snap_path(&dir, 1);
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() - 100]).unwrap();
    let err = Database::open(&dir).unwrap_err();
    assert!(matches!(err, DbError::Corruption(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zeroed_page_in_snapshot_is_detected_on_access() {
    let dir = temp_dir("zero-page");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT, pad TEXT)").unwrap();
        // Enough rows to span multiple pages.
        for chunk in 0..4 {
            let values: Vec<String> = (0..50)
                .map(|i| format!("({}, '{}')", chunk * 50 + i, "x".repeat(64)))
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
                .unwrap();
        }
        db.checkpoint().unwrap();
    }
    // Zero out a page in the middle of the snapshot (bad magic).
    let snap = pages_snap_path(&dir, 1);
    let mut bytes = std::fs::read(&snap).unwrap();
    let page_size = 4096;
    assert!(bytes.len() >= 3 * page_size);
    for b in &mut bytes[page_size..2 * page_size] {
        *b = 0;
    }
    std::fs::write(&snap, bytes).unwrap();
    // Opening rebuilds indexes by scanning heaps, so the bad page is hit
    // during open (or at latest on first scan) — either way: Corruption,
    // never silent data loss.
    match Database::open(&dir) {
        Err(e) => assert!(matches!(e, DbError::Corruption(_)), "{e}"),
        Ok(mut db) => {
            let err = db.query("SELECT COUNT(*) FROM t").unwrap_err();
            assert!(matches!(err, DbError::Corruption(_)), "{err}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ppdb_survives_reopen_with_full_metadata() {
    // The privacy layer's durability contract: policy, preferences,
    // sensitivities, and thresholds all come back after a crashy reopen.
    let dir = temp_dir("ppdb-reopen");
    let scenario = Scenario::healthcare(40, 3);
    {
        let db = Database::open(&dir).unwrap();
        let mut ppdb = Ppdb::create(
            db,
            PpdbConfig::new("patients", "provider_id"),
            scenario.data_schema(),
        )
        .unwrap();
        ppdb.set_policy(&scenario.baseline_policy).unwrap();
        for attr in &scenario.spec.attributes {
            ppdb.set_attribute_weight(&attr.name, attr.weight).unwrap();
        }
        for (profile, row) in scenario
            .population
            .profiles
            .iter()
            .zip(&scenario.population.data_rows)
        {
            ppdb.register_provider(profile, row.clone()).unwrap();
        }
        // No checkpoint — everything must come back via the WAL.
    }
    let db = Database::open(&dir).unwrap();
    let mut ppdb = Ppdb::open(db, PpdbConfig::new("patients", "provider_id")).unwrap();
    let report = ppdb.audit().unwrap();
    let fresh = scenario.engine().run(&scenario.population.profiles);
    assert_eq!(report.total_violations, fresh.total_violations);
    assert_eq!(report.p_default(), fresh.p_default());
    std::fs::remove_dir_all(&dir).unwrap();
}
