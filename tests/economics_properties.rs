//! Property-based tests of the §9 economics.

use proptest::prelude::*;

use quantifying_privacy_violations::economics::expansion::ExpansionSweep;
use quantifying_privacy_violations::prelude::*;

proptest! {
    /// Equation 31 is exactly the boundary of Equation 28:
    /// `Utility_future > Utility_current ⟺ T > U(Nc/Nf − 1)` (Nf > 0).
    #[test]
    fn eq31_is_the_boundary_of_eq28(
        u in 0.01f64..1000.0,
        n_current in 1usize..10_000,
        lost in 0usize..10_000,
        t in 0.0f64..1000.0,
    ) {
        let n_future = n_current.saturating_sub(lost);
        let model = UtilityModel::new(u);
        if n_future == 0 {
            prop_assert!(!model.is_justified(n_current, 0, t));
            prop_assert!(model.break_even_extra(n_current, 0).is_infinite());
        } else {
            let t_min = model.break_even_extra(n_current, n_future);
            // Comfortably above/below the boundary to dodge float equality.
            prop_assert!(model.is_justified(n_current, n_future, t_min + 1e-6 * (1.0 + t_min.abs())));
            if t_min > 0.0 {
                prop_assert!(!model.is_justified(n_current, n_future, t_min * (1.0 - 1e-9) - 1e-9));
            }
        }
    }

    /// Utility accounting is linear and exact.
    #[test]
    fn utilities_are_linear(u in 0.0f64..100.0, n in 0usize..1000, t in 0.0f64..100.0) {
        let model = UtilityModel::new(u);
        prop_assert!((model.utility_current(n) - n as f64 * u).abs() < 1e-9);
        prop_assert!((model.utility_future(n, t) - n as f64 * (u + t)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Sweep sanity over random populations: defaults are monotone in
    /// widening, `N_future + defaults = N`, and `t_offered` follows the
    /// linear offer curve.
    #[test]
    fn sweep_rows_are_internally_consistent(seed in 0u64..200) {
        let scenario = Scenario::healthcare(80, seed);
        let engine = scenario.engine();
        let sweep = ExpansionSweep::new(
            &engine,
            &scenario.population.profiles,
            UtilityModel::new(scenario.utility_per_provider),
            3.0,
        );
        let rows = sweep.run_uniform(&scenario.baseline_policy, 6);
        prop_assert_eq!(rows.len(), 7);
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(row.step as usize, i);
            prop_assert_eq!(row.n_future + row.defaults, 80);
            prop_assert!((row.t_offered - 3.0 * i as f64).abs() < 1e-12);
            // Net gain consistency with the utility model.
            let expect = row.utility_future - scenario.utility_per_provider * 80.0;
            prop_assert!((row.net_gain - expect).abs() < 1e-9);
        }
        for pair in rows.windows(2) {
            prop_assert!(pair[1].defaults >= pair[0].defaults);
            prop_assert!(pair[1].total_violations >= pair[0].total_violations);
            prop_assert!(pair[1].p_violation >= pair[0].p_violation - 1e-12);
        }
    }
}

/// The iterated game's population is non-increasing and the log is finite.
#[test]
fn best_response_game_population_shrinks_monotonically() {
    use quantifying_privacy_violations::economics::game::BestResponseGame;
    let scenario = Scenario::healthcare(300, 77);
    let engine = scenario.engine();
    // Condition on baseline survivors, as in E3.
    let baseline = engine.run(&scenario.population.profiles);
    let current: Vec<ProviderProfile> = scenario
        .population
        .profiles
        .iter()
        .zip(baseline.providers.iter())
        .filter(|(_, a)| !a.defaulted)
        .map(|(p, _)| p.clone())
        .collect();
    let n0 = current.len();
    let game = BestResponseGame::new(
        engine,
        UtilityModel::new(scenario.utility_per_provider),
        scenario.utility_per_provider * 0.2,
        8,
    );
    let (rounds, survivors) = game.play(current, 50);
    let mut pop = n0;
    for r in &rounds {
        assert!(r.population <= pop);
        assert!(r.net_gain > 0.0, "round {} had non-positive gain", r.round);
        pop = r.population - r.defaults;
    }
    assert_eq!(survivors.len(), pop);
}
