//! Graceful degradation of the parallel audit under worker faults.
//!
//! The contract, exercised end-to-end through the public
//! [`Ppdb::par_audit`] entry point: a panicking audit worker never takes
//! the process down — the poisoned chunk is retried once in place, and a
//! persistent failure surfaces as a structured
//! [`AuditError::WorkerPanicked`] naming the chunk, while the engine and
//! the database both stay usable afterwards.

use std::num::NonZeroUsize;

use quantifying_privacy_violations::core::par::failpoint;
use quantifying_privacy_violations::core::AuditError;
use quantifying_privacy_violations::prelude::*;

/// A PPDB large enough that `par_audit` actually shards (population above
/// the sequential fall-back threshold).
fn seeded_ppdb() -> Ppdb {
    let scenario = Scenario::healthcare(400, 7);
    assert!(
        scenario.population.profiles.len() >= quantifying_privacy_violations::core::PAR_THRESHOLD,
        "population must be large enough to exercise the parallel path"
    );
    let db = Database::in_memory();
    let mut ppdb = Ppdb::create(
        db,
        PpdbConfig::new("patients", "provider_id"),
        scenario.data_schema(),
    )
    .unwrap();
    ppdb.set_policy(&scenario.baseline_policy).unwrap();
    for attr in &scenario.spec.attributes {
        ppdb.set_attribute_weight(&attr.name, attr.weight).unwrap();
    }
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone()).unwrap();
    }
    ppdb
}

#[test]
fn transient_worker_panic_is_retried_and_the_report_is_unchanged() {
    let _guard = failpoint::serialize();
    let mut ppdb = seeded_ppdb();
    let sequential = ppdb.audit().unwrap();

    // Chunk 1 panics exactly once: the in-place retry must absorb it and
    // the report must come out as if nothing happened.
    failpoint::arm(1, 1);
    let report = ppdb.par_audit(NonZeroUsize::new(4).unwrap());
    failpoint::disarm();
    assert_eq!(report.unwrap(), sequential);
}

#[test]
fn poisoned_chunk_surfaces_as_a_structured_error_naming_the_chunk() {
    let _guard = failpoint::serialize();
    let mut ppdb = seeded_ppdb();
    let sequential = ppdb.audit().unwrap();

    // Chunk 1 panics on every attempt, including the retry.
    failpoint::arm(1, i64::MAX);
    let err = ppdb
        .par_audit(NonZeroUsize::new(4).unwrap())
        .expect_err("a permanently poisoned chunk must not yield a report");
    failpoint::disarm();
    match &err {
        AuditError::WorkerPanicked {
            chunk, start, end, ..
        } => {
            assert_eq!(*chunk, 1, "the poisoned chunk must be identified");
            assert!(start < end, "the chunk's provider range must be real");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(err.to_string().contains("chunk 1"), "{err}");

    // The failure is contained: the same PPDB audits cleanly afterwards,
    // both sequentially and in parallel.
    assert_eq!(ppdb.audit().unwrap(), sequential);
    let parallel = ppdb.par_audit(NonZeroUsize::new(4).unwrap()).unwrap();
    assert_eq!(parallel, sequential);
}
