//! # qpv-policy
//!
//! House privacy policies and provider privacy preferences — the two sides
//! whose misalignment *Quantifying Privacy Violations* measures.
//!
//! * A [`HousePolicy`] is the paper's `HP ⊆ Policy = {⟨a, p⟩}` (Equations
//!   2–4): a set of privacy tuples attached to attributes, describing what
//!   the house *will do* with collected data.
//! * A [`ProviderPreferences`] is the paper's `ProviderPref_i` (Equations
//!   5–6): a set of privacy tuples attached to the same attributes,
//!   describing what provider *i consents to*.
//!
//! Both sides use the `qpv-taxonomy` four-dimensional tuples; the violation
//! arithmetic itself lives in `qpv-core`.
//!
//! The [`dsl`] module provides a small textual policy language so policies
//! and preference profiles can be written, stored, diffed, and audited as
//! text — the transparency mechanism the paper's introduction calls for.

pub mod diff;
pub mod dsl;
pub mod house;
pub mod provider;

pub use diff::{ChangeKind, PolicyChange, PolicyDiff};
pub use house::{HousePolicy, HousePolicyBuilder, PolicyTuple};
pub use provider::{PreferenceTuple, ProviderId, ProviderPreferences, ProviderPrefsBuilder};
