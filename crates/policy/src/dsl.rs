//! A small textual language for policies and preference profiles.
//!
//! The paper's transparency argument needs policies that data providers can
//! *read*: "making the privacy practices of the house transparent enough
//! that data providers can identify the areas where alignment has not been
//! achieved". This DSL is that surface — a P3P-like, diff-able text format:
//!
//! ```text
//! // what the house does
//! policy "acme" {
//!   attribute weight {
//!     purpose "billing" { vis house; gran specific; ret 90d; }
//!     purpose "ads"     { vis third-party; gran partial; ret 2y; }
//!   }
//! }
//!
//! // what provider 42 consents to
//! preferences provider 42 {
//!   attribute weight {
//!     purpose "billing" { vis house; gran partial; ret 30d; }
//!   }
//! }
//! ```
//!
//! Dimension values accept the taxonomy's named levels (`house`,
//! `third-party`, `specific`, …), raw integers, and retention durations
//! (`90d`, `6m`, `2y`, `forever`). Every purpose block must state all three
//! ordered dimensions — the format is for auditing, so nothing is implicit.

use std::fmt::Write as _;

use qpv_taxonomy::{GranularityLevel, PrivacyTuple, RetentionLevel, VisibilityLevel};

use crate::house::HousePolicy;
use crate::provider::{ProviderId, ProviderPreferences};

/// Parse or print error, with a one-line description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError(pub String);

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy dsl error: {}", self.0)
    }
}

impl std::error::Error for DslError {}

/// A parsed DSL document: any number of policies and preference profiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// House policies, in source order.
    pub policies: Vec<HousePolicy>,
    /// Provider preference profiles, in source order.
    pub preferences: Vec<ProviderPreferences>,
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Str(String),
    LBrace,
    RBrace,
    Semi,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>, DslError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DslError("unterminated string".into()));
                }
                toks.push(Tok::Str(input[start..i].to_string()));
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b':')
                {
                    i += 1;
                }
                toks.push(Tok::Word(input[start..i].to_string()));
            }
            other => {
                return Err(DslError(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )));
            }
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), DslError> {
        let got = self.next();
        if got == t {
            Ok(())
        } else {
            Err(DslError(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DslError> {
        match self.next() {
            Tok::Word(w) if w == kw => Ok(()),
            other => Err(DslError(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn word(&mut self) -> Result<String, DslError> {
        match self.next() {
            Tok::Word(w) => Ok(w),
            other => Err(DslError(format!("expected a word, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, DslError> {
        match self.next() {
            Tok::Str(s) => Ok(s),
            other => Err(DslError(format!("expected a string, found {other:?}"))),
        }
    }
}

/// Parse a DSL document.
pub fn parse(input: &str) -> Result<Document, DslError> {
    let mut p = P {
        toks: lex(input)?,
        pos: 0,
    };
    let mut doc = Document::default();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Word(w) if w == "policy" => {
                p.next();
                let name = p.string()?;
                let mut policy = HousePolicy::new(name);
                parse_body(&mut p, |attr, tuple| policy.add(attr, tuple))?;
                doc.policies.push(policy);
            }
            Tok::Word(w) if w == "preferences" => {
                p.next();
                p.keyword("provider")?;
                let id_word = p.word()?;
                let id: u64 = id_word
                    .parse()
                    .map_err(|_| DslError(format!("bad provider id {id_word:?}")))?;
                let mut prefs = ProviderPreferences::new(ProviderId(id));
                parse_body(&mut p, |attr, tuple| prefs.add(attr, tuple))?;
                doc.preferences.push(prefs);
            }
            other => {
                return Err(DslError(format!(
                    "expected `policy` or `preferences`, found {other:?}"
                )));
            }
        }
    }
    Ok(doc)
}

/// Parse `{ attribute ... { purpose ... }* }*`, invoking `sink` for each
/// `(attribute, tuple)` pair.
fn parse_body(p: &mut P, mut sink: impl FnMut(String, PrivacyTuple)) -> Result<(), DslError> {
    p.expect(Tok::LBrace)?;
    while *p.peek() != Tok::RBrace {
        p.keyword("attribute")?;
        let attribute = p.word()?;
        p.expect(Tok::LBrace)?;
        while *p.peek() != Tok::RBrace {
            p.keyword("purpose")?;
            let purpose = p.string()?;
            p.expect(Tok::LBrace)?;
            let mut vis: Option<VisibilityLevel> = None;
            let mut gran: Option<GranularityLevel> = None;
            let mut ret: Option<RetentionLevel> = None;
            while *p.peek() != Tok::RBrace {
                let key = p.word()?;
                let value = p.word()?;
                match key.as_str() {
                    "vis" => {
                        vis = Some(value.parse().map_err(|e| DslError(format!("{e}")))?);
                    }
                    "gran" => {
                        gran = Some(value.parse().map_err(|e| DslError(format!("{e}")))?);
                    }
                    "ret" => {
                        ret = Some(value.parse().map_err(|e| DslError(format!("{e}")))?);
                    }
                    other => {
                        return Err(DslError(format!("expected vis/gran/ret, found {other:?}")));
                    }
                }
                p.expect(Tok::Semi)?;
            }
            p.expect(Tok::RBrace)?;
            let (Some(vis), Some(gran), Some(ret)) = (vis, gran, ret) else {
                return Err(DslError(format!(
                    "purpose {purpose:?} of attribute {attribute:?} must state vis, gran, and ret"
                )));
            };
            sink(
                attribute.clone(),
                PrivacyTuple::new(purpose.as_str(), vis, gran, ret),
            );
        }
        p.expect(Tok::RBrace)?;
    }
    p.expect(Tok::RBrace)?;
    Ok(())
}

// -------------------------------------------------------------- printer --

fn print_tuples<'a>(out: &mut String, tuples: impl Iterator<Item = (&'a str, &'a PrivacyTuple)>) {
    // Group by attribute, preserving first-seen order.
    let mut attrs: Vec<(&str, Vec<&PrivacyTuple>)> = Vec::new();
    for (attr, tuple) in tuples {
        match attrs.iter_mut().find(|(a, _)| *a == attr) {
            Some((_, list)) => list.push(tuple),
            None => attrs.push((attr, vec![tuple])),
        }
    }
    for (attr, list) in attrs {
        let _ = writeln!(out, "  attribute {attr} {{");
        for t in list {
            let _ = writeln!(
                out,
                "    purpose \"{}\" {{ vis {}; gran {}; ret {}; }}",
                t.purpose, t.point.visibility, t.point.granularity, t.point.retention
            );
        }
        let _ = writeln!(out, "  }}");
    }
}

/// Render a house policy as DSL text.
pub fn print_policy(policy: &HousePolicy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy \"{}\" {{", policy.name);
    print_tuples(
        &mut out,
        policy
            .tuples()
            .iter()
            .map(|t| (t.attribute.as_str(), &t.tuple)),
    );
    out.push_str("}\n");
    out
}

/// Render provider preferences as DSL text.
pub fn print_preferences(prefs: &ProviderPreferences) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "preferences provider {} {{", prefs.provider.0);
    print_tuples(
        &mut out,
        prefs
            .tuples()
            .iter()
            .map(|t| (t.attribute.as_str(), &t.tuple)),
    );
    out.push_str("}\n");
    out
}

/// Render a whole document.
pub fn print_document(doc: &Document) -> String {
    let mut out = String::new();
    for p in &doc.policies {
        out.push_str(&print_policy(p));
        out.push('\n');
    }
    for p in &doc.preferences {
        out.push_str(&print_preferences(p));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::{Dim, PrivacyPoint, Purpose};

    const SAMPLE: &str = r#"
        // Acme's stated practices
        policy "acme" {
          attribute weight {
            purpose "billing" { vis house; gran specific; ret 90d; }
            purpose "ads"     { vis third-party; gran partial; ret 2y; }
          }
          attribute age {
            purpose "billing" { vis house; gran partial; ret 30d; }
          }
        }

        preferences provider 42 {
          attribute weight {
            purpose "billing" { vis house; gran partial; ret 30d; }
          }
        }
    "#;

    #[test]
    fn parses_policies_and_preferences() {
        let doc = parse(SAMPLE).unwrap();
        assert_eq!(doc.policies.len(), 1);
        assert_eq!(doc.preferences.len(), 1);
        let hp = &doc.policies[0];
        assert_eq!(hp.name, "acme");
        assert_eq!(hp.len(), 3);
        let ads = hp.get("weight", &Purpose::new("ads")).unwrap();
        assert_eq!(ads.point.get(Dim::Visibility), 3); // third-party
        assert_eq!(ads.point.get(Dim::Retention), 730); // 2y
        let prefs = &doc.preferences[0];
        assert_eq!(prefs.provider.0, 42);
        assert_eq!(
            prefs.effective_point("weight", &Purpose::new("billing")),
            PrivacyPoint::from_raw(2, 2, 30)
        );
    }

    #[test]
    fn raw_numeric_levels_are_accepted() {
        let doc =
            parse(r#"policy "p" { attribute a { purpose "x" { vis 7; gran 9; ret 1000; } } }"#)
                .unwrap();
        let t = doc.policies[0].get("a", &Purpose::new("x")).unwrap();
        assert_eq!(t.point, PrivacyPoint::from_raw(7, 9, 1000));
    }

    #[test]
    fn forever_retention() {
        let doc = parse(
            r#"policy "p" { attribute a { purpose "x" { vis none; gran none; ret forever; } } }"#,
        )
        .unwrap();
        let t = doc.policies[0].get("a", &Purpose::new("x")).unwrap();
        assert!(t.point.retention.is_forever());
    }

    #[test]
    fn missing_dimension_is_an_error() {
        let err =
            parse(r#"policy "p" { attribute a { purpose "x" { vis house; } } }"#).unwrap_err();
        assert!(err.to_string().contains("must state"), "{err}");
    }

    #[test]
    fn garbage_inputs_error_cleanly() {
        assert!(parse("polcy \"x\" {}").is_err());
        assert!(parse("policy \"x\" { attribute a }").is_err());
        assert!(parse("policy \"unterminated").is_err());
        assert!(parse("preferences provider abc {}").is_err());
        assert!(parse(r#"policy "p" { attribute a { purpose "x" { speed fast; } } }"#).is_err());
        assert!(parse("@").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let doc = parse("// nothing but comments\n// and more\n").unwrap();
        assert_eq!(doc, Document::default());
    }

    #[test]
    fn print_parse_round_trip() {
        let doc = parse(SAMPLE).unwrap();
        let text = print_document(&doc);
        let again = parse(&text).unwrap();
        assert_eq!(again, doc);
    }

    #[test]
    fn printer_groups_attributes() {
        let doc = parse(SAMPLE).unwrap();
        let text = print_policy(&doc.policies[0]);
        // "attribute weight" appears once even though it has two purposes.
        assert_eq!(text.matches("attribute weight").count(), 1);
        assert_eq!(text.matches("purpose").count(), 3);
    }
}
