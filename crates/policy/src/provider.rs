//! Provider privacy preferences (the paper's `ProviderPref_i`).

use std::fmt;

use serde::{Deserialize, Serialize};

use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, Purpose, PurposeSet};

/// Identifies a data provider.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ProviderId(pub u64);

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "provider#{}", self.0)
    }
}

/// One `⟨i, a, p⟩` element of a provider's preferences (Equation 5), with
/// the provider id held by the owning [`ProviderPreferences`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferenceTuple {
    /// The attribute the preference covers.
    pub attribute: String,
    /// The maximum exposure the provider consents to.
    pub tuple: PrivacyTuple,
}

/// All privacy preferences of one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderPreferences {
    /// Whose preferences these are.
    pub provider: ProviderId,
    tuples: Vec<PreferenceTuple>,
}

impl ProviderPreferences {
    /// Empty preferences for a provider. Under Definition 1's implicit rule,
    /// "no stated preference" for a purpose means "reveal nothing for that
    /// purpose" — so an empty preference set is maximally conservative, not
    /// maximally permissive.
    pub fn new(provider: ProviderId) -> ProviderPreferences {
        ProviderPreferences {
            provider,
            tuples: Vec::new(),
        }
    }

    /// Start building preferences fluently.
    pub fn builder(provider: ProviderId) -> ProviderPrefsBuilder {
        ProviderPrefsBuilder {
            prefs: ProviderPreferences::new(provider),
        }
    }

    /// Add a preference tuple.
    pub fn add(&mut self, attribute: impl Into<String>, tuple: PrivacyTuple) {
        self.tuples.push(PreferenceTuple {
            attribute: attribute.into(),
            tuple,
        });
    }

    /// All stated preference tuples.
    pub fn tuples(&self) -> &[PreferenceTuple] {
        &self.tuples
    }

    /// Number of stated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no preferences are stated.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// `ProviderPref_i^j`: preferences for one attribute (Equation 6).
    pub fn for_attribute<'a>(
        &'a self,
        attribute: &'a str,
    ) -> impl Iterator<Item = &'a PrivacyTuple> + 'a {
        self.tuples
            .iter()
            .filter(move |t| t.attribute == attribute)
            .map(|t| &t.tuple)
    }

    /// The stated preference point for `(attribute, purpose)`, or the
    /// implicit `⟨0,0,0⟩` if the provider never mentioned that purpose for
    /// that attribute (Definition 1's added tuple `⟨i, a, pr, 0, 0, 0⟩`).
    pub fn effective_point(&self, attribute: &str, purpose: &Purpose) -> PrivacyPoint {
        self.tuples
            .iter()
            .find(|t| t.attribute == attribute && t.tuple.purpose == *purpose)
            .map(|t| t.tuple.point)
            .unwrap_or(PrivacyPoint::ZERO)
    }

    /// Whether the provider explicitly stated a preference for
    /// `(attribute, purpose)`.
    pub fn has_stated(&self, attribute: &str, purpose: &Purpose) -> bool {
        self.tuples
            .iter()
            .any(|t| t.attribute == attribute && t.tuple.purpose == *purpose)
    }

    /// Every distinct attribute mentioned, sorted.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.tuples.iter().map(|t| t.attribute.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every distinct purpose mentioned.
    pub fn purposes(&self) -> PurposeSet {
        self.tuples
            .iter()
            .map(|t| t.tuple.purpose.clone())
            .collect()
    }
}

impl fmt::Display for ProviderPreferences {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "preferences {} {{", self.provider)?;
        for t in &self.tuples {
            writeln!(f, "  {} -> {}", t.attribute, t.tuple)?;
        }
        f.write_str("}")
    }
}

/// Fluent builder for [`ProviderPreferences`].
#[derive(Debug)]
pub struct ProviderPrefsBuilder {
    prefs: ProviderPreferences,
}

impl ProviderPrefsBuilder {
    /// Add a preference tuple.
    pub fn tuple(mut self, attribute: impl Into<String>, tuple: PrivacyTuple) -> Self {
        self.prefs.add(attribute, tuple);
        self
    }

    /// Finish building.
    pub fn build(self) -> ProviderPreferences {
        self.prefs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::Dim;

    fn tuple(purpose: &str, v: u32, g: u32, r: u32) -> PrivacyTuple {
        PrivacyTuple::from_point(purpose, PrivacyPoint::from_raw(v, g, r))
    }

    fn sample() -> ProviderPreferences {
        ProviderPreferences::builder(ProviderId(7))
            .tuple("weight", tuple("billing", 2, 2, 30))
            .tuple("age", tuple("billing", 2, 3, 365))
            .build()
    }

    #[test]
    fn stated_preferences_are_returned() {
        let p = sample();
        assert_eq!(
            p.effective_point("weight", &Purpose::new("billing")),
            PrivacyPoint::from_raw(2, 2, 30)
        );
        assert!(p.has_stated("weight", &Purpose::new("billing")));
    }

    #[test]
    fn unstated_purpose_defaults_to_deny_all() {
        let p = sample();
        // Definition 1: missing purpose ⇒ ⟨0,0,0⟩.
        assert_eq!(
            p.effective_point("weight", &Purpose::new("ads")),
            PrivacyPoint::ZERO
        );
        assert!(!p.has_stated("weight", &Purpose::new("ads")));
        // Missing attribute too.
        assert_eq!(
            p.effective_point("income", &Purpose::new("billing")),
            PrivacyPoint::ZERO
        );
    }

    #[test]
    fn empty_preferences_deny_everything() {
        let p = ProviderPreferences::new(ProviderId(1));
        assert!(p.is_empty());
        assert_eq!(
            p.effective_point("anything", &Purpose::new("anything")),
            PrivacyPoint::ZERO
        );
    }

    #[test]
    fn projections() {
        let p = sample();
        assert_eq!(p.for_attribute("weight").count(), 1);
        assert_eq!(p.attributes(), vec!["age", "weight"]);
        assert_eq!(p.purposes().len(), 1);
        assert_eq!(
            p.for_attribute("age")
                .next()
                .unwrap()
                .point
                .get(Dim::Retention),
            365
        );
    }

    #[test]
    fn display_and_serde() {
        let p = sample();
        assert!(p.to_string().contains("provider#7"));
        let json = serde_json::to_string(&p).unwrap();
        let back: ProviderPreferences = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
