//! Structural diffs between two house policies.
//!
//! The paper's §10 motivates continuous monitoring of "frequently changing
//! privacy policies on social networking sites": the first thing a provider
//! (or auditor) needs is *what changed*. [`diff`] compares two policies
//! tuple-by-tuple, classifying each `(attribute, purpose)` pair as added,
//! removed, widened, narrowed, mixed, or unchanged — with per-dimension
//! deltas, so the violation impact is readable before any audit runs.

use std::fmt;

use serde::{Deserialize, Serialize};

use qpv_taxonomy::{Dim, PrivacyPoint, Purpose};

use crate::house::HousePolicy;

/// How one `(attribute, purpose)` entry changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// Present only in the new policy — a brand-new use of the data
    /// (always a violation risk under the implicit deny-all rule).
    Added,
    /// Present only in the old policy.
    Removed,
    /// Every changed dimension moved toward more exposure.
    Widened,
    /// Every changed dimension moved toward less exposure.
    Narrowed,
    /// Some dimensions widened while others narrowed.
    Mixed,
}

/// One entry of a policy diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyChange {
    /// The attribute affected.
    pub attribute: String,
    /// The purpose affected.
    pub purpose: Purpose,
    /// The classification.
    pub kind: ChangeKind,
    /// The old point (`None` for [`ChangeKind::Added`]).
    pub old: Option<PrivacyPoint>,
    /// The new point (`None` for [`ChangeKind::Removed`]).
    pub new: Option<PrivacyPoint>,
    /// Signed per-dimension delta `new − old` (zeros for add/remove).
    pub delta: [(Dim, i64); 3],
}

impl fmt::Display for PolicyChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ChangeKind::Added => write!(
                f,
                "+ {}/{} -> {}",
                self.attribute,
                self.purpose,
                self.new.expect("added has new")
            ),
            ChangeKind::Removed => write!(
                f,
                "- {}/{} (was {})",
                self.attribute,
                self.purpose,
                self.old.expect("removed has old")
            ),
            _ => {
                write!(f, "~ {}/{}:", self.attribute, self.purpose)?;
                for (dim, d) in self.delta {
                    if d != 0 {
                        write!(
                            f,
                            " {}{}{}",
                            dim.short_name(),
                            if d > 0 { "+" } else { "" },
                            d
                        )?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// The full diff between two policies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyDiff {
    /// All changed entries, in (attribute, purpose) order.
    pub changes: Vec<PolicyChange>,
}

impl PolicyDiff {
    /// Whether the two policies are identical (per (attribute, purpose)
    /// points).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: ChangeKind) -> impl Iterator<Item = &PolicyChange> {
        self.changes.iter().filter(move |c| c.kind == kind)
    }

    /// Whether any change can *increase* exposure (added, widened, or
    /// mixed) — the cheap pre-audit screen: a diff with only narrowings
    /// and removals can never create a new violation.
    pub fn may_increase_exposure(&self) -> bool {
        self.changes.iter().any(|c| {
            matches!(
                c.kind,
                ChangeKind::Added | ChangeKind::Widened | ChangeKind::Mixed
            )
        })
    }
}

impl fmt::Display for PolicyDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.changes.is_empty() {
            return f.write_str("(no changes)");
        }
        for (i, c) in self.changes.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Compare two policies. Multiple tuples for the same `(attribute,
/// purpose)` are reduced to their componentwise join first (the effective
/// exposure), so a diff entry means the *effective* policy changed.
pub fn diff(old: &HousePolicy, new: &HousePolicy) -> PolicyDiff {
    let old_map = effective_points(old);
    let new_map = effective_points(new);
    let mut keys: Vec<&(String, Purpose)> = old_map.keys().chain(new_map.keys()).collect();
    keys.sort();
    keys.dedup();

    let mut changes = Vec::new();
    for key in keys {
        let (attribute, purpose) = key;
        let old_pt = old_map.get(key).copied();
        let new_pt = new_map.get(key).copied();
        let change = match (old_pt, new_pt) {
            (None, Some(new_pt)) => PolicyChange {
                attribute: attribute.clone(),
                purpose: purpose.clone(),
                kind: ChangeKind::Added,
                old: None,
                new: Some(new_pt),
                delta: zero_delta(),
            },
            (Some(old_pt), None) => PolicyChange {
                attribute: attribute.clone(),
                purpose: purpose.clone(),
                kind: ChangeKind::Removed,
                old: Some(old_pt),
                new: None,
                delta: zero_delta(),
            },
            (Some(old_pt), Some(new_pt)) => {
                if old_pt == new_pt {
                    continue;
                }
                let delta = [
                    (
                        Dim::Visibility,
                        new_pt.get(Dim::Visibility) as i64 - old_pt.get(Dim::Visibility) as i64,
                    ),
                    (
                        Dim::Granularity,
                        new_pt.get(Dim::Granularity) as i64 - old_pt.get(Dim::Granularity) as i64,
                    ),
                    (
                        Dim::Retention,
                        new_pt.get(Dim::Retention) as i64 - old_pt.get(Dim::Retention) as i64,
                    ),
                ];
                let widened = delta.iter().any(|&(_, d)| d > 0);
                let narrowed = delta.iter().any(|&(_, d)| d < 0);
                let kind = match (widened, narrowed) {
                    (true, false) => ChangeKind::Widened,
                    (false, true) => ChangeKind::Narrowed,
                    _ => ChangeKind::Mixed,
                };
                PolicyChange {
                    attribute: attribute.clone(),
                    purpose: purpose.clone(),
                    kind,
                    old: Some(old_pt),
                    new: Some(new_pt),
                    delta,
                }
            }
            (None, None) => unreachable!("key came from one of the maps"),
        };
        changes.push(change);
    }
    PolicyDiff { changes }
}

fn zero_delta() -> [(Dim, i64); 3] {
    [
        (Dim::Visibility, 0),
        (Dim::Granularity, 0),
        (Dim::Retention, 0),
    ]
}

fn effective_points(
    policy: &HousePolicy,
) -> std::collections::BTreeMap<(String, Purpose), PrivacyPoint> {
    let mut map: std::collections::BTreeMap<(String, Purpose), PrivacyPoint> =
        std::collections::BTreeMap::new();
    for t in policy.tuples() {
        map.entry((t.attribute.clone(), t.tuple.purpose.clone()))
            .and_modify(|p| *p = p.join(&t.tuple.point))
            .or_insert(t.tuple.point);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn base() -> HousePolicy {
        HousePolicy::builder("v1")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(2, 2, 30)))
            .tuple("age", PrivacyTuple::from_point("billing", pt(2, 3, 60)))
            .build()
    }

    #[test]
    fn identical_policies_have_empty_diff() {
        let d = diff(&base(), &base());
        assert!(d.is_empty());
        assert!(!d.may_increase_exposure());
        assert_eq!(d.to_string(), "(no changes)");
    }

    #[test]
    fn added_and_removed_purposes() {
        let mut new = base();
        new.add("weight", PrivacyTuple::from_point("ads", pt(3, 3, 365)));
        let d = diff(&base(), &new);
        assert_eq!(d.len(), 1);
        assert_eq!(d.changes[0].kind, ChangeKind::Added);
        assert!(d.may_increase_exposure());

        let reverse = diff(&new, &base());
        assert_eq!(reverse.changes[0].kind, ChangeKind::Removed);
        assert!(!reverse.may_increase_exposure());
    }

    #[test]
    fn widened_narrowed_mixed() {
        // Widen weight retention, narrow age granularity, mix both on one.
        let new = HousePolicy::builder("v2")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(2, 2, 90)))
            .tuple("age", PrivacyTuple::from_point("billing", pt(2, 2, 60)))
            .build();
        let d = diff(&base(), &new);
        assert_eq!(d.len(), 2);
        let age = d.changes.iter().find(|c| c.attribute == "age").unwrap();
        assert_eq!(age.kind, ChangeKind::Narrowed);
        let weight = d.changes.iter().find(|c| c.attribute == "weight").unwrap();
        assert_eq!(weight.kind, ChangeKind::Widened);
        assert_eq!(weight.delta[2], (Dim::Retention, 60));

        let mixed = HousePolicy::builder("v3")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(1, 2, 90)))
            .tuple("age", PrivacyTuple::from_point("billing", pt(2, 3, 60)))
            .build();
        let d = diff(&base(), &mixed);
        assert_eq!(d.changes[0].kind, ChangeKind::Mixed);
        assert!(d.may_increase_exposure());
    }

    #[test]
    fn widened_uniform_diff_is_all_widened() {
        let old = base();
        let new = old.widened_uniform(2);
        let d = diff(&old, &new);
        assert_eq!(d.len(), 2);
        assert!(d.changes.iter().all(|c| c.kind == ChangeKind::Widened));
        assert_eq!(d.of_kind(ChangeKind::Widened).count(), 2);
        assert_eq!(d.of_kind(ChangeKind::Added).count(), 0);
    }

    #[test]
    fn duplicate_tuples_join_before_diffing() {
        // Two tuples for the same key: effective point is the join.
        let old = HousePolicy::builder("v1")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(3, 1, 10)))
            .tuple("weight", PrivacyTuple::from_point("billing", pt(1, 3, 5)))
            .build();
        let new = HousePolicy::builder("v2")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(3, 3, 10)))
            .build();
        // join(old) = (3,3,10) = new: no effective change.
        assert!(diff(&old, &new).is_empty());
    }

    #[test]
    fn display_shows_direction() {
        let old = base();
        let new = old.widened(Dim::Retention, 30);
        let d = diff(&old, &new);
        let shown = d.to_string();
        assert!(shown.contains("ret+30"), "{shown}");
        let mut with_ads = old.clone();
        with_ads.add("weight", PrivacyTuple::from_point("ads", pt(1, 1, 1)));
        let shown = diff(&old, &with_ads).to_string();
        assert!(shown.starts_with("+ weight/ads"), "{shown}");
    }

    #[test]
    fn serde_round_trip() {
        let d = diff(&base(), &base().widened_uniform(1));
        let json = serde_json::to_string(&d).unwrap();
        let back: PolicyDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
