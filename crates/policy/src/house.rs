//! House privacy policies (the paper's `HP`).

use std::fmt;

use serde::{Deserialize, Serialize};

use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple, Purpose, PurposeSet};

/// One `⟨attribute, privacy tuple⟩` element of a house policy
/// (Equation 2's `⟨a, p⟩`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyTuple {
    /// The attribute the tuple governs.
    pub attribute: String,
    /// What the house does with that attribute's data.
    pub tuple: PrivacyTuple,
}

/// A house's privacy policy: the set of privacy tuples it operates under.
///
/// The same attribute may carry multiple tuples (one per purpose, or even
/// several per purpose); Equation 4's `HP^j` projection is
/// [`HousePolicy::for_attribute`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HousePolicy {
    /// Human-readable policy name (e.g. the organisation).
    pub name: String,
    tuples: Vec<PolicyTuple>,
}

impl HousePolicy {
    /// An empty policy.
    pub fn new(name: impl Into<String>) -> HousePolicy {
        HousePolicy {
            name: name.into(),
            tuples: Vec::new(),
        }
    }

    /// Start building a policy fluently.
    pub fn builder(name: impl Into<String>) -> HousePolicyBuilder {
        HousePolicyBuilder {
            policy: HousePolicy::new(name),
        }
    }

    /// Add a policy tuple.
    pub fn add(&mut self, attribute: impl Into<String>, tuple: PrivacyTuple) {
        self.tuples.push(PolicyTuple {
            attribute: attribute.into(),
            tuple,
        });
    }

    /// All tuples.
    pub fn tuples(&self) -> &[PolicyTuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the policy is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// `HP^j`: the tuples governing one attribute (Equation 4).
    pub fn for_attribute<'a>(
        &'a self,
        attribute: &'a str,
    ) -> impl Iterator<Item = &'a PrivacyTuple> + 'a {
        self.tuples
            .iter()
            .filter(move |t| t.attribute == attribute)
            .map(|t| &t.tuple)
    }

    /// The policy tuple for an exact `(attribute, purpose)` pair, if any.
    pub fn get(&self, attribute: &str, purpose: &Purpose) -> Option<&PrivacyTuple> {
        self.tuples
            .iter()
            .find(|t| t.attribute == attribute && t.tuple.purpose == *purpose)
            .map(|t| &t.tuple)
    }

    /// Every distinct attribute mentioned, sorted.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.tuples.iter().map(|t| t.attribute.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every distinct purpose mentioned.
    pub fn purposes(&self) -> PurposeSet {
        self.tuples
            .iter()
            .map(|t| t.tuple.purpose.clone())
            .collect()
    }

    /// A copy of the policy with every tuple widened by `amount` raw steps
    /// along `dim` — the §9 "expansion of the privacy policies" operator.
    pub fn widened(&self, dim: Dim, amount: u32) -> HousePolicy {
        let mut out = self.clone();
        for t in &mut out.tuples {
            let raw = t.tuple.point.get(dim).saturating_add(amount);
            t.tuple.point = t.tuple.point.with(dim, raw);
        }
        out
    }

    /// A copy widened along **all three** ordered dimensions by `amount` —
    /// the uniform expansion used in the policy-expansion experiment.
    pub fn widened_uniform(&self, amount: u32) -> HousePolicy {
        let mut out = self.clone();
        for t in &mut out.tuples {
            for dim in Dim::ALL {
                let raw = t.tuple.point.get(dim).saturating_add(amount);
                t.tuple.point = t.tuple.point.with(dim, raw);
            }
        }
        out
    }

    /// A copy with an extra purpose granted on every attribute, at the given
    /// point — expansion along the *purpose* dimension (new uses for old
    /// data), which Definition 1's implicit-preference rule makes count as a
    /// violation for any provider who never consented to the purpose.
    pub fn with_new_purpose(
        &self,
        purpose: impl Into<Purpose>,
        point: PrivacyPoint,
    ) -> HousePolicy {
        let purpose = purpose.into();
        let mut out = self.clone();
        for attr in self.attributes() {
            out.add(attr, PrivacyTuple::from_point(purpose.clone(), point));
        }
        out
    }

    /// The policy's maximum exposure along `dim` over all tuples (a simple
    /// summary used by reports).
    pub fn max_level(&self, dim: Dim) -> u32 {
        self.tuples
            .iter()
            .map(|t| t.tuple.point.get(dim))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for HousePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy {:?} {{", self.name)?;
        for t in &self.tuples {
            writeln!(f, "  {} -> {}", t.attribute, t.tuple)?;
        }
        f.write_str("}")
    }
}

/// Fluent builder for [`HousePolicy`].
///
/// ```
/// use qpv_policy::HousePolicy;
/// use qpv_taxonomy::{GranularityLevel, PrivacyTuple, RetentionLevel, VisibilityLevel};
///
/// let policy = HousePolicy::builder("acme")
///     .tuple("weight", PrivacyTuple::new(
///         "billing",
///         VisibilityLevel::HOUSE,
///         GranularityLevel::PARTIAL,
///         RetentionLevel::days(90),
///     ))
///     .build();
/// assert_eq!(policy.len(), 1);
/// ```
#[derive(Debug)]
pub struct HousePolicyBuilder {
    policy: HousePolicy,
}

impl HousePolicyBuilder {
    /// Add a tuple for an attribute.
    pub fn tuple(mut self, attribute: impl Into<String>, tuple: PrivacyTuple) -> Self {
        self.policy.add(attribute, tuple);
        self
    }

    /// Finish building.
    pub fn build(self) -> HousePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::{GranularityLevel, RetentionLevel, VisibilityLevel};

    fn tuple(purpose: &str, v: u32, g: u32, r: u32) -> PrivacyTuple {
        PrivacyTuple::from_point(purpose, PrivacyPoint::from_raw(v, g, r))
    }

    fn sample() -> HousePolicy {
        HousePolicy::builder("acme")
            .tuple("weight", tuple("billing", 2, 3, 90))
            .tuple("weight", tuple("ads", 3, 2, 365))
            .tuple("age", tuple("billing", 2, 2, 30))
            .build()
    }

    #[test]
    fn for_attribute_projects_hp_j() {
        let hp = sample();
        assert_eq!(hp.for_attribute("weight").count(), 2);
        assert_eq!(hp.for_attribute("age").count(), 1);
        assert_eq!(hp.for_attribute("shoe_size").count(), 0);
    }

    #[test]
    fn get_by_attribute_and_purpose() {
        let hp = sample();
        let t = hp.get("weight", &Purpose::new("ads")).unwrap();
        assert_eq!(t.point.get(Dim::Retention), 365);
        assert!(hp.get("weight", &Purpose::new("research")).is_none());
        assert!(hp.get("ghost", &Purpose::new("ads")).is_none());
    }

    #[test]
    fn attributes_and_purposes_deduplicate() {
        let hp = sample();
        assert_eq!(hp.attributes(), vec!["age", "weight"]);
        let purposes = hp.purposes();
        assert_eq!(purposes.len(), 2);
        assert!(purposes.contains(&Purpose::new("billing")));
    }

    #[test]
    fn widened_shifts_one_dimension_only() {
        let hp = sample();
        let wide = hp.widened(Dim::Granularity, 2);
        let before = hp.get("weight", &Purpose::new("billing")).unwrap();
        let after = wide.get("weight", &Purpose::new("billing")).unwrap();
        assert_eq!(
            after.point.get(Dim::Granularity),
            before.point.get(Dim::Granularity) + 2
        );
        assert_eq!(
            after.point.get(Dim::Visibility),
            before.point.get(Dim::Visibility)
        );
        // Original untouched.
        assert_eq!(hp.get("weight", &Purpose::new("billing")).unwrap(), before);
    }

    #[test]
    fn widened_uniform_shifts_all_dimensions() {
        let hp = sample();
        let wide = hp.widened_uniform(1);
        let t = wide.get("age", &Purpose::new("billing")).unwrap();
        assert_eq!(t.point, PrivacyPoint::from_raw(3, 3, 31));
    }

    #[test]
    fn with_new_purpose_covers_every_attribute() {
        let hp = sample();
        let point = PrivacyPoint::new(
            VisibilityLevel::THIRD_PARTY,
            GranularityLevel::SPECIFIC,
            RetentionLevel::FOREVER,
        );
        let wide = hp.with_new_purpose("resale", point);
        assert_eq!(wide.len(), hp.len() + 2);
        assert!(wide.get("age", &Purpose::new("resale")).is_some());
        assert!(wide.get("weight", &Purpose::new("resale")).is_some());
    }

    #[test]
    fn max_level_summary() {
        let hp = sample();
        assert_eq!(hp.max_level(Dim::Retention), 365);
        assert_eq!(hp.max_level(Dim::Visibility), 3);
        assert_eq!(HousePolicy::new("empty").max_level(Dim::Retention), 0);
    }

    #[test]
    fn display_mentions_every_tuple() {
        let shown = sample().to_string();
        assert!(shown.contains("weight"), "{shown}");
        assert!(shown.contains("billing"), "{shown}");
    }

    #[test]
    fn serde_round_trip() {
        let hp = sample();
        let json = serde_json::to_string(&hp).unwrap();
        let back: HousePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hp);
    }
}
