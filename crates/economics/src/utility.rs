//! The utility model of §9 (Equations 25–31).

use serde::{Deserialize, Serialize};

/// Per-provider utility accounting for a house.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityModel {
    /// `U`: utility per provider under the current policy (revenue, cost
    /// savings, or any other consistently valued unit — §9 is explicit that
    /// the units are domain-specific).
    pub per_provider: f64,
}

impl UtilityModel {
    /// Construct with per-provider utility `U`.
    pub fn new(per_provider: f64) -> UtilityModel {
        UtilityModel { per_provider }
    }

    /// Equation 25: `Utility_current = N_current × U`.
    pub fn utility_current(&self, n_current: usize) -> f64 {
        n_current as f64 * self.per_provider
    }

    /// Equation 27: `Utility_future = N_future × (U + T)`.
    pub fn utility_future(&self, n_future: usize, extra_per_provider: f64) -> f64 {
        n_future as f64 * (self.per_provider + extra_per_provider)
    }

    /// Equation 31: the minimum extra utility per provider `T` that
    /// justifies an expansion which shrinks the population from
    /// `n_current` to `n_future`:
    /// `T > U (N_current / N_future − 1)`.
    ///
    /// Returns `f64::INFINITY` when everyone defaults (`n_future = 0`):
    /// no finite per-provider gain can compensate for an empty database.
    pub fn break_even_extra(&self, n_current: usize, n_future: usize) -> f64 {
        if n_future == 0 {
            return f64::INFINITY;
        }
        self.per_provider * (n_current as f64 / n_future as f64 - 1.0)
    }

    /// Equation 28: whether an expansion with extra utility `T` strictly
    /// beats the status quo.
    pub fn is_justified(&self, n_current: usize, n_future: usize, extra: f64) -> bool {
        self.utility_future(n_future, extra) > self.utility_current(n_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equations_25_and_27() {
        let m = UtilityModel::new(10.0);
        assert_eq!(m.utility_current(100), 1000.0);
        assert_eq!(m.utility_future(90, 2.0), 90.0 * 12.0);
    }

    #[test]
    fn equation_31_break_even() {
        let m = UtilityModel::new(10.0);
        // Losing 10% of 100 providers: T > 10 · (100/90 − 1) ≈ 1.111.
        let t_min = m.break_even_extra(100, 90);
        assert!((t_min - 10.0 * (100.0 / 90.0 - 1.0)).abs() < 1e-12);
        // Exactly T_min is NOT justified (strict inequality)…
        assert!(!m.is_justified(100, 90, t_min));
        // …anything above is.
        assert!(m.is_justified(100, 90, t_min + 1e-9));
    }

    #[test]
    fn no_defaults_means_any_positive_extra_pays() {
        let m = UtilityModel::new(10.0);
        assert_eq!(m.break_even_extra(100, 100), 0.0);
        assert!(m.is_justified(100, 100, 0.01));
        assert!(!m.is_justified(100, 100, 0.0));
    }

    #[test]
    fn total_default_is_never_justified() {
        let m = UtilityModel::new(10.0);
        assert_eq!(m.break_even_extra(100, 0), f64::INFINITY);
        assert!(!m.is_justified(100, 0, 1e12));
    }

    #[test]
    fn growing_population_has_negative_break_even() {
        // If expansion somehow *adds* providers, even a small negative T
        // (a discount) can pay; the formula covers it.
        let m = UtilityModel::new(10.0);
        assert!(m.break_even_extra(90, 100) < 0.0);
        assert!(m.is_justified(90, 100, 0.0));
    }
}
