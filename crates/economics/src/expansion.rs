//! The policy-expansion sweep (experiment E3).
//!
//! Starting from a baseline where no provider has defaulted (§9's premise),
//! widen the policy step by step and tabulate, per step: the total
//! violations, who defaults, `N_future`, the break-even extra utility
//! `T_min` (Eq. 31), and the realised utilities for a given per-step extra
//! utility. The resulting table is the quantitative form of the abstract's
//! claim: utility first rises with widening, then the accumulated
//! violations push providers out faster than the extra utility accrues, and
//! net utility falls — the house is "strictly limited in how much it can
//! expand its privacy policies and economically benefit".

use serde::{Deserialize, Serialize};

use qpv_core::{
    AuditEngine, CompiledPopulation, DeltaError, PolicyOutcome, PopulationDelta, ProviderProfile,
};
use qpv_policy::HousePolicy;

use crate::utility::UtilityModel;

/// One row of the expansion table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionRow {
    /// Widening step (0 = baseline).
    pub step: u32,
    /// Scenario label.
    pub label: String,
    /// Equation 16's `Violations`.
    pub total_violations: u128,
    /// `P(W)`.
    pub p_violation: f64,
    /// `P(Default)`.
    pub p_default: f64,
    /// Providers who default at this width.
    pub defaults: usize,
    /// `N_future`.
    pub n_future: usize,
    /// Equation 31's break-even `T` for this width.
    pub t_min: f64,
    /// The extra utility per provider actually on offer at this width.
    pub t_offered: f64,
    /// `Utility_future = N_future × (U + T_offered)` (Eq. 27).
    pub utility_future: f64,
    /// `Utility_future − Utility_current`: positive while widening pays.
    pub net_gain: f64,
    /// Whether Equation 28 holds at this width.
    pub justified: bool,
}

/// Sweep runner.
///
/// The population is compiled once into flat structure-of-arrays form at
/// construction ([`CompiledPopulation`]); every widening step after that is
/// one counts-only pass, so a K-step sweep costs one compile + K cheap
/// passes instead of K full audits.
#[derive(Debug)]
pub struct ExpansionSweep<'a> {
    engine: &'a AuditEngine,
    pop: CompiledPopulation,
    utility: UtilityModel,
    /// Extra utility per provider unlocked per widening step (linear offer
    /// curve `T(s) = t_per_step · s` — the simplest §9-consistent choice;
    /// callers can post-process rows for other curves).
    t_per_step: f64,
}

impl<'a> ExpansionSweep<'a> {
    /// Create a sweep over a population with utility parameters.
    pub fn new(
        engine: &'a AuditEngine,
        profiles: &[ProviderProfile],
        utility: UtilityModel,
        t_per_step: f64,
    ) -> ExpansionSweep<'a> {
        ExpansionSweep::from_population(
            engine,
            CompiledPopulation::from_profiles(profiles),
            utility,
            t_per_step,
        )
    }

    /// [`ExpansionSweep::new`], reusing an already-compiled population.
    pub fn from_population(
        engine: &'a AuditEngine,
        pop: CompiledPopulation,
        utility: UtilityModel,
        t_per_step: f64,
    ) -> ExpansionSweep<'a> {
        ExpansionSweep {
            engine,
            pop,
            utility,
            t_per_step,
        }
    }

    /// [`ExpansionSweep::from_population`], pricing an expansion against a
    /// base population plus a [`PopulationDelta`] (Eq. 31's marginal
    /// question under churn): clone-and-apply instead of recompiling from
    /// profiles, leaving the base untouched for other sweeps.
    pub fn with_delta(
        engine: &'a AuditEngine,
        base: &CompiledPopulation,
        delta: &PopulationDelta,
        utility: UtilityModel,
        t_per_step: f64,
    ) -> Result<ExpansionSweep<'a>, DeltaError> {
        let mut pop = base.clone();
        pop.apply_delta(delta)?;
        Ok(ExpansionSweep::from_population(
            engine, pop, utility, t_per_step,
        ))
    }

    /// Tabulate one evaluated step from its audit counts.
    fn row(&self, step: u32, label: &str, counts: &PolicyOutcome) -> ExpansionRow {
        let n_current = self.pop.len();
        let n_future = counts.remaining();
        let t_offered = self.t_per_step * step as f64;
        let utility_future = self.utility.utility_future(n_future, t_offered);
        let utility_current = self.utility.utility_current(n_current);
        ExpansionRow {
            step,
            label: label.to_string(),
            total_violations: counts.total_violations,
            p_violation: counts.p_violation(),
            p_default: counts.p_default(),
            defaults: n_current - n_future,
            n_future,
            t_min: self.utility.break_even_extra(n_current, n_future),
            t_offered,
            utility_future,
            net_gain: utility_future - utility_current,
            justified: self.utility.is_justified(n_current, n_future, t_offered),
        }
    }

    /// Evaluate one candidate policy at a given step.
    pub fn evaluate(&self, step: u32, label: &str, policy: &HousePolicy) -> ExpansionRow {
        let counts = self.engine.counts_with_policy(&self.pop, policy);
        self.row(step, label, &counts)
    }

    /// Run a uniform-widening sweep of `max_steps` steps: one batched
    /// multi-policy pass over the compiled population (Eq. 31's sweep).
    pub fn run_uniform(&self, base: &HousePolicy, max_steps: u32) -> Vec<ExpansionRow> {
        let policies: Vec<HousePolicy> = (0..=max_steps).map(|s| base.widened_uniform(s)).collect();
        self.engine
            .audit_many_policies(&self.pop, &policies)
            .iter()
            .enumerate()
            .map(|(s, counts)| self.row(s as u32, &format!("widen+{s}"), counts))
            .collect()
    }

    /// Run over an explicit labelled sweep (e.g. from
    /// `qpv_synth::workload::PolicySweep`), batched the same way.
    pub fn run_labelled(&self, steps: &[(String, HousePolicy)]) -> Vec<ExpansionRow> {
        let policies: Vec<HousePolicy> = steps.iter().map(|(_, p)| p.clone()).collect();
        self.engine
            .audit_many_policies(&self.pop, &policies)
            .iter()
            .zip(steps)
            .enumerate()
            .map(|(i, (counts, (label, _)))| self.row(i as u32, label, counts))
            .collect()
    }

    /// The widening step with the highest net gain (the house's §9 optimum).
    pub fn optimal_step(rows: &[ExpansionRow]) -> Option<&ExpansionRow> {
        rows.iter()
            .max_by(|a, b| a.net_gain.partial_cmp(&b.net_gain).expect("finite gains"))
    }
}

/// Render rows as an aligned text table (used by the experiment binaries).
pub fn render_table(rows: &[ExpansionRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>8} {:>10} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "step",
        "Violations",
        "P(W)",
        "P(Def)",
        "defaults",
        "N_fut",
        "T_min",
        "T_offer",
        "Utility_fut",
        "net_gain"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>8.3} {:>10.3} {:>8} {:>8} {:>10.2} {:>10.2} {:>12.1} {:>10.1}",
            r.step,
            r.total_violations,
            r.p_violation,
            r.p_default,
            r.defaults,
            r.n_future,
            r.t_min,
            r.t_offered,
            r.utility_future,
            r.net_gain
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_core::sensitivity::AttributeSensitivities;
    use qpv_core::DatumSensitivity;
    use qpv_policy::{ProviderId, ProviderPreferences};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    /// Staggered population: provider `i` tolerates `i` widening steps
    /// before violation, and has threshold 0 (violation ⇒ default).
    fn setup(n: u64) -> (AuditEngine, Vec<ProviderProfile>) {
        let policy = HousePolicy::builder("h")
            .tuple("x", PrivacyTuple::from_point("pr", pt(2, 2, 2)))
            .build();
        let engine = AuditEngine::new(policy, ["x"], AttributeSensitivities::new());
        let profiles = (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 0);
                let mut prefs = ProviderPreferences::new(ProviderId(i));
                prefs.add(
                    "x",
                    PrivacyTuple::from_point("pr", pt(2 + i as u32, 2 + i as u32, 2 + i as u32)),
                );
                p.preferences = prefs;
                p.sensitivities
                    .insert("x".into(), DatumSensitivity::neutral());
                p
            })
            .collect();
        (engine, profiles)
    }

    #[test]
    fn baseline_has_no_defaults() {
        let (engine, profiles) = setup(10);
        let sweep = ExpansionSweep::new(&engine, &profiles, UtilityModel::new(10.0), 3.0);
        let rows = sweep.run_uniform(&engine.policy, 0);
        assert_eq!(rows[0].defaults, 0);
        assert_eq!(rows[0].n_future, 10);
        assert_eq!(rows[0].net_gain, 0.0);
        assert!(!rows[0].justified); // strict inequality at T = 0
    }

    #[test]
    fn defaults_accumulate_with_widening() {
        let (engine, profiles) = setup(10);
        let sweep = ExpansionSweep::new(&engine, &profiles, UtilityModel::new(10.0), 3.0);
        let rows = sweep.run_uniform(&engine.policy, 9);
        // Provider i defaults once widening exceeds i: at step s providers
        // 0..s have defaulted.
        for (s, row) in rows.iter().enumerate() {
            assert_eq!(row.defaults, s, "step {s}");
            assert_eq!(row.n_future, 10 - s);
        }
        // Violations and P(Default) are monotone.
        for pair in rows.windows(2) {
            assert!(pair[1].total_violations >= pair[0].total_violations);
            assert!(pair[1].p_default >= pair[0].p_default);
        }
    }

    #[test]
    fn net_gain_rises_then_falls_the_headline_shape() {
        let (engine, profiles) = setup(10);
        // Generous extra utility per step, so early widening pays.
        let sweep = ExpansionSweep::new(&engine, &profiles, UtilityModel::new(10.0), 5.0);
        let rows = sweep.run_uniform(&engine.policy, 9);
        let gains: Vec<f64> = rows.iter().map(|r| r.net_gain).collect();
        let best = ExpansionSweep::optimal_step(&rows).unwrap();
        // The optimum is interior: better than both no-widening and maximal
        // widening — the "strictly limited" claim.
        assert!(best.step > 0, "gains: {gains:?}");
        assert!(best.step < 9, "gains: {gains:?}");
        assert!(best.net_gain > rows[0].net_gain);
        assert!(best.net_gain > rows[9].net_gain);
        // The tail is detrimental in absolute terms.
        assert!(rows[9].net_gain < 0.0, "gains: {gains:?}");
    }

    #[test]
    fn t_min_matches_equation_31_per_row() {
        let (engine, profiles) = setup(10);
        let u = UtilityModel::new(10.0);
        let sweep = ExpansionSweep::new(&engine, &profiles, u, 3.0);
        let rows = sweep.run_uniform(&engine.policy, 5);
        for row in &rows {
            let expected = u.break_even_extra(10, row.n_future);
            assert_eq!(row.t_min, expected);
            assert_eq!(
                row.justified,
                u.is_justified(10, row.n_future, row.t_offered)
            );
        }
    }

    /// Pricing an expansion on base + delta gives the same table as
    /// sweeping the mutated profiles, without touching the base.
    #[test]
    fn with_delta_matches_sweeping_mutated_profiles() {
        let (engine, mut profiles) = setup(10);
        let base = CompiledPopulation::from_profiles(&profiles);

        let mut newcomer = ProviderProfile::new(ProviderId(40), 0);
        let mut prefs = ProviderPreferences::new(ProviderId(40));
        prefs.add("x", PrivacyTuple::from_point("pr", pt(6, 6, 6)));
        newcomer.preferences = prefs;
        newcomer
            .sensitivities
            .insert("x".into(), DatumSensitivity::neutral());
        let delta = PopulationDelta::new()
            .upsert(newcomer)
            .remove(ProviderId(1))
            .set_threshold(ProviderId(8), 5);

        let u = UtilityModel::new(10.0);
        let sweep = ExpansionSweep::with_delta(&engine, &base, &delta, u, 3.0).unwrap();
        delta.apply_to_profiles(&mut profiles);
        let fresh = ExpansionSweep::new(&engine, &profiles, u, 3.0);

        let a = sweep.run_uniform(&engine.policy, 6);
        let b = fresh.run_uniform(&engine.policy, 6);
        assert_eq!(a, b);
        assert_eq!(base.len(), 10, "base must not be mutated");
    }

    #[test]
    fn labelled_runs_preserve_labels() {
        let (engine, profiles) = setup(5);
        let sweep = ExpansionSweep::new(&engine, &profiles, UtilityModel::new(1.0), 1.0);
        let steps = vec![
            ("base".to_string(), engine.policy.clone()),
            ("wide".to_string(), engine.policy.widened_uniform(3)),
        ];
        let rows = sweep.run_labelled(&steps);
        assert_eq!(rows[0].label, "base");
        assert_eq!(rows[1].label, "wide");
    }

    #[test]
    fn table_rendering_includes_key_columns() {
        let (engine, profiles) = setup(5);
        let sweep = ExpansionSweep::new(&engine, &profiles, UtilityModel::new(10.0), 3.0);
        let rows = sweep.run_uniform(&engine.policy, 3);
        let table = render_table(&rows);
        assert!(table.contains("T_min"));
        assert!(table.contains("net_gain"));
        assert_eq!(table.lines().count(), 5);
    }
}
