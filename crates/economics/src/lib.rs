//! # qpv-economics
//!
//! Section 9 of *Quantifying Privacy Violations*: the trade-off between the
//! utility a house gains by widening its privacy policy and the utility it
//! loses as data providers default.
//!
//! * [`utility`] — Equations 25–31: current and future utility, and the
//!   break-even extra utility `T > U (N_current / N_future − 1)`.
//! * [`expansion`] — the policy-expansion sweep: widen the policy step by
//!   step, audit the population, and tabulate violations, defaults,
//!   `N_future`, `T_min`, and realised utility — the machinery behind the
//!   abstract's claim that accumulated violations become *detrimental to
//!   the data collector*.
//! * [`cdf`] — §10's proposed empirical route: estimate the cumulative
//!   distribution of defaults as a function of policy width from observed
//!   (or simulated) behaviour.
//! * [`game`] — the paper's closing remark made concrete: a best-response
//!   game where the house repeatedly picks the utility-maximising widening
//!   against the remaining population until a fixed point.

pub mod cdf;
pub mod expansion;
pub mod game;
pub mod utility;

pub use cdf::EmpiricalDefaultCdf;
pub use expansion::{ExpansionRow, ExpansionSweep};
pub use game::{BestResponseGame, GameRound};
pub use utility::UtilityModel;
