//! A best-response policy game (the paper's closing §9 remark).
//!
//! "Weakening of these assumptions leads naturally to a game theoretic
//! setting where one can examine the balance between the competing
//! interests of a house and its data providers." The simplest such setting:
//!
//! 1. the house picks the uniform widening `s*` maximising its utility
//!    against the current population (providers' strategies are fixed by
//!    their thresholds — they default iff `Violation_i > v_i`);
//! 2. defaulting providers actually leave;
//! 3. the house re-optimises against the survivors; repeat.
//!
//! The process reaches a fixed point (no further widening pays, or nobody
//! else defaults) in finitely many rounds, because each round either keeps
//! the population fixed (→ stop) or strictly shrinks it.

use serde::{Deserialize, Serialize};

use qpv_core::{AuditEngine, ProviderProfile};

use crate::expansion::ExpansionSweep;
use crate::utility::UtilityModel;

/// The outcome of one best-response round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameRound {
    /// Round number (0-based).
    pub round: u32,
    /// Population entering the round.
    pub population: usize,
    /// The widening step the house chose.
    pub chosen_step: u32,
    /// The house's net gain at that step (vs. not widening this round).
    pub net_gain: f64,
    /// Providers who defaulted as a result.
    pub defaults: usize,
}

/// Runs the iterated house-vs-providers game.
#[derive(Debug)]
pub struct BestResponseGame {
    engine: AuditEngine,
    utility: UtilityModel,
    t_per_step: f64,
    max_step_per_round: u32,
}

impl BestResponseGame {
    /// Configure the game.
    pub fn new(
        engine: AuditEngine,
        utility: UtilityModel,
        t_per_step: f64,
        max_step_per_round: u32,
    ) -> BestResponseGame {
        BestResponseGame {
            engine,
            utility,
            t_per_step,
            max_step_per_round,
        }
    }

    /// Play until a fixed point (or `max_rounds`). Returns the round log and
    /// the surviving population.
    pub fn play(
        &self,
        mut profiles: Vec<ProviderProfile>,
        max_rounds: u32,
    ) -> (Vec<GameRound>, Vec<ProviderProfile>) {
        let mut rounds = Vec::new();
        let mut policy = self.engine.policy.clone();
        for round in 0..max_rounds {
            let sweep = ExpansionSweep::new(&self.engine, &profiles, self.utility, self.t_per_step);
            let rows = sweep.run_uniform(&policy, self.max_step_per_round);
            let best = match ExpansionSweep::optimal_step(&rows) {
                Some(b) if b.step > 0 && b.net_gain > 0.0 => b.clone(),
                _ => break, // widening no longer pays: fixed point
            };
            // The chosen widening is enacted; defaulting providers leave.
            let enacted = policy.widened_uniform(best.step);
            let report = self.engine.run_with_policy(&profiles, &enacted);
            let survivors: Vec<ProviderProfile> = profiles
                .iter()
                .zip(report.providers.iter())
                .filter(|(_, audit)| !audit.defaulted)
                .map(|(p, _)| p.clone())
                .collect();
            rounds.push(GameRound {
                round,
                population: profiles.len(),
                chosen_step: best.step,
                net_gain: best.net_gain,
                defaults: profiles.len() - survivors.len(),
            });
            policy = enacted;
            if survivors.len() == profiles.len() {
                profiles = survivors;
                break; // nobody left to squeeze out; next round changes nothing
            }
            profiles = survivors;
        }
        (rounds, profiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_core::sensitivity::AttributeSensitivities;
    use qpv_policy::{HousePolicy, ProviderId, ProviderPreferences};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn setup(n: u64) -> (AuditEngine, Vec<ProviderProfile>) {
        let policy = HousePolicy::builder("h")
            .tuple("x", PrivacyTuple::from_point("pr", pt(2, 2, 2)))
            .build();
        let engine = AuditEngine::new(policy, ["x"], AttributeSensitivities::new());
        let profiles = (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 0);
                let mut prefs = ProviderPreferences::new(ProviderId(i));
                prefs.add(
                    "x",
                    PrivacyTuple::from_point("pr", pt(2 + i as u32, 2 + i as u32, 2 + i as u32)),
                );
                p.preferences = prefs;
                p
            })
            .collect();
        (engine, profiles)
    }

    #[test]
    fn game_terminates_at_a_fixed_point() {
        let (engine, profiles) = setup(20);
        let game = BestResponseGame::new(engine, UtilityModel::new(10.0), 5.0, 10);
        let (rounds, survivors) = game.play(profiles, 50);
        assert!(!rounds.is_empty(), "profitable widening exists at start");
        // Population never grows, rounds have positive gains.
        let mut last_pop = 20;
        for r in &rounds {
            assert!(r.population <= last_pop);
            assert!(r.net_gain > 0.0);
            assert!(r.chosen_step > 0);
            last_pop = r.population;
        }
        assert!(survivors.len() <= 20);
    }

    #[test]
    fn unprofitable_widening_means_no_rounds() {
        let (engine, profiles) = setup(5);
        // Zero extra utility per step: widening can only lose providers.
        let game = BestResponseGame::new(engine, UtilityModel::new(10.0), 0.0, 10);
        let (rounds, survivors) = game.play(profiles, 50);
        assert!(rounds.is_empty());
        assert_eq!(survivors.len(), 5);
    }

    #[test]
    fn the_house_cannot_squeeze_forever() {
        // Abundant per-step utility: the house widens aggressively, but the
        // surviving population shrinks round over round and the game still
        // terminates with someone (or no one) left.
        let (engine, profiles) = setup(30);
        let game = BestResponseGame::new(engine, UtilityModel::new(1.0), 50.0, 5);
        let (rounds, survivors) = game.play(profiles, 100);
        assert!(rounds.len() < 100, "game failed to terminate early");
        assert!(survivors.len() < 30);
    }
}
