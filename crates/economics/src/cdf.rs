//! Empirical default CDFs (paper §10).
//!
//! The paper proposes estimating, from long-term observation or surveys,
//! "a cumulative distribution function of the number of defaults as the
//! house expands its privacy policies", to be used for projecting policy
//! changes when explicit thresholds `v_i` are unknown. This module builds
//! that function from observations — pairs of (policy width, defaulted?) or
//! directly from each provider's first defaulting width — and evaluates it.

use serde::{Deserialize, Serialize};

/// An empirical CDF of defaults versus policy-widening step.
///
/// Built from each provider's *first defaulting width* (`None` for
/// providers never observed to default within the observation horizon).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDefaultCdf {
    /// Sorted first-default widths of providers that did default.
    default_widths: Vec<u32>,
    /// Total observed population (defaulting or not).
    population: usize,
}

impl EmpiricalDefaultCdf {
    /// Build from per-provider observations: `Some(width)` = first width at
    /// which the provider defaulted, `None` = survived the whole horizon.
    pub fn from_observations(observations: &[Option<u32>]) -> EmpiricalDefaultCdf {
        let mut default_widths: Vec<u32> = observations.iter().flatten().copied().collect();
        default_widths.sort_unstable();
        EmpiricalDefaultCdf {
            default_widths,
            population: observations.len(),
        }
    }

    /// Observed population size.
    pub fn population(&self) -> usize {
        self.population
    }

    /// `F(w)`: the fraction of the population that has defaulted at width
    /// ≤ `w`.
    pub fn fraction_defaulted(&self, width: u32) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        let count = self.default_widths.partition_point(|&d| d <= width);
        count as f64 / self.population as f64
    }

    /// The projected number of remaining providers at width `w` for a
    /// population of `n` (the `N_future` input to Equation 31 when thresholds
    /// are unknown).
    pub fn projected_remaining(&self, width: u32, n: usize) -> usize {
        ((1.0 - self.fraction_defaulted(width)) * n as f64).round() as usize
    }

    /// The smallest width at which the defaulted fraction exceeds `level`
    /// (`None` if it never does within observed widths).
    pub fn width_at_level(&self, level: f64) -> Option<u32> {
        let max = *self.default_widths.last()?;
        (0..=max).find(|&w| self.fraction_defaulted(w) > level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmpiricalDefaultCdf {
        // 10 providers: defaults at widths 1,1,2,3,3,3,5; three survivors.
        EmpiricalDefaultCdf::from_observations(&[
            Some(1),
            Some(1),
            Some(2),
            Some(3),
            Some(3),
            Some(3),
            Some(5),
            None,
            None,
            None,
        ])
    }

    #[test]
    fn cdf_is_monotone_and_correct() {
        let cdf = sample();
        assert_eq!(cdf.population(), 10);
        assert_eq!(cdf.fraction_defaulted(0), 0.0);
        assert_eq!(cdf.fraction_defaulted(1), 0.2);
        assert_eq!(cdf.fraction_defaulted(2), 0.3);
        assert_eq!(cdf.fraction_defaulted(3), 0.6);
        assert_eq!(cdf.fraction_defaulted(4), 0.6);
        assert_eq!(cdf.fraction_defaulted(5), 0.7);
        assert_eq!(cdf.fraction_defaulted(100), 0.7); // survivors persist
        for w in 0..10 {
            assert!(cdf.fraction_defaulted(w + 1) >= cdf.fraction_defaulted(w));
        }
    }

    #[test]
    fn projection_scales_to_other_population_sizes() {
        let cdf = sample();
        assert_eq!(cdf.projected_remaining(3, 1000), 400);
        assert_eq!(cdf.projected_remaining(0, 1000), 1000);
    }

    #[test]
    fn width_at_level() {
        let cdf = sample();
        assert_eq!(cdf.width_at_level(0.5), Some(3));
        assert_eq!(cdf.width_at_level(0.25), Some(2));
        assert_eq!(cdf.width_at_level(0.9), None); // never reaches 90%
    }

    #[test]
    fn empty_observations() {
        let cdf = EmpiricalDefaultCdf::from_observations(&[]);
        assert_eq!(cdf.fraction_defaulted(5), 0.0);
        assert_eq!(cdf.projected_remaining(5, 100), 100);
        assert_eq!(cdf.width_at_level(0.1), None);
    }
}
