//! # qpv-synth
//!
//! Synthetic provider populations and experiment workloads.
//!
//! The paper evaluates its model on a three-person toy example and points to
//! Westin's surveys (via Kumaraguru & Cranor's compilation, the paper's
//! ref \[11\]) as the empirical grounding for *heterogeneous* privacy
//! postures. This crate encodes exactly that structure so the model can be
//! exercised at population scale:
//!
//! * [`segments`] — the Westin segmentation (fundamentalists, pragmatists,
//!   unconcerned) as parameterised distributions over preference headroom,
//!   sensitivities, and default thresholds;
//! * [`population`] — seeded, reproducible generation of
//!   [`qpv_core::ProviderProfile`]s and matching data rows;
//! * [`scenario`] — fully assembled experiment scenarios (the paper's
//!   worked example, a healthcare registry, a social network);
//! * [`workload`] — policy sweeps, sizing grids, and seeded churn streams
//!   ([`workload::churn`]) for the delta-audit benchmarks.

pub mod population;
pub mod scenario;
pub mod segments;
pub mod workload;

pub use population::{
    generate, generate_stable, par_generate, stream_clustered, stream_stable, Population,
    PopulationSpec,
};
pub use scenario::Scenario;
pub use segments::{Segment, SegmentMix, SegmentParams};
pub use workload::{churn, churn_batches};
