//! Seeded population generation.
//!
//! A [`PopulationSpec`] describes the data table (attributes with social
//! weights and baseline policy exposure) and the segment mix; `generate`
//! produces a reproducible [`Population`]: provider profiles for the model,
//! matching data rows for the PPDB, and the segment assignment for
//! stratified analysis.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qpv_core::sensitivity::AttributeSensitivities;
use qpv_core::{DatumSensitivity, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::row::Row;
use qpv_reldb::value::Value;
use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};

use crate::segments::{Segment, SegmentMix};

/// One attribute of the synthetic data table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Column name.
    pub name: String,
    /// Social sensitivity weight `Σ^a`.
    pub weight: u32,
    /// The house's baseline exposure point for this attribute — providers'
    /// preferences are sampled as headroom offsets from here.
    pub baseline: PrivacyPoint,
    /// Range of the synthetic integer data values stored in the column.
    pub value_range: (i64, i64),
}

impl AttributeSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        weight: u32,
        baseline: PrivacyPoint,
        value_range: (i64, i64),
    ) -> AttributeSpec {
        AttributeSpec {
            name: name.into(),
            weight,
            baseline,
            value_range,
        }
    }
}

/// Everything needed to generate a population.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// The data attributes.
    pub attributes: Vec<AttributeSpec>,
    /// The purposes the house collects data for.
    pub purposes: Vec<String>,
    /// The segment mix.
    pub mix: SegmentMix,
}

impl PopulationSpec {
    /// The baseline house policy implied by the spec: one tuple per
    /// `(attribute, purpose)` at the attribute's baseline point.
    pub fn baseline_policy(&self, name: impl Into<String>) -> HousePolicy {
        let mut hp = HousePolicy::new(name);
        for attr in &self.attributes {
            for purpose in &self.purposes {
                hp.add(
                    &attr.name,
                    PrivacyTuple::from_point(purpose.as_str(), attr.baseline),
                );
            }
        }
        hp
    }

    /// The attribute weights `Σ` implied by the spec.
    pub fn attribute_weights(&self) -> AttributeSensitivities {
        let mut w = AttributeSensitivities::new();
        for attr in &self.attributes {
            w.set(&attr.name, attr.weight);
        }
        w
    }

    /// Attribute names, in declaration order.
    pub fn attribute_names(&self) -> Vec<String> {
        self.attributes.iter().map(|a| a.name.clone()).collect()
    }
}

/// A generated population.
#[derive(Debug, Clone)]
pub struct Population {
    /// Model profiles, indexed by provider.
    pub profiles: Vec<ProviderProfile>,
    /// Matching data rows: `provider_id` first, then one INT per attribute
    /// in spec order.
    pub data_rows: Vec<Row>,
    /// Segment assignment per provider.
    pub segments: Vec<Segment>,
}

impl Population {
    /// Population size.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Indexes of providers in a given segment.
    pub fn segment_members(&self, segment: Segment) -> Vec<usize> {
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == segment)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Generate provider `i` from the given RNG: profile, data row, segment.
/// All randomness for one provider comes from `rng`, in a fixed draw
/// order — the invariant both generation paths share (and that the churn
/// generator in [`crate::workload`] reuses to mint replacement profiles).
pub(crate) fn generate_provider(
    spec: &PopulationSpec,
    i: usize,
    rng: &mut SmallRng,
) -> (ProviderProfile, Row, Segment) {
    let segment = spec.mix.sample(rng);
    let params = segment.default_params();
    let id = ProviderId(i as u64);
    let mut profile = ProviderProfile::new(id, params.sample_threshold(rng));
    let mut row = vec![Value::Int(i as i64)];
    for attr in &spec.attributes {
        // Data value.
        row.push(Value::Int(
            rng.gen_range(attr.value_range.0..=attr.value_range.1),
        ));
        // Stated preferences: one tuple per purpose the provider chose
        // to state; unstated purposes fall to the implicit deny-all.
        for purpose in &spec.purposes {
            if !params.sample_states_purpose(rng) {
                continue;
            }
            let mut point = attr.baseline;
            for dim in Dim::ALL {
                let offset = params.sample_headroom(rng);
                let level = (attr.baseline.get(dim) as i64 + offset as i64).max(0) as u32;
                point = point.with(dim, level);
            }
            profile.preferences.add(
                &attr.name,
                PrivacyTuple::from_point(purpose.as_str(), point),
            );
        }
        // Sensitivities.
        profile.sensitivities.insert(
            attr.name.clone(),
            DatumSensitivity::new(
                params.sample_value_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
            ),
        );
    }
    (profile, Row::new(row), segment)
}

/// Generate a population of `n` providers. Deterministic per `seed`.
///
/// One RNG stream feeds the whole population, so provider `i`'s draws
/// depend on providers `0..i` — fine sequentially, but not shardable.
/// Use [`generate_stable`] / [`par_generate`] when the population must be
/// reproducible independent of how generation is split across workers.
pub fn generate(spec: &PopulationSpec, n: usize, seed: u64) -> Population {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pop = Population {
        profiles: Vec::with_capacity(n),
        data_rows: Vec::with_capacity(n),
        segments: Vec::with_capacity(n),
    };
    for i in 0..n {
        let (profile, row, segment) = generate_provider(spec, i, &mut rng);
        pop.profiles.push(profile);
        pop.data_rows.push(row);
        pop.segments.push(segment);
    }
    pop
}

/// Derive provider `index`'s private RNG seed from the population seed
/// (SplitMix64 finalizer — decorrelates consecutive indexes).
pub(crate) fn provider_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard-stable generation: provider `i` draws from an RNG keyed on
/// `(seed, i)` alone, so the output does not depend on how the index
/// range is split across workers. [`par_generate`] produces exactly this
/// population for every thread count.
pub fn generate_stable(spec: &PopulationSpec, n: usize, seed: u64) -> Population {
    let mut pop = Population {
        profiles: Vec::with_capacity(n),
        data_rows: Vec::with_capacity(n),
        segments: Vec::with_capacity(n),
    };
    for i in 0..n {
        let mut rng = SmallRng::seed_from_u64(provider_seed(seed, i as u64));
        let (profile, row, segment) = generate_provider(spec, i, &mut rng);
        pop.profiles.push(profile);
        pop.data_rows.push(row);
        pop.segments.push(segment);
    }
    pop
}

/// [`generate_stable`]'s providers compiled straight into flat
/// structure-of-arrays form ([`qpv_core::CompiledPopulation`]), one
/// provider at a time — the full `Vec<ProviderProfile>` is never held.
/// Produces exactly `CompiledPopulation::from_profiles` over
/// [`generate_stable`]'s profiles (each provider is fed through the same
/// per-profile interning), so audits over either are identical.
pub fn generate_compiled(
    spec: &PopulationSpec,
    n: usize,
    seed: u64,
) -> qpv_core::CompiledPopulation {
    let mut builder = qpv_core::PopulationBuilder::new();
    for i in 0..n {
        let mut rng = SmallRng::seed_from_u64(provider_seed(seed, i as u64));
        let (profile, _, _) = generate_provider(spec, i, &mut rng);
        builder.push_profile(&profile);
    }
    builder.finish()
}

/// [`generate_stable`] across `threads` worker threads, scheduled with
/// the work-stealing chunk scheduler (`qpv_core::par_map_chunks`).
///
/// Identical to [`generate_stable`]'s output for any thread count: each
/// provider's randomness is keyed on `(seed, index)` alone, and chunks
/// are stitched back in index order — which worker generated which chunk
/// is invisible in the output.
pub fn par_generate(
    spec: &PopulationSpec,
    n: usize,
    seed: u64,
    threads: std::num::NonZeroUsize,
) -> Population {
    if threads.get() == 1 || n < qpv_core::PAR_THRESHOLD {
        return generate_stable(spec, n, seed);
    }
    let chunk = qpv_core::chunk_size(n, threads.get());
    let chunks = qpv_core::par_map_chunks(n, threads.get(), chunk, |start, end| {
        let mut pop = Population {
            profiles: Vec::with_capacity(end - start),
            data_rows: Vec::with_capacity(end - start),
            segments: Vec::with_capacity(end - start),
        };
        for i in start..end {
            let mut rng = SmallRng::seed_from_u64(provider_seed(seed, i as u64));
            let (profile, row, segment) = generate_provider(spec, i, &mut rng);
            pop.profiles.push(profile);
            pop.data_rows.push(row);
            pop.segments.push(segment);
        }
        pop
    })
    .expect("seeded generation closures are panic-free");
    let mut pop = Population {
        profiles: Vec::with_capacity(n),
        data_rows: Vec::with_capacity(n),
        segments: Vec::with_capacity(n),
    };
    for part in chunks {
        pop.profiles.extend(part.profiles);
        pop.data_rows.extend(part.data_rows);
        pop.segments.extend(part.segments);
    }
    pop
}

/// Stream [`generate_stable`]'s provider profiles one at a time, without
/// materializing the population `Vec` — the millions-scale feed for
/// `qpv_core::PopulationBuilder` (which retains three machine words per
/// provider, so `n` is bounded by the compiled layout, not by profile
/// structs). Yields exactly `generate_stable(spec, n, seed).profiles`,
/// in order.
pub fn stream_stable(
    spec: &PopulationSpec,
    n: usize,
    seed: u64,
) -> impl Iterator<Item = ProviderProfile> + '_ {
    (0..n).map(move |i| {
        let mut rng = SmallRng::seed_from_u64(provider_seed(seed, i as u64));
        generate_provider(spec, i, &mut rng).0
    })
}

/// Generate one quantized preference/sensitivity template for
/// `(segment, template index)` — the same draw shapes as
/// [`generate_provider`], but from a template-keyed RNG and with no id,
/// threshold, or data row. Template profiles carry `ProviderId(0)`;
/// [`stream_clustered`] stamps real ids and individual thresholds on.
fn segment_template(
    spec: &PopulationSpec,
    segment: Segment,
    rng: &mut SmallRng,
) -> ProviderProfile {
    let params = segment.default_params();
    let mut profile = ProviderProfile::new(ProviderId(0), 0);
    for attr in &spec.attributes {
        for purpose in &spec.purposes {
            if !params.sample_states_purpose(rng) {
                continue;
            }
            let mut point = attr.baseline;
            for dim in Dim::ALL {
                let offset = params.sample_headroom(rng);
                let level = (attr.baseline.get(dim) as i64 + offset as i64).max(0) as u32;
                point = point.with(dim, level);
            }
            profile.preferences.add(
                &attr.name,
                PrivacyTuple::from_point(purpose.as_str(), point),
            );
        }
        profile.sensitivities.insert(
            attr.name.clone(),
            DatumSensitivity::new(
                params.sample_value_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
                params.sample_dim_sensitivity(rng),
            ),
        );
    }
    profile
}

/// Stream a segment-*clustered* population: preference/sensitivity
/// content is drawn from a fixed pool of `templates_per_segment`
/// quantized templates per Westin segment (thresholds stay individual),
/// modeling real populations where stated postures cluster into a
/// handful of shapes. The unique-row dedup in
/// `qpv_core::CompiledPopulation` collapses such a population to at most
/// `3 × templates_per_segment` rows regardless of `n` — the layout the
/// packed 10M bench exercises.
///
/// Deterministic per `(spec, seed, templates_per_segment)`; provider `i`
/// depends only on its own index (shard-stable). No full `Vec` is ever
/// held.
pub fn stream_clustered(
    spec: &PopulationSpec,
    n: usize,
    seed: u64,
    templates_per_segment: usize,
) -> impl Iterator<Item = ProviderProfile> + '_ {
    let k = templates_per_segment.max(1);
    // Template pool: small (3·k profiles), built eagerly up front.
    let pool: Vec<Vec<ProviderProfile>> = Segment::ALL
        .iter()
        .enumerate()
        .map(|(s, &segment)| {
            (0..k)
                .map(|t| {
                    let mut rng = SmallRng::seed_from_u64(provider_seed(
                        seed ^ 0xC1A5_7E2D_0000_0000,
                        (s * k + t) as u64,
                    ));
                    segment_template(spec, segment, &mut rng)
                })
                .collect()
        })
        .collect();
    (0..n).map(move |i| {
        let mut rng = SmallRng::seed_from_u64(provider_seed(seed, i as u64));
        let segment = spec.mix.sample(&mut rng);
        let params = segment.default_params();
        let s = Segment::ALL
            .iter()
            .position(|&x| x == segment)
            .expect("segment in ALL");
        let t = rng.gen_range(0..k);
        let mut profile = pool[s][t].clone();
        profile.preferences.provider = ProviderId(i as u64);
        profile.threshold = params.sample_threshold(&mut rng);
        profile
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PopulationSpec {
        PopulationSpec {
            attributes: vec![
                AttributeSpec::new("weight", 4, PrivacyPoint::from_raw(2, 2, 90), (40, 180)),
                AttributeSpec::new("age", 2, PrivacyPoint::from_raw(2, 3, 365), (18, 95)),
            ],
            purposes: vec!["service".into(), "research".into()],
            mix: SegmentMix::WESTIN_2001,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&spec(), 100, 7);
        let b = generate(&spec(), 100, 7);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.data_rows, b.data_rows);
        assert_eq!(a.segments, b.segments);
        let c = generate(&spec(), 100, 8);
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn stable_generation_is_deterministic_and_shard_stable() {
        let n = 600; // above PAR_THRESHOLD so par_generate actually shards
        let a = generate_stable(&spec(), n, 7);
        let b = generate_stable(&spec(), n, 7);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.data_rows, b.data_rows);
        assert_eq!(a.segments, b.segments);
        for threads in [1usize, 2, 3, 4, 8] {
            let p = par_generate(&spec(), n, 7, std::num::NonZeroUsize::new(threads).unwrap());
            assert_eq!(p.profiles, a.profiles, "{threads} threads");
            assert_eq!(p.data_rows, a.data_rows, "{threads} threads");
            assert_eq!(p.segments, a.segments, "{threads} threads");
        }
        let c = generate_stable(&spec(), n, 8);
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn stable_generation_is_prefix_stable() {
        // Growing the population never rewrites existing providers — a
        // consequence of per-index seeding that plain `generate` lacks.
        let small = generate_stable(&spec(), 50, 7);
        let large = generate_stable(&spec(), 80, 7);
        assert_eq!(small.profiles[..], large.profiles[..50]);
        assert_eq!(small.data_rows[..], large.data_rows[..50]);
    }

    /// SoA-direct generation must be indistinguishable from generating
    /// profiles and compiling them afterwards.
    #[test]
    fn compiled_generation_matches_the_profile_path() {
        use qpv_core::{AuditEngine, CompiledPopulation};
        let s = spec();
        let engine = AuditEngine::new(
            s.baseline_policy("base"),
            s.attribute_names(),
            s.attribute_weights(),
        );
        let stable = generate_stable(&s, 120, 7);
        let direct = generate_compiled(&s, 120, 7);
        let via_profiles = CompiledPopulation::from_profiles(&stable.profiles);
        assert_eq!(direct.len(), via_profiles.len());
        assert_eq!(direct.pref_row_count(), via_profiles.pref_row_count());
        assert_eq!(direct.symbol_counts(), via_profiles.symbol_counts());
        assert_eq!(
            engine.audit_compiled(&direct),
            engine.audit_compiled(&via_profiles)
        );
        assert_eq!(engine.audit_compiled(&direct), engine.run(&stable.profiles));
    }

    #[test]
    fn rows_match_schema_shape() {
        let pop = generate(&spec(), 50, 1);
        assert_eq!(pop.len(), 50);
        for (i, row) in pop.data_rows.iter().enumerate() {
            assert_eq!(row.arity(), 3); // provider_id + 2 attributes
            assert_eq!(row.values[0], Value::Int(i as i64));
            let w = row.values[1].as_int().unwrap();
            assert!((40..=180).contains(&w));
        }
    }

    #[test]
    fn profiles_have_sensitivities_for_every_attribute() {
        let pop = generate(&spec(), 30, 2);
        for p in &pop.profiles {
            assert!(p.sensitivities.contains_key("weight"));
            assert!(p.sensitivities.contains_key("age"));
        }
    }

    #[test]
    fn preference_points_never_underflow() {
        // Fundamentalists can sample negative headroom below zero levels.
        let mut tight = spec();
        tight.mix = SegmentMix::pure(Segment::Fundamentalist);
        tight.attributes[0].baseline = PrivacyPoint::from_raw(0, 0, 1);
        let pop = generate(&tight, 200, 3);
        for p in &pop.profiles {
            for t in p.preferences.tuples() {
                // Levels are u32 by construction; this asserts the clamp
                // logic kept offsets sane (no wrap to huge values).
                assert!(t.tuple.point.get(Dim::Visibility) < 1000);
            }
        }
    }

    #[test]
    fn baseline_policy_covers_every_attribute_purpose_pair() {
        let s = spec();
        let hp = s.baseline_policy("base");
        assert_eq!(hp.len(), 4);
        assert_eq!(s.attribute_weights().get("weight"), 4);
        assert_eq!(s.attribute_names(), vec!["weight", "age"]);
    }

    #[test]
    fn segment_members_partition_the_population() {
        let pop = generate(&spec(), 300, 11);
        let total: usize = Segment::ALL
            .iter()
            .map(|s| pop.segment_members(*s).len())
            .sum();
        assert_eq!(total, 300);
        // With the Westin mix all three segments appear at n=300.
        for s in Segment::ALL {
            assert!(!pop.segment_members(s).is_empty(), "{s:?} empty");
        }
    }

    #[test]
    fn fundamentalists_are_violated_more_often_than_unconcerned() {
        use qpv_core::AuditEngine;
        let s = spec();
        let hp = s.baseline_policy("base");
        let engine = AuditEngine::new(hp, s.attribute_names(), s.attribute_weights());

        let mut fundamentalist = s.clone();
        fundamentalist.mix = SegmentMix::pure(Segment::Fundamentalist);
        let mut unconcerned = s.clone();
        unconcerned.mix = SegmentMix::pure(Segment::Unconcerned);

        let pf = generate(&fundamentalist, 300, 5);
        let pu = generate(&unconcerned, 300, 5);
        let rf = engine.run(&pf.profiles);
        let ru = engine.run(&pu.profiles);
        assert!(
            rf.p_violation() > ru.p_violation(),
            "fundamentalists {} vs unconcerned {}",
            rf.p_violation(),
            ru.p_violation()
        );
    }

    #[test]
    fn stream_stable_yields_generate_stable_profiles() {
        let s = spec();
        let eager = generate_stable(&s, 150, 9);
        let streamed: Vec<ProviderProfile> = stream_stable(&s, 150, 9).collect();
        assert_eq!(streamed, eager.profiles);
    }

    #[test]
    fn stream_clustered_is_deterministic_and_actually_clusters() {
        let s = spec();
        let a: Vec<ProviderProfile> = stream_clustered(&s, 400, 13, 4).collect();
        let b: Vec<ProviderProfile> = stream_clustered(&s, 400, 13, 4).collect();
        assert_eq!(a, b, "deterministic per (spec, seed, k)");
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.id(), ProviderId(i as u64), "ids are the stream index");
        }
        // Content clusters into ≤ 3 segments × 4 templates unique rows,
        // while thresholds stay individual.
        let pop = qpv_core::CompiledPopulation::from_profiles(&a);
        assert!(
            pop.unique_row_count() <= 12,
            "{} unique rows from 12 templates",
            pop.unique_row_count()
        );
        assert!(pop.dedup_ratio() > 10.0, "dedup {}", pop.dedup_ratio());
        let distinct_thresholds: std::collections::HashSet<u64> =
            a.iter().map(|p| p.threshold).collect();
        assert!(distinct_thresholds.len() > 12, "thresholds are individual");
    }
}
