//! Westin privacy segments as generative parameters.
//!
//! Kumaraguru & Cranor's compilation of Westin's surveys (the paper's
//! ref \[11\]) splits populations into three stable segments; the 2001 survey
//! proportions — roughly 25% fundamentalists, 63% pragmatists, 12%
//! unconcerned — are this module's default [`SegmentMix`].
//!
//! Each segment maps to distributions over the three per-provider knobs of
//! the violation model:
//!
//! * **headroom** — how far above (or below) the house's baseline exposure
//!   the provider's stated preferences sit. Fundamentalists often sit
//!   *below* the baseline (they are violated by the status quo);
//!   unconcerned providers leave generous room.
//! * **sensitivity** — the `σ_i` weights of Equation 11.
//! * **threshold** — the default tolerance `v_i` of Definition 4.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three Westin segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Highly protective: tight preferences, high sensitivities, low
    /// default thresholds.
    Fundamentalist,
    /// The broad middle: moderate on every axis.
    Pragmatist,
    /// Permissive: loose preferences, low sensitivities, high thresholds.
    Unconcerned,
}

impl Segment {
    /// All segments.
    pub const ALL: [Segment; 3] = [
        Segment::Fundamentalist,
        Segment::Pragmatist,
        Segment::Unconcerned,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Segment::Fundamentalist => "fundamentalist",
            Segment::Pragmatist => "pragmatist",
            Segment::Unconcerned => "unconcerned",
        }
    }

    /// The default generative parameters for this segment.
    pub fn default_params(self) -> SegmentParams {
        match self {
            // Calibrated to the ordinal level scale the scenarios use
            // (retention in coarse buckets, not raw days), so that a
            // baseline policy violates mostly fundamentalists mildly and
            // widening drives pragmatists over their thresholds step by
            // step — the §9 dynamics.
            Segment::Fundamentalist => SegmentParams {
                headroom: (-1, 2),
                stated_purpose_fraction: 0.9,
                value_sensitivity: (2, 5),
                dim_sensitivity: (2, 5),
                threshold: (100, 400),
            },
            Segment::Pragmatist => SegmentParams {
                headroom: (0, 4),
                stated_purpose_fraction: 1.0,
                value_sensitivity: (1, 3),
                dim_sensitivity: (1, 3),
                threshold: (100, 800),
            },
            Segment::Unconcerned => SegmentParams {
                headroom: (3, 8),
                stated_purpose_fraction: 1.0,
                value_sensitivity: (1, 1),
                dim_sensitivity: (1, 2),
                threshold: (800, 3000),
            },
        }
    }
}

/// Generative ranges for one segment. All ranges are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentParams {
    /// Preference headroom relative to the scenario's baseline exposure,
    /// per ordered dimension (may be negative).
    pub headroom: (i32, i32),
    /// Probability that the provider states a preference for any given
    /// purpose at all (unstated ⇒ implicit deny-all under Definition 1).
    pub stated_purpose_fraction: f64,
    /// Range of the datum value sensitivity `s^a_i`.
    pub value_sensitivity: (u32, u32),
    /// Range of each per-dimension sensitivity `s^a_i[dim]`.
    pub dim_sensitivity: (u32, u32),
    /// Range of the default threshold `v_i`.
    pub threshold: (u64, u64),
}

impl SegmentParams {
    /// Sample a headroom offset.
    pub fn sample_headroom(&self, rng: &mut impl Rng) -> i32 {
        rng.gen_range(self.headroom.0..=self.headroom.1)
    }

    /// Sample a value sensitivity.
    pub fn sample_value_sensitivity(&self, rng: &mut impl Rng) -> u32 {
        rng.gen_range(self.value_sensitivity.0..=self.value_sensitivity.1)
    }

    /// Sample a per-dimension sensitivity.
    pub fn sample_dim_sensitivity(&self, rng: &mut impl Rng) -> u32 {
        rng.gen_range(self.dim_sensitivity.0..=self.dim_sensitivity.1)
    }

    /// Sample a default threshold.
    pub fn sample_threshold(&self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(self.threshold.0..=self.threshold.1)
    }

    /// Whether the provider states a preference for some purpose.
    pub fn sample_states_purpose(&self, rng: &mut impl Rng) -> bool {
        rng.gen_bool(self.stated_purpose_fraction.clamp(0.0, 1.0))
    }
}

/// A population mix over the segments (weights need not sum to 1; they are
/// normalised).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentMix {
    /// Weight of fundamentalists.
    pub fundamentalist: f64,
    /// Weight of pragmatists.
    pub pragmatist: f64,
    /// Weight of unconcerned.
    pub unconcerned: f64,
}

impl SegmentMix {
    /// The Westin 2001 proportions: 25 / 63 / 12.
    pub const WESTIN_2001: SegmentMix = SegmentMix {
        fundamentalist: 0.25,
        pragmatist: 0.63,
        unconcerned: 0.12,
    };

    /// A uniform mix.
    pub const UNIFORM: SegmentMix = SegmentMix {
        fundamentalist: 1.0,
        pragmatist: 1.0,
        unconcerned: 1.0,
    };

    /// Everyone in one segment.
    pub fn pure(segment: Segment) -> SegmentMix {
        let mut mix = SegmentMix {
            fundamentalist: 0.0,
            pragmatist: 0.0,
            unconcerned: 0.0,
        };
        match segment {
            Segment::Fundamentalist => mix.fundamentalist = 1.0,
            Segment::Pragmatist => mix.pragmatist = 1.0,
            Segment::Unconcerned => mix.unconcerned = 1.0,
        }
        mix
    }

    /// Sample a segment according to the mix.
    pub fn sample(&self, rng: &mut impl Rng) -> Segment {
        let total = self.fundamentalist + self.pragmatist + self.unconcerned;
        assert!(total > 0.0, "segment mix must have positive total weight");
        let x = rng.gen_range(0.0..total);
        if x < self.fundamentalist {
            Segment::Fundamentalist
        } else if x < self.fundamentalist + self.pragmatist {
            Segment::Pragmatist
        } else {
            Segment::Unconcerned
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn segment_names() {
        assert_eq!(Segment::Fundamentalist.name(), "fundamentalist");
        assert_eq!(Segment::ALL.len(), 3);
    }

    #[test]
    fn default_params_are_ordered_by_protectiveness() {
        let f = Segment::Fundamentalist.default_params();
        let p = Segment::Pragmatist.default_params();
        let u = Segment::Unconcerned.default_params();
        // Headroom loosens.
        assert!(f.headroom.1 <= p.headroom.1 && p.headroom.1 <= u.headroom.1);
        // Thresholds rise.
        assert!(f.threshold.1 <= p.threshold.1 && p.threshold.1 <= u.threshold.1);
        // Sensitivities fall.
        assert!(f.value_sensitivity.1 >= p.value_sensitivity.1);
        assert!(p.value_sensitivity.1 >= u.value_sensitivity.1);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let params = Segment::Pragmatist.default_params();
        for _ in 0..200 {
            let h = params.sample_headroom(&mut rng);
            assert!(h >= params.headroom.0 && h <= params.headroom.1);
            let t = params.sample_threshold(&mut rng);
            assert!(t >= params.threshold.0 && t <= params.threshold.1);
            let v = params.sample_value_sensitivity(&mut rng);
            assert!(v >= 1);
        }
    }

    #[test]
    fn mix_sampling_tracks_weights() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mix = SegmentMix::WESTIN_2001;
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                Segment::Fundamentalist => counts[0] += 1,
                Segment::Pragmatist => counts[1] += 1,
                Segment::Unconcerned => counts[2] += 1,
            }
        }
        let f = counts[0] as f64 / n as f64;
        let p = counts[1] as f64 / n as f64;
        let u = counts[2] as f64 / n as f64;
        assert!((f - 0.25).abs() < 0.02, "fundamentalist {f}");
        assert!((p - 0.63).abs() < 0.02, "pragmatist {p}");
        assert!((u - 0.12).abs() < 0.02, "unconcerned {u}");
    }

    #[test]
    fn pure_mix_always_samples_that_segment() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mix = SegmentMix::pure(Segment::Unconcerned);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), Segment::Unconcerned);
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_panics() {
        let mix = SegmentMix {
            fundamentalist: 0.0,
            pragmatist: 0.0,
            unconcerned: 0.0,
        };
        mix.sample(&mut SmallRng::seed_from_u64(0));
    }
}
