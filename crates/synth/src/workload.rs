//! Experiment workloads: policy sweeps and sizing grids.

use qpv_policy::HousePolicy;
use qpv_taxonomy::{Dim, PrivacyPoint};

/// A labelled sequence of increasingly wide policies derived from a base —
/// the driver for the §9 expansion experiment and the α-PPDB frontier.
#[derive(Debug, Clone)]
pub struct PolicySweep {
    /// `(label, policy)` pairs in sweep order.
    pub steps: Vec<(String, HousePolicy)>,
}

impl PolicySweep {
    /// Uniform widening of every tuple along every ordered dimension:
    /// step `s` is `base.widened_uniform(s)` for `s ∈ 0..=max_steps`.
    pub fn uniform(base: &HousePolicy, max_steps: u32) -> PolicySweep {
        PolicySweep {
            steps: (0..=max_steps)
                .map(|s| (format!("widen+{s}"), base.widened_uniform(s)))
                .collect(),
        }
    }

    /// Widening along a single dimension only (for per-dimension ablations).
    pub fn along(base: &HousePolicy, dim: Dim, max_steps: u32) -> PolicySweep {
        PolicySweep {
            steps: (0..=max_steps)
                .map(|s| (format!("{}+{s}", dim.short_name()), base.widened(dim, s)))
                .collect(),
        }
    }

    /// Progressive purpose creep: step `s` adds `s` new unconsented
    /// purposes (named `extra0`, `extra1`, …) at the given exposure point.
    pub fn purpose_creep(base: &HousePolicy, point: PrivacyPoint, max_new: u32) -> PolicySweep {
        let mut steps = Vec::with_capacity(max_new as usize + 1);
        let mut current = base.clone();
        steps.push(("purposes+0".to_string(), current.clone()));
        for s in 0..max_new {
            current = current.with_new_purpose(format!("extra{s}").as_str(), point);
            steps.push((format!("purposes+{}", s + 1), current.clone()));
        }
        PolicySweep { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Standard population sizes for scaling benchmarks.
pub const SCALING_SIZES: [usize; 4] = [100, 1_000, 5_000, 20_000];

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::PrivacyTuple;

    fn base() -> HousePolicy {
        HousePolicy::builder("h")
            .tuple(
                "a",
                PrivacyTuple::from_point("pr", PrivacyPoint::from_raw(1, 1, 1)),
            )
            .build()
    }

    #[test]
    fn uniform_sweep_widens_monotonically() {
        let sweep = PolicySweep::uniform(&base(), 5);
        assert_eq!(sweep.len(), 6);
        for (i, (label, hp)) in sweep.steps.iter().enumerate() {
            assert_eq!(label, &format!("widen+{i}"));
            assert_eq!(hp.max_level(Dim::Visibility), 1 + i as u32);
        }
    }

    #[test]
    fn single_dimension_sweep_leaves_others_fixed() {
        let sweep = PolicySweep::along(&base(), Dim::Retention, 3);
        let last = &sweep.steps[3].1;
        assert_eq!(last.max_level(Dim::Retention), 4);
        assert_eq!(last.max_level(Dim::Visibility), 1);
    }

    #[test]
    fn purpose_creep_accumulates_purposes() {
        let sweep = PolicySweep::purpose_creep(&base(), PrivacyPoint::from_raw(2, 2, 2), 3);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.steps[0].1.purposes().len(), 1);
        assert_eq!(sweep.steps[3].1.purposes().len(), 4);
        // Earlier steps are unchanged by later ones.
        assert_eq!(sweep.steps[1].1.purposes().len(), 2);
        assert!(!sweep.is_empty());
    }
}
