//! Experiment workloads: policy sweeps, sizing grids, and churn streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qpv_core::{DatumSensitivity, DeltaOp, PopulationDelta};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::{Dim, PrivacyPoint};

use crate::population::{generate_provider, provider_seed, PopulationSpec};

/// A labelled sequence of increasingly wide policies derived from a base —
/// the driver for the §9 expansion experiment and the α-PPDB frontier.
#[derive(Debug, Clone)]
pub struct PolicySweep {
    /// `(label, policy)` pairs in sweep order.
    pub steps: Vec<(String, HousePolicy)>,
}

impl PolicySweep {
    /// Uniform widening of every tuple along every ordered dimension:
    /// step `s` is `base.widened_uniform(s)` for `s ∈ 0..=max_steps`.
    pub fn uniform(base: &HousePolicy, max_steps: u32) -> PolicySweep {
        PolicySweep {
            steps: (0..=max_steps)
                .map(|s| (format!("widen+{s}"), base.widened_uniform(s)))
                .collect(),
        }
    }

    /// Widening along a single dimension only (for per-dimension ablations).
    pub fn along(base: &HousePolicy, dim: Dim, max_steps: u32) -> PolicySweep {
        PolicySweep {
            steps: (0..=max_steps)
                .map(|s| (format!("{}+{s}", dim.short_name()), base.widened(dim, s)))
                .collect(),
        }
    }

    /// Progressive purpose creep: step `s` adds `s` new unconsented
    /// purposes (named `extra0`, `extra1`, …) at the given exposure point.
    pub fn purpose_creep(base: &HousePolicy, point: PrivacyPoint, max_new: u32) -> PolicySweep {
        let mut steps = Vec::with_capacity(max_new as usize + 1);
        let mut current = base.clone();
        steps.push(("purposes+0".to_string(), current.clone()));
        for s in 0..max_new {
            current = current.with_new_purpose(format!("extra{s}").as_str(), point);
            steps.push((format!("purposes+{}", s + 1), current.clone()));
        }
        PolicySweep { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Standard population sizes for scaling benchmarks.
pub const SCALING_SIZES: [usize; 4] = [100, 1_000, 5_000, 20_000];

/// Generate a churn workload: `k` mutations against a population of `n`
/// providers produced by [`crate::population::generate_stable`]`(spec, n,
/// seed)`-compatible ids (`0..n`). Deterministic per `(spec, n, k, seed)`.
///
/// Each op draws from its own `(seed, op-index)`-keyed RNG, so the stream
/// is reproducible and prefix-stable: `churn(spec, n, k, seed)` is a prefix
/// of `churn(spec, n, k + m, seed)`. The op mix exercises every
/// [`DeltaOp`] variant — provider upsert (rewrite an existing provider) and
/// insert (fresh ids from `n` upward), removal, and per-attribute
/// preference, sensitivity, and threshold edits. Ops target only ids alive
/// at that point in the stream, so nothing degenerates to a no-op.
pub fn churn(spec: &PopulationSpec, n: usize, k: usize, seed: u64) -> PopulationDelta {
    // Decorrelate from the population stream: the same `seed` drives
    // generation and churn without reusing any provider's draws.
    const CHURN_SALT: u64 = 0xC0DE_C0DE_C0DE_C0DE;
    let mut alive: Vec<u64> = (0..n as u64).collect();
    let mut next_id = n as u64;
    let mut delta = PopulationDelta::new();
    for op in 0..k {
        let mut rng = SmallRng::seed_from_u64(provider_seed(seed ^ CHURN_SALT, op as u64));
        let kind = if alive.is_empty() {
            1 // only inserting makes sense on an empty population
        } else {
            rng.gen_range(0..6)
        };
        match kind {
            // Upsert an existing provider: a fresh profile under the same
            // id, as if they re-stated their whole privacy posture.
            0 => {
                let id = alive[rng.gen_range(0..alive.len())];
                let (profile, _, _) = generate_provider(spec, id as usize, &mut rng);
                delta.push(DeltaOp::Upsert(profile));
            }
            // A new provider joins under a never-used id.
            1 => {
                let (profile, _, _) = generate_provider(spec, next_id as usize, &mut rng);
                delta.push(DeltaOp::Upsert(profile));
                alive.push(next_id);
                next_id += 1;
            }
            // A provider leaves.
            2 => {
                let id = alive.swap_remove(rng.gen_range(0..alive.len()));
                delta.push(DeltaOp::Remove(ProviderId(id)));
            }
            // Re-state one attribute's preferences (possibly retracting
            // them: the regenerated profile may state no tuple for it).
            3 => {
                let id = alive[rng.gen_range(0..alive.len())];
                let attr = &spec.attributes[rng.gen_range(0..spec.attributes.len())].name;
                let (profile, _, _) = generate_provider(spec, id as usize, &mut rng);
                let tuples = profile
                    .preferences
                    .tuples()
                    .iter()
                    .filter(|t| &t.attribute == attr)
                    .map(|t| t.tuple.clone())
                    .collect();
                delta.push(DeltaOp::SetAttributePrefs {
                    id: ProviderId(id),
                    attribute: attr.clone(),
                    tuples,
                });
            }
            // Tweak one datum sensitivity.
            4 => {
                let id = alive[rng.gen_range(0..alive.len())];
                let attr = &spec.attributes[rng.gen_range(0..spec.attributes.len())].name;
                delta.push(DeltaOp::SetSensitivity {
                    id: ProviderId(id),
                    attribute: attr.clone(),
                    sensitivity: DatumSensitivity::new(
                        rng.gen_range(0..=5),
                        rng.gen_range(0..=5),
                        rng.gen_range(0..=5),
                        rng.gen_range(0..=5),
                    ),
                });
            }
            // Adjust a default threshold.
            _ => {
                let id = alive[rng.gen_range(0..alive.len())];
                delta.push(DeltaOp::SetThreshold {
                    id: ProviderId(id),
                    threshold: rng.gen_range(0..=200),
                });
            }
        }
    }
    delta
}

/// [`churn`] chopped into ingestion-sized batches: the same prefix-stable
/// op stream as `churn(spec, n, k, seed)`, split into deltas of at most
/// `batch` ops each — the natural feed for a continuous monitor
/// (`qpv_core::deltalog::Monitor::ingest`), where each batch is one
/// logged, group-committed unit. Concatenating the batches in order
/// yields exactly the single-delta stream.
pub fn churn_batches(
    spec: &PopulationSpec,
    n: usize,
    k: usize,
    batch: usize,
    seed: u64,
) -> Vec<PopulationDelta> {
    let batch = batch.max(1);
    let whole = churn(spec, n, k, seed);
    let mut batches = Vec::with_capacity(k.div_ceil(batch));
    let mut current = PopulationDelta::new();
    for op in whole.ops() {
        current.push(op.clone());
        if current.len() == batch {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_taxonomy::PrivacyTuple;

    fn base() -> HousePolicy {
        HousePolicy::builder("h")
            .tuple(
                "a",
                PrivacyTuple::from_point("pr", PrivacyPoint::from_raw(1, 1, 1)),
            )
            .build()
    }

    #[test]
    fn uniform_sweep_widens_monotonically() {
        let sweep = PolicySweep::uniform(&base(), 5);
        assert_eq!(sweep.len(), 6);
        for (i, (label, hp)) in sweep.steps.iter().enumerate() {
            assert_eq!(label, &format!("widen+{i}"));
            assert_eq!(hp.max_level(Dim::Visibility), 1 + i as u32);
        }
    }

    #[test]
    fn single_dimension_sweep_leaves_others_fixed() {
        let sweep = PolicySweep::along(&base(), Dim::Retention, 3);
        let last = &sweep.steps[3].1;
        assert_eq!(last.max_level(Dim::Retention), 4);
        assert_eq!(last.max_level(Dim::Visibility), 1);
    }

    fn churn_spec() -> PopulationSpec {
        use crate::population::AttributeSpec;
        use crate::segments::SegmentMix;
        PopulationSpec {
            attributes: vec![
                AttributeSpec::new("weight", 4, PrivacyPoint::from_raw(2, 2, 90), (40, 180)),
                AttributeSpec::new("age", 2, PrivacyPoint::from_raw(2, 3, 365), (18, 95)),
            ],
            purposes: vec!["service".into(), "research".into()],
            mix: SegmentMix::WESTIN_2001,
        }
    }

    #[test]
    fn churn_is_deterministic_and_prefix_stable() {
        let s = churn_spec();
        let a = churn(&s, 50, 40, 9);
        let b = churn(&s, 50, 40, 9);
        assert_eq!(a, b);
        let longer = churn(&s, 50, 60, 9);
        assert_eq!(a.ops(), &longer.ops()[..40]);
        let other = churn(&s, 50, 40, 10);
        assert_ne!(a, other);
    }

    #[test]
    fn churn_exercises_every_op_kind() {
        let s = churn_spec();
        let delta = churn(&s, 50, 120, 3);
        assert_eq!(delta.len(), 120);
        let mut seen = [false; 5];
        for op in delta.ops() {
            let i = match op {
                DeltaOp::Upsert(_) => 0,
                DeltaOp::Remove(_) => 1,
                DeltaOp::SetAttributePrefs { .. } => 2,
                DeltaOp::SetSensitivity { .. } => 3,
                DeltaOp::SetThreshold { .. } => 4,
            };
            seen[i] = true;
        }
        assert_eq!(seen, [true; 5], "op mix incomplete: {seen:?}");
    }

    /// Applying the churn delta to the compiled population audits
    /// identically to recompiling the mutated profiles from scratch.
    #[test]
    fn churn_delta_matches_profile_replay() {
        use crate::population::generate_stable;
        use qpv_core::{AuditEngine, CompiledPopulation};
        let s = churn_spec();
        let engine = AuditEngine::new(
            s.baseline_policy("base"),
            s.attribute_names(),
            s.attribute_weights(),
        );
        let pop = generate_stable(&s, 80, 7);
        let mut compiled = CompiledPopulation::from_profiles(&pop.profiles);
        let delta = churn(&s, 80, 100, 11);
        compiled.apply_delta(&delta).unwrap();

        let mut profiles = pop.profiles.clone();
        delta.apply_to_profiles(&mut profiles);
        let fresh = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(
            engine.audit_compiled(&compiled),
            engine.audit_compiled(&fresh)
        );
    }

    /// `churn_batches` is a pure re-chunking of `churn`: concatenating
    /// the batches reproduces the whole stream op-for-op, every batch
    /// respects the size bound, and only the last may run short.
    #[test]
    fn churn_batches_rechunk_the_stream() {
        let s = churn_spec();
        let whole = churn(&s, 40, 50, 13);
        for batch in [1usize, 7, 50, 64] {
            let batches = churn_batches(&s, 40, 50, batch, 13);
            assert!(batches.iter().all(|b| b.len() <= batch && !b.is_empty()));
            assert!(batches[..batches.len() - 1]
                .iter()
                .all(|b| b.len() == batch));
            let mut concat = PopulationDelta::new();
            for b in &batches {
                concat.merge(b.clone());
            }
            assert_eq!(concat, whole, "batch={batch}");
        }
        // batch = 0 is clamped, not a panic or an infinite loop.
        assert_eq!(churn_batches(&s, 40, 5, 0, 13).len(), 5);
    }

    #[test]
    fn purpose_creep_accumulates_purposes() {
        let sweep = PolicySweep::purpose_creep(&base(), PrivacyPoint::from_raw(2, 2, 2), 3);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.steps[0].1.purposes().len(), 1);
        assert_eq!(sweep.steps[3].1.purposes().len(), 4);
        // Earlier steps are unchanged by later ones.
        assert_eq!(sweep.steps[1].1.purposes().len(), 2);
        assert!(!sweep.is_empty());
    }
}
