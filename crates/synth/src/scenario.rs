//! Fully assembled experiment scenarios.
//!
//! A [`Scenario`] bundles a population spec, a generated population, the
//! baseline policy, and an audit engine — everything an experiment or
//! example needs. Three scenarios ship:
//!
//! * [`Scenario::worked_example`] — the paper's §8 Alice/Ted/Bob table,
//!   exactly;
//! * [`Scenario::healthcare`] — a patient registry (high-sensitivity
//!   attributes, conservative baseline), the paper's motivating
//!   "healthcare" application;
//! * [`Scenario::social_network`] — a profile-data service (lower
//!   sensitivity, wide baseline), the "social networking" application and
//!   the setting of the taxonomy's follow-up work.

use qpv_core::{AuditEngine, DatumSensitivity, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::row::Row;
use qpv_reldb::schema::{Schema, SchemaBuilder};
use qpv_reldb::types::DataType;
use qpv_reldb::value::Value;
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

use crate::population::{generate, AttributeSpec, Population, PopulationSpec};
use crate::segments::SegmentMix;

/// A named, ready-to-run experiment setting.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// The generating spec.
    pub spec: PopulationSpec,
    /// The generated population.
    pub population: Population,
    /// The house's baseline policy.
    pub baseline_policy: HousePolicy,
    /// Per-provider base utility `U` for the §9 economics (scenario-scaled).
    pub utility_per_provider: f64,
}

impl Scenario {
    /// Build an audit engine for this scenario's baseline policy.
    pub fn engine(&self) -> AuditEngine {
        AuditEngine::new(
            self.baseline_policy.clone(),
            self.spec.attribute_names(),
            self.spec.attribute_weights(),
        )
    }

    /// The reldb schema of the scenario's data table
    /// (`provider_id` + one INT column per attribute).
    pub fn data_schema(&self) -> Schema {
        let mut builder = SchemaBuilder::new().column("provider_id", DataType::Int);
        for attr in &self.spec.attributes {
            builder = builder.column(&attr.name, DataType::Int);
        }
        builder.build().expect("attribute names are unique")
    }

    /// The paper's §8 worked example: Alice, Ted, and Bob, the `Weight`
    /// attribute with `Σ = 4`, and the policy point `⟨pr, v, g, r⟩` at
    /// `(5, 5, 5)`.
    pub fn worked_example() -> Scenario {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let spec = PopulationSpec {
            attributes: vec![AttributeSpec::new(
                "weight",
                4,
                PrivacyPoint::from_raw(v, g, r),
                (40, 180),
            )],
            purposes: vec!["pr".into()],
            mix: SegmentMix::WESTIN_2001,
        };
        let baseline_policy = spec.baseline_policy("house");

        let mk =
            |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64, weight: i64| {
                let mut p = ProviderProfile::new(ProviderId(id), threshold);
                p.preferences
                    .add("weight", PrivacyTuple::from_point("pr", pref));
                p.sensitivities.insert("weight".into(), sens);
                (
                    p,
                    Row::from_values([Value::Int(id as i64), Value::Int(weight)]),
                )
            };
        let (alice, ra) = mk(
            0,
            PrivacyPoint::from_raw(v + 2, g + 1, r + 3),
            DatumSensitivity::new(1, 1, 2, 1),
            10,
            61,
        );
        let (ted, rt) = mk(
            1,
            PrivacyPoint::from_raw(v + 2, g - 1, r + 2),
            DatumSensitivity::new(3, 1, 5, 2),
            50,
            95,
        );
        let (bob, rb) = mk(
            2,
            PrivacyPoint::from_raw(v, g - 1, r - 1),
            DatumSensitivity::new(4, 1, 3, 2),
            100,
            82,
        );
        let population = Population {
            profiles: vec![alice, ted, bob],
            data_rows: vec![ra, rt, rb],
            segments: vec![
                crate::segments::Segment::Unconcerned,
                crate::segments::Segment::Fundamentalist,
                crate::segments::Segment::Pragmatist,
            ],
        };
        Scenario {
            name: "worked-example".into(),
            spec,
            population,
            baseline_policy,
            utility_per_provider: 10.0,
        }
    }

    /// A patient registry: weight, diagnosis code, and income — the high
    /// end of the Westin/Kobsa sensitivity ordering — collected for care
    /// and research, with a conservative baseline (house-only visibility,
    /// partial granularity).
    ///
    /// Retention in the synthetic scenarios uses a coarse ordinal bucket
    /// scale (0 none, 1 week, 2 month, 3 quarter, 4 year, 5 years, …)
    /// rather than raw days: what the model consumes is the *order*, and a
    /// bucket scale keeps retention commensurate with the other two
    /// dimensions in Equation 14's unweighted distance.
    pub fn healthcare(n: usize, seed: u64) -> Scenario {
        let spec = PopulationSpec {
            attributes: vec![
                AttributeSpec::new("weight", 4, PrivacyPoint::from_raw(2, 2, 3), (40, 180)),
                AttributeSpec::new("diagnosis", 5, PrivacyPoint::from_raw(2, 2, 4), (0, 999)),
                AttributeSpec::new("income", 5, PrivacyPoint::from_raw(2, 1, 3), (0, 250_000)),
            ],
            purposes: vec!["care".into(), "research".into()],
            mix: SegmentMix::WESTIN_2001,
        };
        let population = generate(&spec, n, seed);
        let baseline_policy = spec.baseline_policy("registry");
        Scenario {
            name: "healthcare".into(),
            spec,
            population,
            baseline_policy,
            utility_per_provider: 50.0,
        }
    }

    /// A social network: age, location, and interests, collected for
    /// service and advertising, with an already-wide baseline (third-party
    /// visibility on ads).
    pub fn social_network(n: usize, seed: u64) -> Scenario {
        let spec = PopulationSpec {
            attributes: vec![
                AttributeSpec::new("age", 2, PrivacyPoint::from_raw(3, 2, 3), (13, 90)),
                AttributeSpec::new("location", 3, PrivacyPoint::from_raw(3, 2, 2), (0, 10_000)),
                AttributeSpec::new("interests", 1, PrivacyPoint::from_raw(3, 3, 4), (0, 500)),
            ],
            purposes: vec!["service".into(), "ads".into()],
            mix: SegmentMix::WESTIN_2001,
        };
        let population = generate(&spec, n, seed);
        let baseline_policy = spec.baseline_policy("network");
        Scenario {
            name: "social-network".into(),
            spec,
            population,
            baseline_policy,
            utility_per_provider: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_reproduces_table_1() {
        let s = Scenario::worked_example();
        let report = s.engine().run(&s.population.profiles);
        let scores: Vec<u64> = report.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80]);
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scenarios_generate_consistent_shapes() {
        for s in [
            Scenario::healthcare(120, 1),
            Scenario::social_network(120, 1),
        ] {
            assert_eq!(s.population.len(), 120);
            assert_eq!(
                s.data_schema().arity(),
                s.spec.attributes.len() + 1,
                "{}",
                s.name
            );
            assert_eq!(
                s.baseline_policy.len(),
                s.spec.attributes.len() * s.spec.purposes.len()
            );
            // The engine runs without error and produces a full report.
            let report = s.engine().run(&s.population.profiles);
            assert_eq!(report.population(), 120);
        }
    }

    #[test]
    fn healthcare_is_more_sensitive_than_social() {
        let h = Scenario::healthcare(200, 3);
        let soc = Scenario::social_network(200, 3);
        let h_weights = h.spec.attribute_weights();
        let s_weights = soc.spec.attribute_weights();
        let h_max = h
            .spec
            .attributes
            .iter()
            .map(|a| h_weights.get(&a.name))
            .max();
        let s_max = soc
            .spec
            .attributes
            .iter()
            .map(|a| s_weights.get(&a.name))
            .max();
        assert!(h_max > s_max);
    }

    #[test]
    fn data_rows_fit_the_schema() {
        let s = Scenario::healthcare(20, 9);
        let schema = s.data_schema();
        for row in &s.population.data_rows {
            assert!(schema.check_row(row.clone()).is_ok());
        }
    }
}
