//! A provider's complete privacy posture.
//!
//! [`ProviderProfile`] bundles everything the model knows about one
//! provider: their stated preferences (Eq. 5), their datum sensitivities
//! (Eq. 11), and their default threshold `v_i` (Def. 4). The synthetic
//! population generator (`qpv-synth`) produces these; the audit engine and
//! the economics crate consume them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::{ProviderId, ProviderPreferences};

use crate::sensitivity::DatumSensitivity;

/// Everything the model tracks for one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderProfile {
    /// Stated privacy preferences.
    pub preferences: ProviderPreferences,
    /// Per-attribute datum sensitivities (`σ_i`).
    pub sensitivities: HashMap<String, DatumSensitivity>,
    /// Default threshold `v_i`.
    pub threshold: u64,
}

impl ProviderProfile {
    /// A profile with empty (deny-everything) preferences, neutral
    /// sensitivities, and the given threshold.
    pub fn new(provider: ProviderId, threshold: u64) -> ProviderProfile {
        ProviderProfile {
            preferences: ProviderPreferences::new(provider),
            sensitivities: HashMap::new(),
            threshold,
        }
    }

    /// The provider's id.
    pub fn id(&self) -> ProviderId {
        self.preferences.provider
    }

    /// The sensitivity tuple for an attribute (neutral if unset).
    pub fn sensitivity(&self, attribute: &str) -> DatumSensitivity {
        self.sensitivities
            .get(attribute)
            .copied()
            .unwrap_or_default()
    }
}

/// Merge a population of profiles into the shared [`crate::SensitivityModel`]
/// and [`crate::DefaultThresholds`] structures the model functions take.
pub fn assemble(
    profiles: &[ProviderProfile],
    attribute_weights: &crate::sensitivity::AttributeSensitivities,
) -> (crate::SensitivityModel, crate::DefaultThresholds) {
    let mut sens = crate::SensitivityModel::new();
    sens.attributes = attribute_weights.clone();
    let mut thresholds = crate::DefaultThresholds::default();
    for p in profiles {
        for (attr, s) in &p.sensitivities {
            sens.set_datum(p.id(), attr.clone(), *s);
        }
        thresholds.set(p.id(), p.threshold);
    }
    (sens, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_defaults() {
        let p = ProviderProfile::new(ProviderId(3), 50);
        assert_eq!(p.id(), ProviderId(3));
        assert_eq!(p.threshold, 50);
        assert_eq!(p.sensitivity("anything"), DatumSensitivity::neutral());
        assert!(p.preferences.is_empty());
    }

    #[test]
    fn assemble_builds_shared_structures() {
        let mut a = ProviderProfile::new(ProviderId(0), 10);
        a.sensitivities
            .insert("weight".into(), DatumSensitivity::new(1, 1, 2, 1));
        let mut b = ProviderProfile::new(ProviderId(1), 50);
        b.sensitivities
            .insert("weight".into(), DatumSensitivity::new(3, 1, 5, 2));
        let mut weights = crate::sensitivity::AttributeSensitivities::new();
        weights.set("weight", 4);
        let (sens, thresholds) = assemble(&[a, b], &weights);
        assert_eq!(sens.attribute_weight("weight", "pr"), 4);
        assert_eq!(sens.datum(ProviderId(1), "weight").granularity, 5);
        assert_eq!(thresholds.get(ProviderId(0)), 10);
        assert_eq!(thresholds.get(ProviderId(1)), 50);
    }

    #[test]
    fn serde_round_trip() {
        let mut p = ProviderProfile::new(ProviderId(9), 77);
        p.sensitivities
            .insert("income".into(), DatumSensitivity::new(5, 2, 2, 2));
        let json = serde_json::to_string(&p).unwrap();
        let back: ProviderProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
