//! Incremental violation maintenance under policy changes.
//!
//! `Violation_i` (Eq. 15) is a sum of independent per-policy-tuple
//! contributions, so when the house edits its policy only the contributions
//! of *changed* `(attribute, purpose)` groups need recomputing. For a policy
//! edit touching `k` of `m` groups over `n` providers, the incremental
//! update costs `O(n·k)` versus `O(n·m)` for a full re-audit — the ablation
//! benchmark A1 measures the crossover.
//!
//! The auditor also maintains per-provider *violation counts* (how many
//! policy tuples currently violate), so Definition 1's `w_i` and
//! Definition 4's `default_i` stay queryable without a rescan.
//!
//! Like the batch engine, the recomputation hot loop is string-free: the
//! auditor builds on [`crate::pop::CompiledPopulation`] — the population
//! interned once into flat structure-of-arrays storage — and derives from
//! its dense preference rows an id-keyed sorted table per provider. A group
//! recompute then resolves its `(attribute, purpose)` key to ids once and
//! probes per provider with binary search plus one flat datum load — no
//! per-provider string hashing.
//!
//! The auditor is incremental along the *population* axis too:
//! [`IncrementalAuditor::apply_delta`] consumes a
//! [`crate::pop::PopulationDelta`], applies it to its compiled population
//! in place, and re-scores only the occurrences the delta's event log
//! names — `O(touched × groups)` per update instead of an `O(N)` rebuild.
//!
//! Internally every per-provider score is an **exact `u128` pre-clamp
//! sum** of its per-group contributions; the `u64` clamp of the batch
//! engine is applied only on read ([`IncrementalAuditor::score`]).
//! Retraction is therefore exact even after a score has passed
//! `u64::MAX`: subtracting a group's exact contribution from the exact
//! sum restores precisely the remaining groups' total, bit-identical to
//! a fresh rebuild.

use std::collections::HashMap;
use std::num::NonZeroUsize;

use qpv_policy::HousePolicy;
use qpv_taxonomy::{PrivacyPoint, Purpose, ViolationGeometry};

use crate::default_model::defaults;
use crate::pop::{
    CompiledPopulation, DeltaError, DeltaEvent, DeltaOutcome, PolicyOutcome, PopulationDelta,
};
use crate::profile::ProviderProfile;
use crate::sensitivity::{AttributeSensitivities, DatumSensitivity, SensitivityModel};
use crate::severity::conf;

/// A policy "group": every tuple for one `(attribute, purpose)` pair.
type GroupKey = (String, Purpose);

/// Per-provider contribution of one group.
#[derive(Debug, Clone, Default, PartialEq)]
struct GroupContribution {
    /// Exact severity contribution per provider (indexed like the
    /// population; pre-clamp, so retraction can subtract it exactly).
    scores: Vec<u128>,
    /// How many of the group's tuples violate, per provider.
    violations: Vec<u32>,
}

/// One provider's preferences, keyed by interned `(attribute, purpose)`
/// ids. Entries are sorted for binary search; duplicate keys keep the
/// *first* stated tuple, matching `effective_point`'s find-first contract.
#[derive(Debug, Clone, Default)]
struct ProviderPrefIndex {
    entries: Vec<(u32, u32, PrivacyPoint)>,
}

impl ProviderPrefIndex {
    fn lookup(&self, attr: u32, purpose: u32) -> Option<PrivacyPoint> {
        self.entries
            .binary_search_by_key(&(attr, purpose), |e| (e.0, e.1))
            .ok()
            .map(|i| self.entries[i].2)
    }
}

/// Maintains per-provider violation state across policy updates and
/// population deltas.
#[derive(Debug, Clone)]
pub struct IncrementalAuditor {
    /// The population in flat structure-of-arrays form: interned symbol
    /// tables, dense preference rows, merged datum sensitivities, and
    /// default thresholds all live here.
    pop: CompiledPopulation,
    attributes: Vec<String>,
    sensitivity: SensitivityModel,
    policy: HousePolicy,
    groups: HashMap<GroupKey, GroupContribution>,
    /// Exact pre-clamp per-provider sums (clamped to `u64` on read).
    scores: Vec<u128>,
    violation_counts: Vec<u64>,
    /// Per-provider id-keyed preference tables (indexed like the
    /// population), keyed by the population's symbol ids.
    pref_index: Vec<ProviderPrefIndex>,
}

impl IncrementalAuditor {
    /// Build the initial state with a full pass (cost identical to one full
    /// audit).
    pub fn new(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build(profiles, attributes, attribute_weights);
        auditor.apply_policy(policy);
        auditor
    }

    /// [`IncrementalAuditor::new`], with the initial full pass sharded
    /// across `threads` worker threads.
    pub fn new_parallel(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
        threads: NonZeroUsize,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build(profiles, attributes, attribute_weights);
        auditor.apply_policy_parallel(policy, threads);
        auditor
    }

    /// [`IncrementalAuditor::new`], but starting from an already-compiled
    /// population — the rebuild path callers use when a
    /// [`CompiledPopulation`] is on hand (e.g. from a `Ppdb` scan).
    pub fn from_population(
        pop: CompiledPopulation,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build_from_pop(pop, attributes, attribute_weights);
        auditor.apply_policy(policy);
        auditor
    }

    /// Compile the population and index it (one pass), with an empty policy
    /// applied.
    fn build(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
    ) -> IncrementalAuditor {
        let pop = CompiledPopulation::from_profiles(&profiles);
        IncrementalAuditor::build_from_pop(pop, attributes, attribute_weights)
    }

    /// Derive the binary-searchable per-provider preference tables from the
    /// compiled population's dense rows.
    fn build_from_pop(
        pop: CompiledPopulation,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
    ) -> IncrementalAuditor {
        // The assembled model's attribute weights are exactly the house
        // weights (per-provider datums live in `pop`'s flat table instead).
        let sensitivity = SensitivityModel::from_attribute_weights(attribute_weights);
        let mut pref_index = Vec::with_capacity(pop.len());
        for i in 0..pop.len() {
            pref_index.push(index_occurrence(&pop, i));
        }
        IncrementalAuditor {
            scores: vec![0; pop.len()],
            violation_counts: vec![0; pop.len()],
            pop,
            attributes,
            sensitivity,
            policy: HousePolicy::new("empty"),
            groups: HashMap::new(),
            pref_index,
        }
    }

    /// Replace the policy, recomputing only the changed groups.
    pub fn apply_policy(&mut self, new_policy: HousePolicy) {
        self.apply_policy_inner(new_policy, NonZeroUsize::MIN);
    }

    /// [`IncrementalAuditor::apply_policy`], with each changed group's
    /// per-provider recomputation sharded across `threads` worker threads.
    /// Produces state identical to the sequential path for any thread
    /// count: providers are re-scored independently and merged in
    /// population order.
    pub fn apply_policy_parallel(&mut self, new_policy: HousePolicy, threads: NonZeroUsize) {
        self.apply_policy_inner(new_policy, threads);
    }

    fn apply_policy_inner(&mut self, new_policy: HousePolicy, threads: NonZeroUsize) {
        let old_groups = group_points(&self.policy, &self.attributes);
        let new_groups = group_points(&new_policy, &self.attributes);

        // Groups that disappeared or changed: retract their contribution.
        // Exact: per-provider sums are `u128` pre-clamp accumulators and
        // every group's contribution was added exactly, so subtraction
        // cannot underflow — even after the clamped-on-read `u64` score
        // has pinned at `u64::MAX`.
        for (key, old_points) in &old_groups {
            let unchanged = new_groups.get(key).is_some_and(|n| n == old_points);
            if unchanged {
                continue;
            }
            if let Some(contrib) = self.groups.remove(key) {
                for (i, (s, v)) in contrib
                    .scores
                    .iter()
                    .zip(contrib.violations.iter())
                    .enumerate()
                {
                    self.scores[i] -= *s;
                    self.violation_counts[i] -= u64::from(*v);
                }
            }
        }
        // Groups that appeared or changed: compute and add.
        for (key, points) in &new_groups {
            let unchanged = old_groups.get(key).is_some_and(|o| o == points);
            if unchanged {
                continue;
            }
            let contrib = self.compute_group(key, points, threads);
            for (i, (s, v)) in contrib
                .scores
                .iter()
                .zip(contrib.violations.iter())
                .enumerate()
            {
                self.scores[i] += *s;
                self.violation_counts[i] += u64::from(*v);
            }
            self.groups.insert(key.clone(), contrib);
        }
        self.policy = new_policy;
    }

    fn compute_group(
        &self,
        key: &GroupKey,
        points: &[qpv_taxonomy::PrivacyPoint],
        threads: NonZeroUsize,
    ) -> GroupContribution {
        let len = self.pop.len();
        if threads.get() > 1 && len >= crate::par::PAR_THRESHOLD {
            let chunk = crate::par::chunk_size(len, threads.get());
            let parts = crate::par::par_map_chunks(len, threads.get(), chunk, |start, end| {
                self.compute_group_range(key, points, start, end)
            })
            .expect("incremental group computation is panic-free");
            let mut merged = GroupContribution {
                scores: Vec::with_capacity(len),
                violations: Vec::with_capacity(len),
            };
            for part in parts {
                merged.scores.extend(part.scores);
                merged.violations.extend(part.violations);
            }
            merged
        } else {
            self.compute_group_range(key, points, 0, len)
        }
    }

    /// One group's contribution for providers in `[start, end)`, on the
    /// interned fast path: the `(attribute, purpose)` key and the `Σ^a`
    /// weight resolve once, then each provider costs one binary search
    /// plus one dense datum load. Each provider is independent, so cutting
    /// this range into chunks and concatenating in index order reproduces
    /// the sequential result exactly.
    fn compute_group_range(
        &self,
        key: &GroupKey,
        points: &[PrivacyPoint],
        start: usize,
        end: usize,
    ) -> GroupContribution {
        let (attribute, purpose) = key;
        let weight = self.sensitivity.attribute_weight(attribute, purpose.name());
        let (attrs, purposes) = self.pop.symbols();
        // An attribute or purpose no provider ever mentioned is absent from
        // the population's tables: every preference is then the implicit
        // deny-all `⟨0,0,0⟩` and every datum the neutral sensitivity.
        let attr = attrs.get(attribute);
        let ids = attr.zip(purposes.get(purpose.name()));
        let mut scores = vec![0u128; end - start];
        let mut violations = vec![0u32; end - start];
        for (i, idx) in (start..end).enumerate() {
            let (s, v) = self.score_one(idx, weight, attr, ids, points);
            scores[i] = s;
            violations[i] = v;
        }
        GroupContribution { scores, violations }
    }

    /// One provider's exact contribution to one group, with the group key
    /// already resolved to symbol ids. The per-point `conf` terms are
    /// `u64`s summed into a `u128`, so the sum is exact (a group would
    /// need 2^64 points to overflow it).
    fn score_one(
        &self,
        idx: usize,
        weight: u32,
        attr: Option<u32>,
        ids: Option<(u32, u32)>,
        points: &[PrivacyPoint],
    ) -> (u128, u32) {
        let pref = ids
            .and_then(|(a, p)| self.pref_index[idx].lookup(a, p))
            .unwrap_or(PrivacyPoint::ZERO);
        let datum = match attr {
            Some(a) => self.pop.datum(idx, a),
            None => DatumSensitivity::neutral(),
        };
        let mut score = 0u128;
        let mut violations = 0u32;
        for point in points {
            score += u128::from(conf(&pref, point, weight, datum));
            if ViolationGeometry::compare(&pref, point).is_violation() {
                violations += 1;
            }
        }
        (score, violations)
    }

    /// Consume a population delta: apply it to the compiled population in
    /// place, then replay the event log — removals `swap_remove` the
    /// per-provider state, appends grow it, and every touched occurrence
    /// is re-scored against the cached policy groups. Cost is
    /// `O(touched × groups)` plus the delta application itself; nothing
    /// scales with `N`.
    pub fn apply_delta(&mut self, delta: &PopulationDelta) -> Result<DeltaOutcome, DeltaError> {
        let outcome = self.pop.apply_delta(delta)?;
        let group_pts = group_points(&self.policy, &self.attributes);
        let mut dirty: Vec<usize> = Vec::new();
        for ev in outcome.events() {
            match *ev {
                DeltaEvent::Touched(i) => dirty.push(i as usize),
                DeltaEvent::Appended(i) => {
                    let i = i as usize;
                    debug_assert_eq!(i, self.scores.len());
                    self.scores.push(0);
                    self.violation_counts.push(0);
                    self.pref_index.push(ProviderPrefIndex::default());
                    for contrib in self.groups.values_mut() {
                        contrib.scores.push(0);
                        contrib.violations.push(0);
                    }
                    dirty.push(i);
                }
                DeltaEvent::Removed(i) => {
                    let i = i as usize;
                    self.scores.swap_remove(i);
                    self.violation_counts.swap_remove(i);
                    self.pref_index.swap_remove(i);
                    for contrib in self.groups.values_mut() {
                        contrib.scores.swap_remove(i);
                        contrib.violations.swap_remove(i);
                    }
                    // The then-last occurrence moved into slot `i`; any
                    // pending dirty marks follow it, and marks on the
                    // removed occurrence die with it.
                    let moved = self.scores.len();
                    dirty.retain(|&d| d != i);
                    for d in &mut dirty {
                        if *d == moved {
                            *d = i;
                        }
                    }
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        for i in dirty {
            self.rescore(i, &group_pts);
        }
        Ok(outcome)
    }

    /// Recompute occurrence `i` from scratch against every cached group:
    /// rebuild its preference table from the (just-mutated) population
    /// rows, then overwrite its slot in each group's contribution vector
    /// and its exact sums.
    fn rescore(&mut self, i: usize, group_pts: &HashMap<GroupKey, Vec<PrivacyPoint>>) {
        self.pref_index[i] = index_occurrence(&self.pop, i);
        let (attrs, purposes) = self.pop.symbols();
        let mut fresh: Vec<(GroupKey, u128, u32)> = Vec::with_capacity(group_pts.len());
        for (key, points) in group_pts {
            let (attribute, purpose) = key;
            let weight = self.sensitivity.attribute_weight(attribute, purpose.name());
            let attr = attrs.get(attribute);
            let ids = attr.zip(purposes.get(purpose.name()));
            let (s, v) = self.score_one(i, weight, attr, ids, points);
            fresh.push((key.clone(), s, v));
        }
        let mut total = 0u128;
        let mut violations = 0u64;
        for (key, s, v) in fresh {
            let contrib = self
                .groups
                .get_mut(&key)
                .expect("groups mirror the applied policy's group keys");
            contrib.scores[i] = s;
            contrib.violations[i] = v;
            total += s;
            violations += u64::from(v);
        }
        self.scores[i] = total;
        self.violation_counts[i] = violations;
    }

    /// The current policy.
    pub fn policy(&self) -> &HousePolicy {
        &self.policy
    }

    /// The auditor's compiled population (epoch included), for callers
    /// that want to run batch audits or what-if sweeps over the same
    /// delta-maintained state.
    pub fn compiled(&self) -> &CompiledPopulation {
        &self.pop
    }

    /// `Violation_i` for provider at population index `i`. The exact
    /// `u128` pre-clamp sum is clamped to `u64` here, on read — the same
    /// per-provider saturation the batch engine applies.
    pub fn score(&self, i: usize) -> u64 {
        clamp_score(self.scores[i])
    }

    /// `w_i` for provider at population index `i`.
    pub fn violated(&self, i: usize) -> bool {
        self.violation_counts[i] > 0
    }

    /// `default_i` for provider at population index `i`.
    pub fn defaulted(&self, i: usize) -> bool {
        defaults(self.score(i), self.pop.threshold_of(i))
    }

    /// Equation 16's `Violations`: the sum of clamped per-provider
    /// scores, exactly what the batch engine's report totals.
    pub fn total_violations(&self) -> u128 {
        self.scores
            .iter()
            .map(|&s| u128::from(clamp_score(s)))
            .sum()
    }

    /// The counts-only aggregate of the current state — identical to
    /// [`crate::AuditEngine::counts`] over the same population and
    /// policy, and cheap enough to snapshot after every delta.
    pub fn outcome(&self) -> PolicyOutcome {
        PolicyOutcome {
            total_violations: self.total_violations(),
            violated: self.violation_counts.iter().filter(|&&c| c > 0).count(),
            defaulted: (0..self.pop.len()).filter(|&i| self.defaulted(i)).count(),
            population: self.pop.len(),
        }
    }

    /// `P(W)` under the current policy (counted directly, no allocation).
    pub fn p_violation(&self) -> f64 {
        crate::probability::census_fraction(
            self.violation_counts.iter().filter(|&&c| c > 0).count(),
            self.pop.len(),
        )
    }

    /// `P(Default)` under the current policy (counted directly, no
    /// allocation).
    pub fn p_default(&self) -> f64 {
        crate::probability::census_fraction(
            (0..self.pop.len()).filter(|&i| self.defaulted(i)).count(),
            self.pop.len(),
        )
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.pop.len()
    }
}

/// The batch engine's per-provider `u64` saturation, applied to the
/// exact pre-clamp sum on read.
fn clamp_score(s: u128) -> u64 {
    s.min(u128::from(u64::MAX)) as u64
}

/// Build one occurrence's binary-searchable preference table from the
/// compiled population's dense rows. Stable sort + keep-first dedup
/// reproduce `effective_point`'s find-first semantics; rows for
/// attributes outside the audited set are harmless dead weight (their
/// ids are never looked up).
fn index_occurrence(pop: &CompiledPopulation, i: usize) -> ProviderPrefIndex {
    let mut entries: Vec<(u32, u32, PrivacyPoint)> = pop
        .pref_rows_of(i)
        .map(|r| (r.attr, r.purpose, r.point))
        .collect();
    entries.sort_by_key(|e| (e.0, e.1));
    entries.dedup_by_key(|e| (e.0, e.1));
    ProviderPrefIndex { entries }
}

/// Group a policy's tuples by `(attribute, purpose)`, keeping only
/// attributes the data table stores; points within a group are sorted so
/// group equality is order-insensitive.
fn group_points(
    policy: &HousePolicy,
    attributes: &[String],
) -> HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> {
    let mut groups: HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> = HashMap::new();
    for t in policy.tuples() {
        if !attributes.contains(&t.attribute) {
            continue;
        }
        groups
            .entry((t.attribute.clone(), t.tuple.purpose.clone()))
            .or_default()
            .push(t.tuple.point);
    }
    for points in groups.values_mut() {
        points.sort();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use crate::sensitivity::DatumSensitivity;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 7) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 3) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("pr", pt(2, 3, 60 + (i % 5) as u32)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 4) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn weights() -> AttributeSensitivities {
        let mut w = AttributeSensitivities::new();
        w.set("weight", 4);
        w.set("age", 2);
        w
    }

    fn policy(level: u32) -> HousePolicy {
        HousePolicy::builder("h")
            .tuple(
                "weight",
                PrivacyTuple::from_point("pr", pt(level, level, 30 + level)),
            )
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 50 + level)))
            .build()
    }

    /// Reference audit results for cross-checking.
    fn full_audit(profiles: &[ProviderProfile], hp: &HousePolicy) -> (Vec<u64>, u128) {
        let engine = AuditEngine::new(hp.clone(), ["weight", "age"], weights());
        let report = engine.run(profiles);
        (
            report.providers.iter().map(|p| p.score).collect(),
            report.total_violations,
        )
    }

    #[test]
    fn initial_state_matches_full_audit() {
        let profiles = population(50);
        let hp = policy(3);
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, total) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s, "provider {i}");
        }
        assert_eq!(auditor.total_violations(), total);
    }

    #[test]
    fn incremental_updates_agree_with_full_recompute() {
        let profiles = population(50);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(0),
        );
        for level in [1, 4, 2, 7, 0, 9] {
            let hp = policy(level);
            auditor.apply_policy(hp.clone());
            let (scores, total) = full_audit(&profiles, &hp);
            for (i, s) in scores.iter().enumerate() {
                assert_eq!(auditor.score(i), *s, "level {level}, provider {i}");
            }
            assert_eq!(auditor.total_violations(), total, "level {level}");
            // Probabilities agree too.
            let engine = AuditEngine::new(hp, ["weight", "age"], weights());
            let report = engine.run(&profiles);
            assert_eq!(auditor.p_violation(), report.p_violation());
            assert_eq!(auditor.p_default(), report.p_default());
        }
    }

    #[test]
    fn touching_one_attribute_leaves_other_groups_cached() {
        let profiles = population(20);
        let mut auditor = IncrementalAuditor::new(
            profiles,
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(3),
        );
        let age_before = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group exists");
        // Widen only weight.
        let hp = auditor.policy().widened(Dim::Granularity, 2);
        // widened() touches every tuple; build a weight-only change instead.
        let mut weight_only = policy(3);
        weight_only = HousePolicy::builder(weight_only.name)
            .tuple("weight", PrivacyTuple::from_point("pr", pt(9, 9, 99)))
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 53)))
            .build();
        let _ = hp;
        auditor.apply_policy(weight_only);
        let age_after = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group still exists");
        assert_eq!(age_before, age_after, "unchanged group was recomputed");
    }

    #[test]
    fn new_purposes_and_removed_tuples_are_handled() {
        let profiles = population(10);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(2),
        );
        // Add an unconsented purpose: scores must rise (implicit deny-all).
        let before = auditor.total_violations();
        let with_ads = auditor.policy().with_new_purpose("ads", pt(3, 3, 365));
        auditor.apply_policy(with_ads.clone());
        assert!(auditor.total_violations() > before);
        let (scores, _) = full_audit(&profiles, &with_ads);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
        // Now shrink back to an empty policy: everything returns to zero.
        auditor.apply_policy(HousePolicy::new("h"));
        assert_eq!(auditor.total_violations(), 0);
        assert_eq!(auditor.p_violation(), 0.0);
    }

    /// Regression test for the retraction underflow: with datum
    /// sensitivities near `u32::MAX` two policy groups each contribute a
    /// saturated `u64::MAX`, so the seed's unchecked `+=` / `-=`
    /// accumulation panicked in debug builds (add overflow on the second
    /// group, sub underflow on retraction). Both directions now saturate
    /// symmetrically.
    #[test]
    fn saturated_scores_survive_policy_retraction() {
        let mut p = ProviderProfile::new(ProviderId(0), u64::MAX);
        p.preferences
            .add("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.preferences
            .add("b", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        for attr in ["a", "b"] {
            p.sensitivities.insert(
                attr.into(),
                DatumSensitivity::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX),
            );
        }
        let mut w = AttributeSensitivities::new();
        w.set("a", u32::MAX);
        w.set("b", u32::MAX);
        let both = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        // Accumulating two saturated groups must clamp, not overflow.
        let mut auditor = IncrementalAuditor::new(vec![p], vec!["a".into(), "b".into()], &w, both);
        assert_eq!(auditor.score(0), u64::MAX);
        assert!(auditor.violated(0));
        // Retracting one of them must clamp, not underflow.
        let only_a = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        auditor.apply_policy(only_a);
        assert!(auditor.violated(0), "group a still violates");
        // Shrinking to an empty policy fully clears the provider.
        auditor.apply_policy(HousePolicy::new("h"));
        assert_eq!(auditor.score(0), 0);
        assert_eq!(auditor.total_violations(), 0);
        assert!(!auditor.violated(0));
    }

    /// Regression for the saturation edge: the auditor keeps exact `u128`
    /// pre-clamp sums, so retracting a group after the clamped `u64` read
    /// has pinned at `u64::MAX` restores the remaining groups' score
    /// *exactly* — no rebuild required, bit-identical to one.
    #[test]
    fn retraction_after_clamp_is_exact() {
        // Group "a" saturates the provider's clamped score on its own;
        // group "b" contributes a small, exactly-known amount.
        let mut p = ProviderProfile::new(ProviderId(0), u64::MAX);
        p.preferences
            .add("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.preferences
            .add("b", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.sensitivities.insert(
            "a".into(),
            DatumSensitivity::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX),
        );
        let mut w = AttributeSensitivities::new();
        w.set("a", u32::MAX);
        w.set("b", 2);
        let attrs = vec!["a".to_string(), "b".to_string()];
        let b_only = HousePolicy::builder("h")
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        // The exact score under the b-only policy, from the batch engine.
        let engine = AuditEngine::new(b_only.clone(), ["a", "b"], w.clone());
        let exact = engine.run(std::slice::from_ref(&p)).providers[0].score;
        assert!(exact > 0 && exact < u64::MAX);

        let both = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        let mut auditor = IncrementalAuditor::new(vec![p.clone()], attrs.clone(), &w, both);
        assert_eq!(auditor.score(0), u64::MAX, "the read clamps like batch");
        // Retracting "a" subtracts its exact contribution from the exact
        // pre-clamp sum: what remains is precisely group b's score.
        auditor.apply_policy(b_only.clone());
        assert_eq!(
            auditor.score(0),
            exact,
            "retraction is exact past the clamp"
        );
        assert!(auditor.violated(0), "the b violation is still counted");
        // And it agrees bit-for-bit with fresh rebuilds.
        let rebuilt = IncrementalAuditor::new(vec![p.clone()], attrs.clone(), &w, b_only.clone());
        assert_eq!(rebuilt.score(0), auditor.score(0));
        let from_pop = IncrementalAuditor::from_population(
            CompiledPopulation::from_profiles(std::slice::from_ref(&p)),
            attrs,
            &w,
            b_only,
        );
        assert_eq!(from_pop.score(0), exact);
        assert!(from_pop.violated(0));
    }

    /// Delta consumption: random-ish op sequences leave the auditor in
    /// exactly the state a fresh build over the mutated profiles reaches.
    #[test]
    fn apply_delta_matches_fresh_build() {
        use crate::pop::PopulationDelta;
        let mut profiles = population(30);
        let attrs = vec!["weight".to_string(), "age".to_string()];
        let mut auditor =
            IncrementalAuditor::new(profiles.clone(), attrs.clone(), &weights(), policy(3));

        let mut newcomer = ProviderProfile::new(ProviderId(100), 15);
        newcomer
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        let delta = PopulationDelta::new()
            .upsert(newcomer)
            .remove(ProviderId(3))
            .set_attribute_prefs(
                ProviderId(7),
                "age",
                vec![PrivacyTuple::from_point("pr", pt(9, 9, 99))],
            )
            .set_sensitivity(ProviderId(7), "weight", DatumSensitivity::new(4, 4, 4, 4))
            .set_threshold(ProviderId(11), 0)
            .remove(ProviderId(5));

        delta.apply_to_profiles(&mut profiles);
        let outcome = auditor.apply_delta(&delta).expect("unique ids");
        assert_eq!(outcome.epoch, auditor.compiled().epoch());

        let fresh = IncrementalAuditor::new(profiles.clone(), attrs, &weights(), policy(3));
        assert_eq!(auditor.population(), fresh.population());
        for i in 0..fresh.population() {
            assert_eq!(auditor.score(i), fresh.score(i), "provider slot {i}");
            assert_eq!(auditor.violated(i), fresh.violated(i));
            assert_eq!(auditor.defaulted(i), fresh.defaulted(i));
        }
        assert_eq!(auditor.outcome(), fresh.outcome());
        // And a later policy edit still updates incrementally and agrees.
        auditor.apply_policy(policy(6));
        let (scores, total) = full_audit(&profiles, &policy(6));
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
        assert_eq!(auditor.total_violations(), total);
    }

    /// Deltas compose with policy edits in any order, and the aggregate
    /// outcome always equals the batch engine's counts over the auditor's
    /// own compiled population.
    #[test]
    fn deltas_and_policy_edits_interleave() {
        use crate::pop::PopulationDelta;
        let profiles = population(25);
        let attrs = vec!["weight".to_string(), "age".to_string()];
        let mut auditor =
            IncrementalAuditor::new(profiles.clone(), attrs.clone(), &weights(), policy(1));
        for (round, level) in [4u32, 0, 7].into_iter().enumerate() {
            auditor.apply_policy(policy(level));
            let delta = PopulationDelta::new()
                .set_threshold(ProviderId(round as u64), 0)
                .remove(ProviderId(20 - round as u64));
            auditor.apply_delta(&delta).expect("unique ids");
            let engine = AuditEngine::new(policy(level), ["weight", "age"], weights());
            assert_eq!(
                auditor.outcome(),
                engine.counts(auditor.compiled()),
                "round {round}"
            );
        }
    }

    #[test]
    fn parallel_apply_policy_matches_sequential_for_all_thread_counts() {
        let profiles = population(700); // above PAR_THRESHOLD
        let levels = [3u32, 1, 6, 0, 9];
        let mut sequential = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(2),
        );
        for threads in [1usize, 2, 4, 8] {
            let nz = std::num::NonZeroUsize::new(threads).unwrap();
            let mut parallel = IncrementalAuditor::new_parallel(
                profiles.clone(),
                vec!["weight".into(), "age".into()],
                &weights(),
                policy(2),
                nz,
            );
            for level in levels {
                sequential.apply_policy(policy(level));
                parallel.apply_policy_parallel(policy(level), nz);
                for i in 0..parallel.population() {
                    assert_eq!(
                        parallel.score(i),
                        sequential.score(i),
                        "threads {threads}, level {level}, provider {i}"
                    );
                    assert_eq!(parallel.violated(i), sequential.violated(i));
                    assert_eq!(parallel.defaulted(i), sequential.defaulted(i));
                }
                assert_eq!(parallel.total_violations(), sequential.total_violations());
                assert_eq!(parallel.p_violation(), sequential.p_violation());
                assert_eq!(parallel.p_default(), sequential.p_default());
            }
            // Reset the sequential reference for the next thread count.
            sequential = IncrementalAuditor::new(
                profiles.clone(),
                vec!["weight".into(), "age".into()],
                &weights(),
                policy(2),
            );
        }
    }

    #[test]
    fn policy_attributes_not_in_table_are_ignored() {
        let profiles = population(5);
        let mut hp = policy(2);
        hp.add("ghost_attr", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, _) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
    }
}
