//! Incremental violation maintenance under policy changes.
//!
//! `Violation_i` (Eq. 15) is a sum of independent per-policy-tuple
//! contributions, so when the house edits its policy only the contributions
//! of *changed* `(attribute, purpose)` groups need recomputing. For a policy
//! edit touching `k` of `m` groups over `n` providers, the incremental
//! update costs `O(n·k)` versus `O(n·m)` for a full re-audit — the ablation
//! benchmark A1 measures the crossover.
//!
//! The auditor also maintains per-provider *violation counts* (how many
//! policy tuples currently violate), so Definition 1's `w_i` and
//! Definition 4's `default_i` stay queryable without a rescan.
//!
//! Like the batch engine, the recomputation hot loop is string-free: the
//! auditor builds on [`crate::pop::CompiledPopulation`] — the population
//! interned once into flat structure-of-arrays storage — and derives from
//! its dense preference rows an id-keyed sorted table per provider. A group
//! recompute then resolves its `(attribute, purpose)` key to ids once and
//! probes per provider with binary search plus one flat datum load — no
//! per-provider string hashing.

use std::collections::HashMap;
use std::num::NonZeroUsize;

use qpv_policy::HousePolicy;
use qpv_taxonomy::{PrivacyPoint, Purpose, ViolationGeometry};

use crate::default_model::defaults;
use crate::pop::CompiledPopulation;
use crate::profile::ProviderProfile;
use crate::sensitivity::{AttributeSensitivities, DatumSensitivity, SensitivityModel};
use crate::severity::conf;

/// A policy "group": every tuple for one `(attribute, purpose)` pair.
type GroupKey = (String, Purpose);

/// Per-provider contribution of one group.
#[derive(Debug, Clone, Default, PartialEq)]
struct GroupContribution {
    /// Severity contribution per provider (indexed like `profiles`).
    scores: Vec<u64>,
    /// How many of the group's tuples violate, per provider.
    violations: Vec<u32>,
}

/// One provider's preferences, keyed by interned `(attribute, purpose)`
/// ids. Entries are sorted for binary search; duplicate keys keep the
/// *first* stated tuple, matching `effective_point`'s find-first contract.
#[derive(Debug, Clone, Default)]
struct ProviderPrefIndex {
    entries: Vec<(u32, u32, PrivacyPoint)>,
}

impl ProviderPrefIndex {
    fn lookup(&self, attr: u32, purpose: u32) -> Option<PrivacyPoint> {
        self.entries
            .binary_search_by_key(&(attr, purpose), |e| (e.0, e.1))
            .ok()
            .map(|i| self.entries[i].2)
    }
}

/// Maintains per-provider violation state across policy updates.
#[derive(Debug)]
pub struct IncrementalAuditor {
    /// The population in flat structure-of-arrays form: interned symbol
    /// tables, dense preference rows, merged datum sensitivities, and
    /// default thresholds all live here.
    pop: CompiledPopulation,
    attributes: Vec<String>,
    sensitivity: SensitivityModel,
    policy: HousePolicy,
    groups: HashMap<GroupKey, GroupContribution>,
    scores: Vec<u64>,
    violation_counts: Vec<u32>,
    /// Per-provider id-keyed preference tables (indexed like the
    /// population), keyed by the population's symbol ids.
    pref_index: Vec<ProviderPrefIndex>,
}

impl IncrementalAuditor {
    /// Build the initial state with a full pass (cost identical to one full
    /// audit).
    pub fn new(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build(profiles, attributes, attribute_weights);
        auditor.apply_policy(policy);
        auditor
    }

    /// [`IncrementalAuditor::new`], with the initial full pass sharded
    /// across `threads` worker threads.
    pub fn new_parallel(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
        threads: NonZeroUsize,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build(profiles, attributes, attribute_weights);
        auditor.apply_policy_parallel(policy, threads);
        auditor
    }

    /// [`IncrementalAuditor::new`], but starting from an already-compiled
    /// population — the rebuild path callers use when a
    /// [`CompiledPopulation`] is on hand (e.g. from a `Ppdb` scan).
    pub fn from_population(
        pop: CompiledPopulation,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
    ) -> IncrementalAuditor {
        let mut auditor = IncrementalAuditor::build_from_pop(pop, attributes, attribute_weights);
        auditor.apply_policy(policy);
        auditor
    }

    /// Compile the population and index it (one pass), with an empty policy
    /// applied.
    fn build(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
    ) -> IncrementalAuditor {
        let pop = CompiledPopulation::from_profiles(&profiles);
        IncrementalAuditor::build_from_pop(pop, attributes, attribute_weights)
    }

    /// Derive the binary-searchable per-provider preference tables from the
    /// compiled population's dense rows.
    fn build_from_pop(
        pop: CompiledPopulation,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
    ) -> IncrementalAuditor {
        // The assembled model's attribute weights are exactly the house
        // weights (per-provider datums live in `pop`'s flat table instead).
        let sensitivity = SensitivityModel::from_attribute_weights(attribute_weights);
        let mut pref_index = Vec::with_capacity(pop.len());
        for i in 0..pop.len() {
            let mut entries: Vec<(u32, u32, PrivacyPoint)> = pop
                .pref_rows_of(i)
                .iter()
                .map(|r| (r.attr, r.purpose, r.point))
                .collect();
            // Stable sort + keep-first dedup reproduce `effective_point`'s
            // find-first semantics in a binary-searchable table. Rows for
            // attributes outside `attributes` are harmless dead weight:
            // group keys are filtered against `attributes`, so their ids
            // are never looked up.
            entries.sort_by_key(|e| (e.0, e.1));
            entries.dedup_by_key(|e| (e.0, e.1));
            pref_index.push(ProviderPrefIndex { entries });
        }
        IncrementalAuditor {
            scores: vec![0; pop.len()],
            violation_counts: vec![0; pop.len()],
            pop,
            attributes,
            sensitivity,
            policy: HousePolicy::new("empty"),
            groups: HashMap::new(),
            pref_index,
        }
    }

    /// Replace the policy, recomputing only the changed groups.
    pub fn apply_policy(&mut self, new_policy: HousePolicy) {
        self.apply_policy_inner(new_policy, NonZeroUsize::MIN);
    }

    /// [`IncrementalAuditor::apply_policy`], with each changed group's
    /// per-provider recomputation sharded across `threads` worker threads.
    /// Produces state identical to the sequential path for any thread
    /// count: providers are re-scored independently and merged in
    /// population order.
    pub fn apply_policy_parallel(&mut self, new_policy: HousePolicy, threads: NonZeroUsize) {
        self.apply_policy_inner(new_policy, threads);
    }

    fn apply_policy_inner(&mut self, new_policy: HousePolicy, threads: NonZeroUsize) {
        let old_groups = group_points(&self.policy, &self.attributes);
        let new_groups = group_points(&new_policy, &self.attributes);

        // Groups that disappeared or changed: retract their contribution.
        // Saturating, symmetric with accumulation below: once a score has
        // clamped at `u64::MAX` the exact pre-clamp sum is gone, so checked
        // subtraction could underflow; clamping at zero instead keeps the
        // auditor total-ordered and panic-free (callers needing exactness
        // near the clamp rebuild with `new`).
        for (key, old_points) in &old_groups {
            let unchanged = new_groups.get(key).is_some_and(|n| n == old_points);
            if unchanged {
                continue;
            }
            if let Some(contrib) = self.groups.remove(key) {
                for (i, (s, v)) in contrib
                    .scores
                    .iter()
                    .zip(contrib.violations.iter())
                    .enumerate()
                {
                    self.scores[i] = self.scores[i].saturating_sub(*s);
                    self.violation_counts[i] = self.violation_counts[i].saturating_sub(*v);
                }
            }
        }
        // Groups that appeared or changed: compute and add.
        for (key, points) in &new_groups {
            let unchanged = old_groups.get(key).is_some_and(|o| o == points);
            if unchanged {
                continue;
            }
            let contrib = self.compute_group(key, points, threads);
            for (i, (s, v)) in contrib
                .scores
                .iter()
                .zip(contrib.violations.iter())
                .enumerate()
            {
                self.scores[i] = self.scores[i].saturating_add(*s);
                self.violation_counts[i] = self.violation_counts[i].saturating_add(*v);
            }
            self.groups.insert(key.clone(), contrib);
        }
        self.policy = new_policy;
    }

    fn compute_group(
        &self,
        key: &GroupKey,
        points: &[qpv_taxonomy::PrivacyPoint],
        threads: NonZeroUsize,
    ) -> GroupContribution {
        let len = self.pop.len();
        if threads.get() > 1 && len >= crate::par::PAR_THRESHOLD {
            let chunk = crate::par::chunk_size(len, threads.get());
            let parts = crate::par::par_map_chunks(len, threads.get(), chunk, |start, end| {
                self.compute_group_range(key, points, start, end)
            })
            .expect("incremental group computation is panic-free");
            let mut merged = GroupContribution {
                scores: Vec::with_capacity(len),
                violations: Vec::with_capacity(len),
            };
            for part in parts {
                merged.scores.extend(part.scores);
                merged.violations.extend(part.violations);
            }
            merged
        } else {
            self.compute_group_range(key, points, 0, len)
        }
    }

    /// One group's contribution for providers in `[start, end)`, on the
    /// interned fast path: the `(attribute, purpose)` key and the `Σ^a`
    /// weight resolve once, then each provider costs one binary search
    /// plus one dense datum load. Each provider is independent, so cutting
    /// this range into chunks and concatenating in index order reproduces
    /// the sequential result exactly.
    fn compute_group_range(
        &self,
        key: &GroupKey,
        points: &[PrivacyPoint],
        start: usize,
        end: usize,
    ) -> GroupContribution {
        let (attribute, purpose) = key;
        let weight = self.sensitivity.attribute_weight(attribute, purpose.name());
        let (attrs, purposes) = self.pop.symbols();
        // An attribute or purpose no provider ever mentioned is absent from
        // the population's tables: every preference is then the implicit
        // deny-all `⟨0,0,0⟩` and every datum the neutral sensitivity.
        let attr = attrs.get(attribute);
        let ids = attr.zip(purposes.get(purpose.name()));
        let mut scores = vec![0u64; end - start];
        let mut violations = vec![0u32; end - start];
        for (i, idx) in (start..end).enumerate() {
            let pref = ids
                .and_then(|(a, p)| self.pref_index[idx].lookup(a, p))
                .unwrap_or(PrivacyPoint::ZERO);
            let datum = match attr {
                Some(a) => self.pop.datum(idx, a),
                None => DatumSensitivity::neutral(),
            };
            for point in points {
                scores[i] = scores[i].saturating_add(conf(&pref, point, weight, datum));
                if ViolationGeometry::compare(&pref, point).is_violation() {
                    violations[i] += 1;
                }
            }
        }
        GroupContribution { scores, violations }
    }

    /// The current policy.
    pub fn policy(&self) -> &HousePolicy {
        &self.policy
    }

    /// `Violation_i` for provider at population index `i`.
    pub fn score(&self, i: usize) -> u64 {
        self.scores[i]
    }

    /// `w_i` for provider at population index `i`.
    pub fn violated(&self, i: usize) -> bool {
        self.violation_counts[i] > 0
    }

    /// `default_i` for provider at population index `i`.
    pub fn defaulted(&self, i: usize) -> bool {
        defaults(self.scores[i], self.pop.threshold_of(i))
    }

    /// Equation 16's `Violations`.
    pub fn total_violations(&self) -> u128 {
        self.scores.iter().map(|&s| s as u128).sum()
    }

    /// `P(W)` under the current policy (counted directly, no allocation).
    pub fn p_violation(&self) -> f64 {
        crate::probability::census_fraction(
            self.violation_counts.iter().filter(|&&c| c > 0).count(),
            self.pop.len(),
        )
    }

    /// `P(Default)` under the current policy (counted directly, no
    /// allocation).
    pub fn p_default(&self) -> f64 {
        crate::probability::census_fraction(
            (0..self.pop.len()).filter(|&i| self.defaulted(i)).count(),
            self.pop.len(),
        )
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.pop.len()
    }
}

/// Group a policy's tuples by `(attribute, purpose)`, keeping only
/// attributes the data table stores; points within a group are sorted so
/// group equality is order-insensitive.
fn group_points(
    policy: &HousePolicy,
    attributes: &[String],
) -> HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> {
    let mut groups: HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> = HashMap::new();
    for t in policy.tuples() {
        if !attributes.contains(&t.attribute) {
            continue;
        }
        groups
            .entry((t.attribute.clone(), t.tuple.purpose.clone()))
            .or_default()
            .push(t.tuple.point);
    }
    for points in groups.values_mut() {
        points.sort();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use crate::sensitivity::DatumSensitivity;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 7) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 3) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("pr", pt(2, 3, 60 + (i % 5) as u32)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 4) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn weights() -> AttributeSensitivities {
        let mut w = AttributeSensitivities::new();
        w.set("weight", 4);
        w.set("age", 2);
        w
    }

    fn policy(level: u32) -> HousePolicy {
        HousePolicy::builder("h")
            .tuple(
                "weight",
                PrivacyTuple::from_point("pr", pt(level, level, 30 + level)),
            )
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 50 + level)))
            .build()
    }

    /// Reference audit results for cross-checking.
    fn full_audit(profiles: &[ProviderProfile], hp: &HousePolicy) -> (Vec<u64>, u128) {
        let engine = AuditEngine::new(hp.clone(), ["weight", "age"], weights());
        let report = engine.run(profiles);
        (
            report.providers.iter().map(|p| p.score).collect(),
            report.total_violations,
        )
    }

    #[test]
    fn initial_state_matches_full_audit() {
        let profiles = population(50);
        let hp = policy(3);
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, total) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s, "provider {i}");
        }
        assert_eq!(auditor.total_violations(), total);
    }

    #[test]
    fn incremental_updates_agree_with_full_recompute() {
        let profiles = population(50);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(0),
        );
        for level in [1, 4, 2, 7, 0, 9] {
            let hp = policy(level);
            auditor.apply_policy(hp.clone());
            let (scores, total) = full_audit(&profiles, &hp);
            for (i, s) in scores.iter().enumerate() {
                assert_eq!(auditor.score(i), *s, "level {level}, provider {i}");
            }
            assert_eq!(auditor.total_violations(), total, "level {level}");
            // Probabilities agree too.
            let engine = AuditEngine::new(hp, ["weight", "age"], weights());
            let report = engine.run(&profiles);
            assert_eq!(auditor.p_violation(), report.p_violation());
            assert_eq!(auditor.p_default(), report.p_default());
        }
    }

    #[test]
    fn touching_one_attribute_leaves_other_groups_cached() {
        let profiles = population(20);
        let mut auditor = IncrementalAuditor::new(
            profiles,
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(3),
        );
        let age_before = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group exists");
        // Widen only weight.
        let hp = auditor.policy().widened(Dim::Granularity, 2);
        // widened() touches every tuple; build a weight-only change instead.
        let mut weight_only = policy(3);
        weight_only = HousePolicy::builder(weight_only.name)
            .tuple("weight", PrivacyTuple::from_point("pr", pt(9, 9, 99)))
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 53)))
            .build();
        let _ = hp;
        auditor.apply_policy(weight_only);
        let age_after = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group still exists");
        assert_eq!(age_before, age_after, "unchanged group was recomputed");
    }

    #[test]
    fn new_purposes_and_removed_tuples_are_handled() {
        let profiles = population(10);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(2),
        );
        // Add an unconsented purpose: scores must rise (implicit deny-all).
        let before = auditor.total_violations();
        let with_ads = auditor.policy().with_new_purpose("ads", pt(3, 3, 365));
        auditor.apply_policy(with_ads.clone());
        assert!(auditor.total_violations() > before);
        let (scores, _) = full_audit(&profiles, &with_ads);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
        // Now shrink back to an empty policy: everything returns to zero.
        auditor.apply_policy(HousePolicy::new("h"));
        assert_eq!(auditor.total_violations(), 0);
        assert_eq!(auditor.p_violation(), 0.0);
    }

    /// Regression test for the retraction underflow: with datum
    /// sensitivities near `u32::MAX` two policy groups each contribute a
    /// saturated `u64::MAX`, so the seed's unchecked `+=` / `-=`
    /// accumulation panicked in debug builds (add overflow on the second
    /// group, sub underflow on retraction). Both directions now saturate
    /// symmetrically.
    #[test]
    fn saturated_scores_survive_policy_retraction() {
        let mut p = ProviderProfile::new(ProviderId(0), u64::MAX);
        p.preferences
            .add("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.preferences
            .add("b", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        for attr in ["a", "b"] {
            p.sensitivities.insert(
                attr.into(),
                DatumSensitivity::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX),
            );
        }
        let mut w = AttributeSensitivities::new();
        w.set("a", u32::MAX);
        w.set("b", u32::MAX);
        let both = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        // Accumulating two saturated groups must clamp, not overflow.
        let mut auditor = IncrementalAuditor::new(vec![p], vec!["a".into(), "b".into()], &w, both);
        assert_eq!(auditor.score(0), u64::MAX);
        assert!(auditor.violated(0));
        // Retracting one of them must clamp, not underflow.
        let only_a = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        auditor.apply_policy(only_a);
        assert!(auditor.violated(0), "group a still violates");
        // Shrinking to an empty policy fully clears the provider.
        auditor.apply_policy(HousePolicy::new("h"));
        assert_eq!(auditor.score(0), 0);
        assert_eq!(auditor.total_violations(), 0);
        assert!(!auditor.violated(0));
    }

    /// Regression for the saturation edge itself: near `u64::MAX` the
    /// auditor clamps rather than wraps — retraction undershoots the exact
    /// score instead of wrapping past it — and a fresh `new`-rebuild (or
    /// [`IncrementalAuditor::from_population`]) restores exactness.
    #[test]
    fn clamped_retraction_is_inexact_until_rebuilt() {
        // Group "a" saturates the provider's score on its own; group "b"
        // contributes a small, exactly-known amount.
        let mut p = ProviderProfile::new(ProviderId(0), u64::MAX);
        p.preferences
            .add("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.preferences
            .add("b", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        p.sensitivities.insert(
            "a".into(),
            DatumSensitivity::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX),
        );
        let mut w = AttributeSensitivities::new();
        w.set("a", u32::MAX);
        w.set("b", 2);
        let attrs = vec!["a".to_string(), "b".to_string()];
        let b_only = HousePolicy::builder("h")
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        // The exact score under the b-only policy, from the batch engine.
        let engine = AuditEngine::new(b_only.clone(), ["a", "b"], w.clone());
        let exact = engine.run(std::slice::from_ref(&p)).providers[0].score;
        assert!(exact > 0 && exact < u64::MAX);

        let both = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        let mut auditor = IncrementalAuditor::new(vec![p.clone()], attrs.clone(), &w, both);
        assert_eq!(auditor.score(0), u64::MAX, "group a clamps on its own");
        // Retracting "a" clamps at zero rather than wrapping: the pre-clamp
        // excess is unrecoverable, so the score undershoots the exact value
        // instead of wrapping past it or panicking.
        auditor.apply_policy(b_only.clone());
        assert!(auditor.score(0) <= exact, "clamped, never wrapped");
        assert_ne!(auditor.score(0), exact, "exactness is lost at the clamp");
        assert!(auditor.violated(0), "the b violation is still counted");
        // Fresh rebuilds restore exactness — via profiles and via an
        // already-compiled population.
        let rebuilt = IncrementalAuditor::new(vec![p.clone()], attrs.clone(), &w, b_only.clone());
        assert_eq!(rebuilt.score(0), exact);
        let from_pop = IncrementalAuditor::from_population(
            CompiledPopulation::from_profiles(std::slice::from_ref(&p)),
            attrs,
            &w,
            b_only,
        );
        assert_eq!(from_pop.score(0), exact);
        assert!(from_pop.violated(0));
    }

    #[test]
    fn parallel_apply_policy_matches_sequential_for_all_thread_counts() {
        let profiles = population(700); // above PAR_THRESHOLD
        let levels = [3u32, 1, 6, 0, 9];
        let mut sequential = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(2),
        );
        for threads in [1usize, 2, 4, 8] {
            let nz = std::num::NonZeroUsize::new(threads).unwrap();
            let mut parallel = IncrementalAuditor::new_parallel(
                profiles.clone(),
                vec!["weight".into(), "age".into()],
                &weights(),
                policy(2),
                nz,
            );
            for level in levels {
                sequential.apply_policy(policy(level));
                parallel.apply_policy_parallel(policy(level), nz);
                for i in 0..parallel.population() {
                    assert_eq!(
                        parallel.score(i),
                        sequential.score(i),
                        "threads {threads}, level {level}, provider {i}"
                    );
                    assert_eq!(parallel.violated(i), sequential.violated(i));
                    assert_eq!(parallel.defaulted(i), sequential.defaulted(i));
                }
                assert_eq!(parallel.total_violations(), sequential.total_violations());
                assert_eq!(parallel.p_violation(), sequential.p_violation());
                assert_eq!(parallel.p_default(), sequential.p_default());
            }
            // Reset the sequential reference for the next thread count.
            sequential = IncrementalAuditor::new(
                profiles.clone(),
                vec!["weight".into(), "age".into()],
                &weights(),
                policy(2),
            );
        }
    }

    #[test]
    fn policy_attributes_not_in_table_are_ignored() {
        let profiles = population(5);
        let mut hp = policy(2);
        hp.add("ghost_attr", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, _) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
    }
}
