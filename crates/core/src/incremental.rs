//! Incremental violation maintenance under policy changes.
//!
//! `Violation_i` (Eq. 15) is a sum of independent per-policy-tuple
//! contributions, so when the house edits its policy only the contributions
//! of *changed* `(attribute, purpose)` groups need recomputing. For a policy
//! edit touching `k` of `m` groups over `n` providers, the incremental
//! update costs `O(n·k)` versus `O(n·m)` for a full re-audit — the ablation
//! benchmark A1 measures the crossover.
//!
//! The auditor also maintains per-provider *violation counts* (how many
//! policy tuples currently violate), so Definition 1's `w_i` and
//! Definition 4's `default_i` stay queryable without a rescan.

use std::collections::HashMap;

use qpv_policy::HousePolicy;
use qpv_taxonomy::{Purpose, ViolationGeometry};

use crate::default_model::DefaultThresholds;
use crate::profile::ProviderProfile;
use crate::sensitivity::{AttributeSensitivities, SensitivityModel};
use crate::severity::tuple_contribution;

/// A policy "group": every tuple for one `(attribute, purpose)` pair.
type GroupKey = (String, Purpose);

/// Per-provider contribution of one group.
#[derive(Debug, Clone, Default, PartialEq)]
struct GroupContribution {
    /// Severity contribution per provider (indexed like `profiles`).
    scores: Vec<u64>,
    /// How many of the group's tuples violate, per provider.
    violations: Vec<u32>,
}

/// Maintains per-provider violation state across policy updates.
#[derive(Debug)]
pub struct IncrementalAuditor {
    profiles: Vec<ProviderProfile>,
    attributes: Vec<String>,
    sensitivity: SensitivityModel,
    thresholds: DefaultThresholds,
    policy: HousePolicy,
    groups: HashMap<GroupKey, GroupContribution>,
    scores: Vec<u64>,
    violation_counts: Vec<u32>,
}

impl IncrementalAuditor {
    /// Build the initial state with a full pass (cost identical to one full
    /// audit).
    pub fn new(
        profiles: Vec<ProviderProfile>,
        attributes: Vec<String>,
        attribute_weights: &AttributeSensitivities,
        policy: HousePolicy,
    ) -> IncrementalAuditor {
        let (sensitivity, thresholds) = crate::profile::assemble(&profiles, attribute_weights);
        let mut auditor = IncrementalAuditor {
            scores: vec![0; profiles.len()],
            violation_counts: vec![0; profiles.len()],
            profiles,
            attributes,
            sensitivity,
            thresholds,
            policy: HousePolicy::new(policy.name.clone()),
            groups: HashMap::new(),
        };
        auditor.apply_policy(policy);
        auditor
    }

    /// Replace the policy, recomputing only the changed groups.
    pub fn apply_policy(&mut self, new_policy: HousePolicy) {
        let old_groups = group_points(&self.policy, &self.attributes);
        let new_groups = group_points(&new_policy, &self.attributes);

        // Groups that disappeared or changed: retract their contribution.
        for (key, old_points) in &old_groups {
            let unchanged = new_groups.get(key).is_some_and(|n| n == old_points);
            if unchanged {
                continue;
            }
            if let Some(contrib) = self.groups.remove(key) {
                for (i, (s, v)) in contrib
                    .scores
                    .iter()
                    .zip(contrib.violations.iter())
                    .enumerate()
                {
                    self.scores[i] -= s;
                    self.violation_counts[i] -= v;
                }
            }
        }
        // Groups that appeared or changed: compute and add.
        for (key, points) in &new_groups {
            let unchanged = old_groups.get(key).is_some_and(|o| o == points);
            if unchanged {
                continue;
            }
            let contrib = self.compute_group(key, points);
            for (i, (s, v)) in contrib
                .scores
                .iter()
                .zip(contrib.violations.iter())
                .enumerate()
            {
                self.scores[i] += s;
                self.violation_counts[i] += v;
            }
            self.groups.insert(key.clone(), contrib);
        }
        self.policy = new_policy;
    }

    fn compute_group(
        &self,
        key: &GroupKey,
        points: &[qpv_taxonomy::PrivacyPoint],
    ) -> GroupContribution {
        let (attribute, purpose) = key;
        let mut scores = vec![0u64; self.profiles.len()];
        let mut violations = vec![0u32; self.profiles.len()];
        for (i, profile) in self.profiles.iter().enumerate() {
            for point in points {
                scores[i] = scores[i].saturating_add(tuple_contribution(
                    &profile.preferences,
                    attribute,
                    purpose,
                    point,
                    &self.sensitivity,
                ));
                let pref = profile.preferences.effective_point(attribute, purpose);
                if ViolationGeometry::compare(&pref, point).is_violation() {
                    violations[i] += 1;
                }
            }
        }
        GroupContribution { scores, violations }
    }

    /// The current policy.
    pub fn policy(&self) -> &HousePolicy {
        &self.policy
    }

    /// `Violation_i` for provider at population index `i`.
    pub fn score(&self, i: usize) -> u64 {
        self.scores[i]
    }

    /// `w_i` for provider at population index `i`.
    pub fn violated(&self, i: usize) -> bool {
        self.violation_counts[i] > 0
    }

    /// `default_i` for provider at population index `i`.
    pub fn defaulted(&self, i: usize) -> bool {
        self.thresholds
            .is_default(self.profiles[i].id(), self.scores[i])
    }

    /// Equation 16's `Violations`.
    pub fn total_violations(&self) -> u128 {
        self.scores.iter().map(|&s| s as u128).sum()
    }

    /// `P(W)` under the current policy.
    pub fn p_violation(&self) -> f64 {
        let outcomes: Vec<bool> = (0..self.profiles.len()).map(|i| self.violated(i)).collect();
        crate::probability::census_probability(&outcomes)
    }

    /// `P(Default)` under the current policy.
    pub fn p_default(&self) -> f64 {
        let outcomes: Vec<bool> = (0..self.profiles.len()).map(|i| self.defaulted(i)).collect();
        crate::probability::census_probability(&outcomes)
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.profiles.len()
    }
}

/// Group a policy's tuples by `(attribute, purpose)`, keeping only
/// attributes the data table stores; points within a group are sorted so
/// group equality is order-insensitive.
fn group_points(
    policy: &HousePolicy,
    attributes: &[String],
) -> HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> {
    let mut groups: HashMap<GroupKey, Vec<qpv_taxonomy::PrivacyPoint>> = HashMap::new();
    for t in policy.tuples() {
        if !attributes.contains(&t.attribute) {
            continue;
        }
        groups
            .entry((t.attribute.clone(), t.tuple.purpose.clone()))
            .or_default()
            .push(t.tuple.point);
    }
    for points in groups.values_mut() {
        points.sort();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use crate::sensitivity::DatumSensitivity;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 7) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 3) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("pr", pt(2, 3, 60 + (i % 5) as u32)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 4) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn weights() -> AttributeSensitivities {
        let mut w = AttributeSensitivities::new();
        w.set("weight", 4);
        w.set("age", 2);
        w
    }

    fn policy(level: u32) -> HousePolicy {
        HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(level, level, 30 + level)))
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 50 + level)))
            .build()
    }

    /// Reference audit results for cross-checking.
    fn full_audit(profiles: &[ProviderProfile], hp: &HousePolicy) -> (Vec<u64>, u128) {
        let engine = AuditEngine::new(hp.clone(), ["weight", "age"], weights());
        let report = engine.run(profiles);
        (
            report.providers.iter().map(|p| p.score).collect(),
            report.total_violations,
        )
    }

    #[test]
    fn initial_state_matches_full_audit() {
        let profiles = population(50);
        let hp = policy(3);
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, total) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s, "provider {i}");
        }
        assert_eq!(auditor.total_violations(), total);
    }

    #[test]
    fn incremental_updates_agree_with_full_recompute() {
        let profiles = population(50);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(0),
        );
        for level in [1, 4, 2, 7, 0, 9] {
            let hp = policy(level);
            auditor.apply_policy(hp.clone());
            let (scores, total) = full_audit(&profiles, &hp);
            for (i, s) in scores.iter().enumerate() {
                assert_eq!(auditor.score(i), *s, "level {level}, provider {i}");
            }
            assert_eq!(auditor.total_violations(), total, "level {level}");
            // Probabilities agree too.
            let engine = AuditEngine::new(hp, ["weight", "age"], weights());
            let report = engine.run(&profiles);
            assert_eq!(auditor.p_violation(), report.p_violation());
            assert_eq!(auditor.p_default(), report.p_default());
        }
    }

    #[test]
    fn touching_one_attribute_leaves_other_groups_cached() {
        let profiles = population(20);
        let mut auditor = IncrementalAuditor::new(
            profiles,
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(3),
        );
        let age_before = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group exists");
        // Widen only weight.
        let hp = auditor.policy().widened(Dim::Granularity, 2);
        // widened() touches every tuple; build a weight-only change instead.
        let mut weight_only = policy(3);
        weight_only = HousePolicy::builder(weight_only.name)
            .tuple("weight", PrivacyTuple::from_point("pr", pt(9, 9, 99)))
            .tuple("age", PrivacyTuple::from_point("pr", pt(2, 2, 53)))
            .build();
        let _ = hp;
        auditor.apply_policy(weight_only);
        let age_after = auditor
            .groups
            .get(&("age".to_string(), Purpose::new("pr")))
            .cloned()
            .expect("age group still exists");
        assert_eq!(age_before, age_after, "unchanged group was recomputed");
    }

    #[test]
    fn new_purposes_and_removed_tuples_are_handled() {
        let profiles = population(10);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(2),
        );
        // Add an unconsented purpose: scores must rise (implicit deny-all).
        let before = auditor.total_violations();
        let with_ads = auditor
            .policy()
            .with_new_purpose("ads", pt(3, 3, 365));
        auditor.apply_policy(with_ads.clone());
        assert!(auditor.total_violations() > before);
        let (scores, _) = full_audit(&profiles, &with_ads);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
        // Now shrink back to an empty policy: everything returns to zero.
        auditor.apply_policy(HousePolicy::new("h"));
        assert_eq!(auditor.total_violations(), 0);
        assert_eq!(auditor.p_violation(), 0.0);
    }

    #[test]
    fn policy_attributes_not_in_table_are_ignored() {
        let profiles = population(5);
        let mut hp = policy(2);
        hp.add("ghost_attr", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        let auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            hp.clone(),
        );
        let (scores, _) = full_audit(&profiles, &hp);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(auditor.score(i), *s);
        }
    }
}
