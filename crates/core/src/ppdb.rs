//! The privacy-preserving database (α-PPDB prototype, paper §10).
//!
//! A [`Ppdb`] binds a `qpv-reldb` database to the violation model: provider
//! data lives in an ordinary relational table, and the model's metadata —
//! house policy, stated preferences, sensitivities, thresholds — lives in
//! companion tables *in the same database*, so the whole privacy posture is
//! stored, recovered, and queryable exactly like the data it governs. This
//! is what makes violations auditable: the audit engine reads both sides
//! from storage rather than trusting in-memory state.
//!
//! ## Companion tables
//!
//! | table | contents |
//! |---|---|
//! | `_qpv_policy` | one row per house-policy tuple |
//! | `_qpv_prefs` | one row per stated preference tuple |
//! | `_qpv_sens` | one row per (provider, attribute) sensitivity tuple |
//! | `_qpv_attr_sens` | one row per attribute weight `Σ^a` |
//! | `_qpv_thresholds` | one row per provider threshold `v_i` |

use std::collections::HashMap;

use qpv_policy::{HousePolicy, ProviderId, ProviderPreferences};
use qpv_reldb::db::Database;
use qpv_reldb::error::{DbError, DbResult};
use qpv_reldb::row::Row;
use qpv_reldb::schema::{Schema, SchemaBuilder};
use qpv_reldb::types::DataType;
use qpv_reldb::value::Value;
use qpv_taxonomy::{Level, PrivacyPoint, PrivacyTuple};

use qpv_reldb::fault::RetryPolicy;

use crate::audit::{AuditEngine, AuditReport};
use crate::par::AuditError;
use crate::pop::{CompiledPopulation, DeltaOp, PopulationBuilder, PopulationDelta};
use crate::profile::ProviderProfile;
use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};

/// How the data table maps to the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpdbConfig {
    /// The table holding provider data (one row per provider,
    /// Assumption 5).
    pub data_table: String,
    /// The INT column identifying the provider in that table.
    pub provider_column: String,
    /// Maximum pending (un-acked) delta ops before model-changing writes
    /// are refused with [`DbError::Backpressure`]. Bounds the memory a
    /// stalled delta consumer can pin and keeps replay-on-recovery time
    /// proportional to the cap rather than to the outage length.
    /// Unbounded by default ([`DEFAULT_DELTA_CAPACITY`]) so batch loads
    /// that never consume deltas keep working; deployments with a live
    /// consumer opt in via [`PpdbConfig::with_delta_capacity`].
    pub delta_capacity: usize,
}

/// Default [`PpdbConfig::delta_capacity`]: effectively unbounded, the
/// pre-backpressure behaviour. Callers with a delta consumer should set
/// a real cap (a few times the consumer's batch size) so a wedged
/// consumer surfaces as typed [`DbError::Backpressure`] instead of
/// unbounded memory growth.
pub const DEFAULT_DELTA_CAPACITY: usize = usize::MAX;

impl PpdbConfig {
    /// Convenience constructor.
    pub fn new(data_table: impl Into<String>, provider_column: impl Into<String>) -> PpdbConfig {
        PpdbConfig {
            data_table: data_table.into(),
            provider_column: provider_column.into(),
            delta_capacity: DEFAULT_DELTA_CAPACITY,
        }
    }

    /// Override the pending-delta backlog cap.
    pub fn with_delta_capacity(mut self, capacity: usize) -> PpdbConfig {
        self.delta_capacity = capacity;
        self
    }
}

/// A relational database with the privacy-violation model stored alongside
/// the data it protects.
///
/// Every write op that changes the audited population
/// ([`Ppdb::register_provider`] / [`Ppdb::insert_provider`],
/// [`Ppdb::remove_provider`], [`Ppdb::set_preferences`],
/// [`Ppdb::set_sensitivity`], [`Ppdb::set_threshold`]) also appends the
/// equivalent [`DeltaOp`] to a pending, sequence-tagged [`DeltaQueue`] —
/// *after* the storage transaction commits, so the delta never gets ahead
/// of durable state. Consumers follow a peek/ack protocol:
/// [`Ppdb::peek_delta`] exposes the pending ops without consuming them;
/// once they are safely applied (to an [`crate::IncrementalAuditor`], a
/// [`crate::deltalog::DeltaLog`], …) the consumer calls
/// [`Ppdb::ack_delta`] with the count it handled. A failed apply simply
/// never acks, so the ops stay pending and replayable — the older
/// drain-then-apply `take_delta()` lost them on any apply error.
///
/// Two robustness properties layer on top of that protocol:
///
/// * **Bounded backlog.** The queue holds at most
///   [`PpdbConfig::delta_capacity`] un-acked ops. A model-changing write
///   that would exceed the cap is refused with
///   [`DbError::Backpressure`] *before* its storage transaction begins,
///   so a full backlog never leaves durable state the delta stream
///   cannot describe. The caller sheds load (or waits for the consumer)
///   and retries; nothing is silently dropped.
/// * **Exactly-once consumption.** Every op carries a monotone sequence
///   number assigned at push time. A consumer that crashes *between*
///   applying and acking re-peeks the same ops under the same seqs
///   ([`Ppdb::peek_delta_seq`]) and skips the prefix it already applied,
///   then acks with [`Ppdb::ack_delta_through`] — no op is lost (un-acked
///   ops stay queued) and none is applied twice (seqs never repeat).
///
/// The queue itself is a cheaply clonable handle ([`Ppdb::delta_queue`])
/// so a consumer thread can peek/ack concurrently with the writer; see
/// [`DeltaQueue`].
pub struct Ppdb {
    db: Database,
    config: PpdbConfig,
    deltas: DeltaQueue,
}

const T_POLICY: &str = "_qpv_policy";
const T_PREFS: &str = "_qpv_prefs";
const T_SENS: &str = "_qpv_sens";
const T_ATTR_SENS: &str = "_qpv_attr_sens";
const T_THRESHOLDS: &str = "_qpv_thresholds";
const T_AUDIT_LOG: &str = "_qpv_audit_log";

/// One recorded audit in the PPDB's history (§10's "continuously monitor
/// the state of their privacy").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuditLogEntry {
    /// Monotone sequence number.
    pub seq: i64,
    /// Caller-supplied label (e.g. a policy version).
    pub label: String,
    /// Population size at audit time.
    pub population: i64,
    /// Providers with `w_i = 1`.
    pub violated: i64,
    /// Providers with `default_i = 1`.
    pub defaulted: i64,
    /// Equation 16's `Violations` (saturated to `i64::MAX` for storage).
    pub total_violations: i64,
    /// `P(W)`.
    pub p_violation: f64,
    /// `P(Default)`.
    pub p_default: f64,
}

/// A bounded, sequence-tagged queue of pending [`DeltaOp`]s shared
/// between the [`Ppdb`] writer and its delta consumers.
///
/// The handle is a cheap clone over shared state, so a consumer thread
/// can hold one and peek/ack while the writer keeps pushing — neither
/// side blocks on the other beyond a short internal mutex. Sequence
/// numbers are assigned at push time, start at 0 for the first op pushed
/// after open, and never repeat; acking is expressed *in seqs*
/// ([`DeltaQueue::ack_through`]) so it is idempotent: a consumer that
/// crashed after applying ops `[a, b)` but before acking simply acks
/// through `b` again after recovery and re-applies nothing.
///
/// The queue is in-memory: on process restart it is rebuilt empty and
/// seqs restart at 0, which is sound because consumers that need
/// durability (the [`crate::deltalog::DeltaLog`]) persist acked state
/// themselves, and un-acked in-memory ops are re-derivable from the
/// store (the storage transaction committed first).
#[derive(Clone)]
pub struct DeltaQueue {
    inner: std::sync::Arc<std::sync::Mutex<DeltaQueueInner>>,
}

struct DeltaQueueInner {
    /// Pending ops; `ops.ops()[0]` carries seq `first_seq`.
    ops: PopulationDelta,
    /// Seq of the oldest pending op (== next seq to assign when empty).
    first_seq: u64,
    /// Refuse pushes at or above this many pending ops.
    capacity: usize,
}

impl DeltaQueue {
    fn new(capacity: usize) -> DeltaQueue {
        DeltaQueue {
            inner: std::sync::Arc::new(std::sync::Mutex::new(DeltaQueueInner {
                ops: PopulationDelta::new(),
                first_seq: 0,
                capacity,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DeltaQueueInner> {
        // A panic while holding this mutex means a poisoned queue; the
        // guarded state is a plain Vec + counters that are never left
        // mid-update, so recovering the guard is safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pending (un-acked) ops.
    pub fn len(&self) -> usize {
        self.lock().ops.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.lock().ops.is_empty()
    }

    /// The backlog cap pushes are refused at.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Seq of the oldest pending op (the next seq to assign if empty).
    pub fn first_seq(&self) -> u64 {
        self.lock().first_seq
    }

    /// Seq the *next* pushed op will receive; `next_seq() - first_seq()`
    /// equals [`DeltaQueue::len`].
    pub fn next_seq(&self) -> u64 {
        let inner = self.lock();
        inner.first_seq + inner.ops.len() as u64
    }

    /// Snapshot the pending ops: `(first_seq, ops)` where `ops.ops()[i]`
    /// carries seq `first_seq + i`. The snapshot is a clone — later
    /// pushes/acks don't mutate it, and applying it never blocks the
    /// writer.
    pub fn peek(&self) -> (u64, PopulationDelta) {
        let inner = self.lock();
        (inner.first_seq, inner.ops.clone())
    }

    /// Acknowledge every pending op with seq `< end_seq`. Clamped at both
    /// ends (acking an already-acked or not-yet-pushed seq is a no-op /
    /// full drain), so recovery code can always re-ack its high-water
    /// mark without tracking what the crash interrupted.
    pub fn ack_through(&self, end_seq: u64) {
        let mut inner = self.lock();
        let n = end_seq
            .saturating_sub(inner.first_seq)
            .min(inner.ops.len() as u64) as usize;
        inner.ops.drain_front(n);
        inner.first_seq += n as u64;
    }

    /// Acknowledge the first `n` pending ops (clamped to the pending
    /// length). Prefer [`DeltaQueue::ack_through`] from concurrent
    /// consumers — a count is relative to whatever the front was at call
    /// time, a seq is absolute.
    pub fn ack(&self, n: usize) {
        let mut inner = self.lock();
        let n = n.min(inner.ops.len());
        inner.ops.drain_front(n);
        inner.first_seq += n as u64;
    }

    /// Refuse with [`DbError::Backpressure`] if the queue is at capacity.
    /// The writer calls this *before* starting the storage transaction so
    /// a full backlog never commits state the delta stream can't record.
    fn admit(&self) -> DbResult<()> {
        let inner = self.lock();
        if inner.ops.len() >= inner.capacity {
            return Err(DbError::Backpressure {
                pending: inner.ops.len(),
                capacity: inner.capacity,
            });
        }
        Ok(())
    }

    /// Append an op, assigning it the next seq. Only the `Ppdb` writer
    /// pushes, and only after [`DeltaQueue::admit`] passed and the
    /// storage txn committed.
    fn push(&self, op: DeltaOp) {
        self.lock().ops.push(op);
    }
}

impl Ppdb {
    /// Create the data table (from `data_schema`) and all companion tables
    /// in `db`. The schema must contain the configured provider column with
    /// type `INT`.
    pub fn create(mut db: Database, config: PpdbConfig, data_schema: Schema) -> DbResult<Ppdb> {
        // The privacy layer's write path absorbs transient storage faults
        // with a bounded retry rather than surfacing every blip.
        db.set_retry_policy(RetryPolicy::standard());
        let pc = data_schema.require(&config.provider_column)?;
        let col = data_schema.column(pc).expect("require returned index");
        if col.dtype != DataType::Int {
            return Err(DbError::Schema(format!(
                "provider column {:?} must be INT, is {}",
                config.provider_column, col.dtype
            )));
        }
        db.create_table(&config.data_table, data_schema)?;
        db.create_table(
            T_POLICY,
            SchemaBuilder::new()
                .column("attribute", DataType::Text)
                .column("purpose", DataType::Text)
                .column("vis", DataType::Int)
                .column("gran", DataType::Int)
                .column("ret", DataType::Int)
                .build()?,
        )?;
        db.create_table(
            T_PREFS,
            SchemaBuilder::new()
                .column("provider", DataType::Int)
                .column("attribute", DataType::Text)
                .column("purpose", DataType::Text)
                .column("vis", DataType::Int)
                .column("gran", DataType::Int)
                .column("ret", DataType::Int)
                .build()?,
        )?;
        db.create_index("_qpv_prefs_provider", T_PREFS, "provider")?;
        db.create_table(
            T_SENS,
            SchemaBuilder::new()
                .column("provider", DataType::Int)
                .column("attribute", DataType::Text)
                .column("value_s", DataType::Int)
                .column("vis_s", DataType::Int)
                .column("gran_s", DataType::Int)
                .column("ret_s", DataType::Int)
                .build()?,
        )?;
        db.create_index("_qpv_sens_provider", T_SENS, "provider")?;
        db.create_table(
            T_ATTR_SENS,
            SchemaBuilder::new()
                .column("attribute", DataType::Text)
                .column("weight", DataType::Int)
                .build()?,
        )?;
        db.create_table(
            T_THRESHOLDS,
            SchemaBuilder::new()
                .column("provider", DataType::Int)
                .column("threshold", DataType::Int)
                .build()?,
        )?;
        db.create_table(
            T_AUDIT_LOG,
            SchemaBuilder::new()
                .column("seq", DataType::Int)
                .column("label", DataType::Text)
                .column("population", DataType::Int)
                .column("violated", DataType::Int)
                .column("defaulted", DataType::Int)
                .column("total_violations", DataType::Int)
                .column("p_w", DataType::Float)
                .column("p_def", DataType::Float)
                .build()?,
        )?;
        let deltas = DeltaQueue::new(config.delta_capacity);
        Ok(Ppdb { db, config, deltas })
    }

    /// Attach to a database where [`Ppdb::create`] already ran (e.g. after
    /// reopening a durable database).
    pub fn open(mut db: Database, config: PpdbConfig) -> DbResult<Ppdb> {
        db.set_retry_policy(RetryPolicy::standard());
        for t in [
            config.data_table.as_str(),
            T_POLICY,
            T_PREFS,
            T_SENS,
            T_ATTR_SENS,
            T_THRESHOLDS,
            T_AUDIT_LOG,
        ] {
            if db.catalog().table(t).is_none() {
                return Err(DbError::Catalog(format!("not a PPDB: missing table {t:?}")));
            }
        }
        let deltas = DeltaQueue::new(config.delta_capacity);
        Ok(Ppdb { db, config, deltas })
    }

    /// The underlying database (e.g. for ad-hoc SQL over the data or the
    /// privacy metadata).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The configuration.
    pub fn config(&self) -> &PpdbConfig {
        &self.config
    }

    /// The data attributes the model audits: every column of the data table
    /// except the provider id column.
    pub fn attributes(&self) -> DbResult<Vec<String>> {
        let schema = self.db.schema(&self.config.data_table)?;
        Ok(schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .filter(|n| *n != self.config.provider_column)
            .collect())
    }

    /// Replace the stored house policy.
    pub fn set_policy(&mut self, policy: &HousePolicy) -> DbResult<()> {
        self.db
            .execute(&format!("DELETE FROM {T_POLICY}"))
            .map(|_| ())?;
        for t in policy.tuples() {
            self.db.insert(
                T_POLICY,
                Row::from_values([
                    Value::Text(t.attribute.clone()),
                    Value::Text(t.tuple.purpose.name().to_string()),
                    Value::Int(t.tuple.point.visibility.raw() as i64),
                    Value::Int(t.tuple.point.granularity.raw() as i64),
                    Value::Int(t.tuple.point.retention.raw() as i64),
                ]),
            )?;
        }
        Ok(())
    }

    /// Read the stored house policy back.
    pub fn house_policy(&mut self) -> DbResult<HousePolicy> {
        let rows = self.db.scan(T_POLICY)?;
        let mut policy = HousePolicy::new(&*self.config.data_table);
        for (_, row) in rows {
            let (attr, tuple) = decode_tuple_row(&row, 0)?;
            policy.add(attr, tuple);
        }
        Ok(policy)
    }

    /// Set the social weight `Σ^a` of an attribute.
    pub fn set_attribute_weight(&mut self, attribute: &str, weight: u32) -> DbResult<()> {
        self.db.execute(&format!(
            "DELETE FROM {T_ATTR_SENS} WHERE attribute = '{attribute}'"
        ))?;
        self.db.insert(
            T_ATTR_SENS,
            Row::from_values([
                Value::Text(attribute.to_string()),
                Value::Int(weight as i64),
            ]),
        )?;
        Ok(())
    }

    /// Read all attribute weights.
    pub fn attribute_weights(&mut self) -> DbResult<AttributeSensitivities> {
        let mut weights = AttributeSensitivities::new();
        for (_, row) in self.db.scan(T_ATTR_SENS)? {
            let attr = text(&row, 0)?;
            let w = int(&row, 1)? as u32;
            weights.set(attr, w);
        }
        Ok(weights)
    }

    /// Register a provider: store their data row, stated preferences,
    /// sensitivities, and threshold, atomically.
    pub fn register_provider(&mut self, profile: &ProviderProfile, data: Row) -> DbResult<()> {
        let id = profile.id().0 as i64;
        // Validate the data row carries the right provider id.
        let schema = self.db.schema(&self.config.data_table)?;
        let pc = schema.require(&self.config.provider_column)?;
        match data.get(pc) {
            Some(Value::Int(v)) if *v == id => {}
            other => {
                return Err(DbError::Schema(format!(
                    "data row provider column is {other:?}, expected {id}"
                )));
            }
        }
        // Refuse before the storage txn begins: a full backlog must never
        // commit state the delta stream cannot record.
        self.deltas.admit()?;
        self.db.begin()?;
        let result = (|| -> DbResult<()> {
            self.db.insert(&self.config.data_table, data)?;
            for t in profile.preferences.tuples() {
                self.db.insert(
                    T_PREFS,
                    Row::from_values([
                        Value::Int(id),
                        Value::Text(t.attribute.clone()),
                        Value::Text(t.tuple.purpose.name().to_string()),
                        Value::Int(t.tuple.point.visibility.raw() as i64),
                        Value::Int(t.tuple.point.granularity.raw() as i64),
                        Value::Int(t.tuple.point.retention.raw() as i64),
                    ]),
                )?;
            }
            for (attr, s) in &profile.sensitivities {
                self.db.insert(
                    T_SENS,
                    Row::from_values([
                        Value::Int(id),
                        Value::Text(attr.clone()),
                        Value::Int(s.value as i64),
                        Value::Int(s.visibility as i64),
                        Value::Int(s.granularity as i64),
                        Value::Int(s.retention as i64),
                    ]),
                )?;
            }
            self.db.insert(
                T_THRESHOLDS,
                Row::from_values([Value::Int(id), Value::Int(profile.threshold as i64)]),
            )?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit()?;
                self.deltas.push(DeltaOp::Upsert(profile.clone()));
                Ok(())
            }
            Err(e) => {
                self.db.rollback()?;
                Err(e)
            }
        }
    }

    /// [`Ppdb::register_provider`] under the name the delta pipeline uses:
    /// insert a provider and emit the corresponding upsert delta.
    pub fn insert_provider(&mut self, profile: &ProviderProfile, data: Row) -> DbResult<()> {
        self.register_provider(profile, data)
    }

    /// Remove a provider entirely (their data and all model metadata) —
    /// what physically happens when a provider defaults.
    pub fn remove_provider(&mut self, id: ProviderId) -> DbResult<()> {
        let n = id.0 as i64;
        // Refuse before the storage txn begins: a full backlog must never
        // commit state the delta stream cannot record.
        self.deltas.admit()?;
        self.db.begin()?;
        let result = (|| -> DbResult<()> {
            self.db.execute(&format!(
                "DELETE FROM {} WHERE {} = {n}",
                self.config.data_table, self.config.provider_column
            ))?;
            for t in [T_PREFS, T_SENS, T_THRESHOLDS] {
                self.db
                    .execute(&format!("DELETE FROM {t} WHERE provider = {n}"))?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit()?;
                self.deltas.push(DeltaOp::Remove(id));
                Ok(())
            }
            Err(e) => {
                self.db.rollback()?;
                Err(e)
            }
        }
    }

    /// Replace a provider's stated preferences for one attribute.
    ///
    /// Mirrors [`crate::DeltaOp::SetAttributePrefs`]: the provider's tuples
    /// for other attributes keep their stored order, and the new tuples for
    /// `attribute` come after them. Unknown providers are a silent no-op,
    /// matching the delta semantics.
    pub fn set_preferences(
        &mut self,
        id: ProviderId,
        attribute: &str,
        tuples: Vec<PrivacyTuple>,
    ) -> DbResult<()> {
        let n = id.0 as i64;
        if !self.provider_ids()?.contains(&id) {
            return Ok(());
        }
        // The SQL layer only takes single-predicate DELETEs, so rewrite the
        // provider's whole preference set: keep rows for other attributes
        // (in scan order), then append the replacements.
        let mut keep: Vec<(String, PrivacyTuple)> = Vec::new();
        for (_, row) in self.db.scan(T_PREFS)? {
            if int(&row, 0)? == n {
                let (attr, tuple) = decode_tuple_row(&row, 1)?;
                if attr != attribute {
                    keep.push((attr, tuple));
                }
            }
        }
        // Refuse before the storage txn begins: a full backlog must never
        // commit state the delta stream cannot record.
        self.deltas.admit()?;
        self.db.begin()?;
        let result = (|| -> DbResult<()> {
            self.db
                .execute(&format!("DELETE FROM {T_PREFS} WHERE provider = {n}"))?;
            for (attr, tuple) in keep
                .iter()
                .map(|(a, t)| (a.as_str(), t))
                .chain(tuples.iter().map(|t| (attribute, t)))
            {
                self.db.insert(
                    T_PREFS,
                    Row::from_values([
                        Value::Int(n),
                        Value::Text(attr.to_string()),
                        Value::Text(tuple.purpose.name().to_string()),
                        Value::Int(tuple.point.visibility.raw() as i64),
                        Value::Int(tuple.point.granularity.raw() as i64),
                        Value::Int(tuple.point.retention.raw() as i64),
                    ]),
                )?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit()?;
                self.deltas.push(DeltaOp::SetAttributePrefs {
                    id,
                    attribute: attribute.to_string(),
                    tuples,
                });
                Ok(())
            }
            Err(e) => {
                self.db.rollback()?;
                Err(e)
            }
        }
    }

    /// Set a provider's datum sensitivity for one attribute.
    ///
    /// Unknown providers are a silent no-op, matching
    /// [`crate::DeltaOp::SetSensitivity`].
    pub fn set_sensitivity(
        &mut self,
        id: ProviderId,
        attribute: &str,
        sensitivity: DatumSensitivity,
    ) -> DbResult<()> {
        let n = id.0 as i64;
        if !self.provider_ids()?.contains(&id) {
            return Ok(());
        }
        let mut keep: Vec<(String, DatumSensitivity)> = Vec::new();
        for (_, row) in self.db.scan(T_SENS)? {
            if int(&row, 0)? == n {
                let attr = text(&row, 1)?;
                if attr != attribute {
                    keep.push((
                        attr,
                        DatumSensitivity::new(
                            int(&row, 2)? as u32,
                            int(&row, 3)? as u32,
                            int(&row, 4)? as u32,
                            int(&row, 5)? as u32,
                        ),
                    ));
                }
            }
        }
        // Refuse before the storage txn begins: a full backlog must never
        // commit state the delta stream cannot record.
        self.deltas.admit()?;
        self.db.begin()?;
        let result = (|| -> DbResult<()> {
            self.db
                .execute(&format!("DELETE FROM {T_SENS} WHERE provider = {n}"))?;
            for (attr, s) in keep
                .iter()
                .map(|(a, s)| (a.as_str(), *s))
                .chain(std::iter::once((attribute, sensitivity)))
            {
                self.db.insert(
                    T_SENS,
                    Row::from_values([
                        Value::Int(n),
                        Value::Text(attr.to_string()),
                        Value::Int(s.value as i64),
                        Value::Int(s.visibility as i64),
                        Value::Int(s.granularity as i64),
                        Value::Int(s.retention as i64),
                    ]),
                )?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit()?;
                self.deltas.push(DeltaOp::SetSensitivity {
                    id,
                    attribute: attribute.to_string(),
                    sensitivity,
                });
                Ok(())
            }
            Err(e) => {
                self.db.rollback()?;
                Err(e)
            }
        }
    }

    /// Set a provider's violation threshold `v_i`.
    ///
    /// Unknown providers are a silent no-op, matching
    /// [`crate::DeltaOp::SetThreshold`].
    pub fn set_threshold(&mut self, id: ProviderId, threshold: u64) -> DbResult<()> {
        let n = id.0 as i64;
        if !self.provider_ids()?.contains(&id) {
            return Ok(());
        }
        // Refuse before the storage txn begins: a full backlog must never
        // commit state the delta stream cannot record.
        self.deltas.admit()?;
        self.db.begin()?;
        let result = (|| -> DbResult<()> {
            self.db
                .execute(&format!("DELETE FROM {T_THRESHOLDS} WHERE provider = {n}"))?;
            self.db.insert(
                T_THRESHOLDS,
                Row::from_values([Value::Int(n), Value::Int(threshold as i64)]),
            )?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit()?;
                self.deltas.push(DeltaOp::SetThreshold { id, threshold });
                Ok(())
            }
            Err(e) => {
                self.db.rollback()?;
                Err(e)
            }
        }
    }

    /// The delta accumulated by write ops since the last
    /// [`Ppdb::ack_delta`] (or since open), without consuming it. Apply
    /// it (e.g. via [`crate::IncrementalAuditor::apply_delta`] or append
    /// it to a [`crate::deltalog::DeltaLog`]), then acknowledge exactly
    /// the ops you handled with [`Ppdb::ack_delta`]. If the apply fails,
    /// don't ack — the ops stay pending and the next peek returns them
    /// again.
    ///
    /// Returns a snapshot (clone) of the pending ops; consumers that may
    /// crash between apply and ack should use [`Ppdb::peek_delta_seq`] so
    /// recovery can tell which ops were already applied.
    pub fn peek_delta(&self) -> PopulationDelta {
        self.deltas.peek().1
    }

    /// Like [`Ppdb::peek_delta`], but also returns the sequence number of
    /// the first pending op: `(first_seq, ops)` where `ops.ops()[i]`
    /// carries seq `first_seq + i`. A consumer that records the seq it
    /// applied through (durably or in its own state) can crash at any
    /// point, re-peek, skip `applied_through - first_seq` ops, and
    /// [`Ppdb::ack_delta_through`] — exactly-once apply with no
    /// coordination beyond the queue.
    pub fn peek_delta_seq(&self) -> (u64, PopulationDelta) {
        self.deltas.peek()
    }

    /// Acknowledge the first `n` pending ops as applied, dropping them
    /// from the pending delta. `n` is clamped to the pending length, so
    /// `ack_delta(peek_delta().len())` is always safe even if writes
    /// raced in between (the extra ops simply stay pending).
    pub fn ack_delta(&mut self, n: usize) {
        self.deltas.ack(n);
    }

    /// Acknowledge every pending op with seq `< end_seq` (idempotent;
    /// see [`DeltaQueue::ack_through`]).
    pub fn ack_delta_through(&mut self, end_seq: u64) {
        self.deltas.ack_through(end_seq);
    }

    /// Pending (un-acked) delta ops. Writes refuse with
    /// [`DbError::Backpressure`] once this reaches
    /// [`PpdbConfig::delta_capacity`].
    pub fn delta_backlog_len(&self) -> usize {
        self.deltas.len()
    }

    /// A clonable handle to the pending-delta queue, for consumer threads
    /// that peek/ack concurrently with this writer.
    pub fn delta_queue(&self) -> DeltaQueue {
        self.deltas.clone()
    }

    /// All provider ids with data stored, in storage order.
    pub fn provider_ids(&mut self) -> DbResult<Vec<ProviderId>> {
        let schema = self.db.schema(&self.config.data_table)?;
        let pc = schema.require(&self.config.provider_column)?;
        let rows = self.db.scan(&self.config.data_table)?;
        rows.into_iter()
            .map(|(_, row)| {
                row.get(pc)
                    .and_then(Value::as_int)
                    .map(|v| ProviderId(v as u64))
                    .ok_or_else(|| DbError::Schema("non-integer provider id".into()))
            })
            .collect()
    }

    /// Reconstruct one provider's profile from storage.
    pub fn provider_profile(&mut self, id: ProviderId) -> DbResult<ProviderProfile> {
        let n = id.0 as i64;
        let mut profile = ProviderProfile::new(id, 0);
        let mut prefs = ProviderPreferences::new(id);
        for (_, row) in self.db.scan(T_PREFS)? {
            if int(&row, 0)? == n {
                let (attr, tuple) = decode_tuple_row(&row, 1)?;
                prefs.add(attr, tuple);
            }
        }
        profile.preferences = prefs;
        for (_, row) in self.db.scan(T_SENS)? {
            if int(&row, 0)? == n {
                let attr = text(&row, 1)?;
                profile.sensitivities.insert(
                    attr,
                    DatumSensitivity::new(
                        int(&row, 2)? as u32,
                        int(&row, 3)? as u32,
                        int(&row, 4)? as u32,
                        int(&row, 5)? as u32,
                    ),
                );
            }
        }
        for (_, row) in self.db.scan(T_THRESHOLDS)? {
            if int(&row, 0)? == n {
                profile.threshold = int(&row, 1)? as u64;
            }
        }
        Ok(profile)
    }

    /// All profiles, in data-table order.
    ///
    /// Batched: one scan over each of the preference, sensitivity, and
    /// threshold tables, bucketed by provider id — `O(rows)` instead of
    /// the per-provider [`Ppdb::provider_profile`] rescans (`O(providers ×
    /// rows)`). Accumulation mirrors the point-lookup path exactly:
    /// preference tuples append in scan order, and later sensitivity /
    /// threshold rows for the same provider overwrite earlier ones. A
    /// provider id occurring more than once in the data table yields one
    /// (identical) profile per occurrence, as before.
    pub fn all_profiles(&mut self) -> DbResult<Vec<ProviderProfile>> {
        let ids = self.provider_ids()?;
        let mut by_id: HashMap<i64, ProviderProfile> = HashMap::with_capacity(ids.len());
        for &id in &ids {
            by_id
                .entry(id.0 as i64)
                .or_insert_with(|| ProviderProfile::new(id, 0));
        }
        for (_, row) in self.db.scan(T_PREFS)? {
            if let Some(profile) = by_id.get_mut(&int(&row, 0)?) {
                let (attr, tuple) = decode_tuple_row(&row, 1)?;
                profile.preferences.add(attr, tuple);
            }
        }
        for (_, row) in self.db.scan(T_SENS)? {
            if let Some(profile) = by_id.get_mut(&int(&row, 0)?) {
                let attr = text(&row, 1)?;
                profile.sensitivities.insert(
                    attr,
                    DatumSensitivity::new(
                        int(&row, 2)? as u32,
                        int(&row, 3)? as u32,
                        int(&row, 4)? as u32,
                        int(&row, 5)? as u32,
                    ),
                );
            }
        }
        for (_, row) in self.db.scan(T_THRESHOLDS)? {
            if let Some(profile) = by_id.get_mut(&int(&row, 0)?) {
                profile.threshold = int(&row, 1)? as u64;
            }
        }
        Ok(ids
            .into_iter()
            .map(|id| by_id[&(id.0 as i64)].clone())
            .collect())
    }

    /// Compile the stored population straight into flat structure-of-arrays
    /// form — the same batched single-pass scans as [`Ppdb::all_profiles`],
    /// but interning preference rows directly into a
    /// [`CompiledPopulation`] without ever materializing
    /// [`ProviderProfile`]s. Accumulation order mirrors `all_profiles`
    /// exactly (preference rows in scan order; later sensitivity /
    /// threshold rows overwrite earlier ones; duplicate data-table ids
    /// yield one identical occurrence each), so audits over the result are
    /// byte-identical to `from_profiles(all_profiles())`.
    pub fn compiled_population(&mut self) -> DbResult<CompiledPopulation> {
        let ids = self.provider_ids()?;
        let known: std::collections::HashSet<i64> = ids.iter().map(|id| id.0 as i64).collect();
        let mut builder = PopulationBuilder::new();
        // One scan over the preference table, bucketed per provider id with
        // symbols interned on the way through.
        let mut prefs: HashMap<i64, Vec<(u32, u32, PrivacyPoint)>> =
            HashMap::with_capacity(known.len());
        for (_, row) in self.db.scan(T_PREFS)? {
            let provider = int(&row, 0)?;
            if !known.contains(&provider) {
                continue;
            }
            let attr = builder.intern_attr(&text(&row, 1)?);
            let purpose = builder.intern_purpose(&text(&row, 2)?);
            let point = PrivacyPoint::from_raw(
                int(&row, 3)? as u32,
                int(&row, 4)? as u32,
                int(&row, 5)? as u32,
            );
            prefs
                .entry(provider)
                .or_default()
                .push((attr, purpose, point));
        }
        static NO_PREFS: &[(u32, u32, PrivacyPoint)] = &[];
        for &id in &ids {
            let rows = prefs.get(&(id.0 as i64)).map_or(NO_PREFS, Vec::as_slice);
            builder.push_occurrence(id, rows);
        }
        for (_, row) in self.db.scan(T_SENS)? {
            let provider_raw = int(&row, 0)?;
            if !known.contains(&provider_raw) {
                continue;
            }
            let provider = ProviderId(provider_raw as u64);
            let attr = builder.intern_attr(&text(&row, 1)?);
            let s = DatumSensitivity::new(
                int(&row, 2)? as u32,
                int(&row, 3)? as u32,
                int(&row, 4)? as u32,
                int(&row, 5)? as u32,
            );
            builder.set_sensitivity(provider, attr, s);
        }
        for (_, row) in self.db.scan(T_THRESHOLDS)? {
            let provider = ProviderId(int(&row, 0)? as u64);
            builder.set_threshold(provider, int(&row, 1)? as u64);
        }
        Ok(builder.finish())
    }

    /// Build an [`AuditEngine`] from stored state.
    pub fn audit_engine(&mut self) -> DbResult<AuditEngine> {
        let policy = self.house_policy()?;
        let attributes = self.attributes()?;
        let weights = self.attribute_weights()?;
        Ok(AuditEngine::new(policy, attributes, weights))
    }

    /// Run a full audit against the stored policy, preferences, and data.
    ///
    /// Routes through [`Ppdb::compiled_population`]: the scan feeds the
    /// flat population directly, never materializing per-provider
    /// profiles.
    pub fn audit(&mut self) -> DbResult<AuditReport> {
        let engine = self.audit_engine()?;
        let pop = self.compiled_population()?;
        Ok(engine.audit_compiled(&pop))
    }

    /// [`Ppdb::audit`] sharded across `threads` worker threads.
    ///
    /// Storage reads (population, policy, weights) stay on one thread — the
    /// database is single-writer — but they are batched single-pass scans
    /// ([`Ppdb::compiled_population`]), and the audit itself runs through
    /// [`AuditEngine::par_audit_compiled`]'s work-stealing chunks, so the
    /// report is equal to [`Ppdb::audit`]'s for every thread count.
    ///
    /// Both failure domains surface as one structured [`AuditError`]:
    /// storage faults arrive as [`AuditError::Storage`], and a worker
    /// panic (after the chunk's one in-place retry) arrives as
    /// [`AuditError::WorkerPanicked`] naming the poisoned chunk — the
    /// process survives either.
    pub fn par_audit(
        &mut self,
        threads: std::num::NonZeroUsize,
    ) -> Result<AuditReport, AuditError> {
        let engine = self.audit_engine()?;
        let pop = self.compiled_population()?;
        engine.par_audit_compiled(&pop, threads)
    }

    /// Run an audit and append its summary to the stored audit history —
    /// the monitoring loop of the paper's §10. Returns both the full
    /// report and the recorded entry.
    pub fn record_audit(&mut self, label: &str) -> DbResult<(AuditReport, AuditLogEntry)> {
        let report = self.audit()?;
        let seq = self.audit_history()?.last().map(|e| e.seq + 1).unwrap_or(0);
        let entry = AuditLogEntry {
            seq,
            label: label.to_string(),
            population: report.population() as i64,
            violated: report.providers.iter().filter(|p| p.violated).count() as i64,
            defaulted: report.providers.iter().filter(|p| p.defaulted).count() as i64,
            total_violations: i64::try_from(report.total_violations).unwrap_or(i64::MAX),
            p_violation: report.p_violation(),
            p_default: report.p_default(),
        };
        self.db.insert(
            T_AUDIT_LOG,
            Row::from_values([
                Value::Int(entry.seq),
                Value::Text(entry.label.clone()),
                Value::Int(entry.population),
                Value::Int(entry.violated),
                Value::Int(entry.defaulted),
                Value::Int(entry.total_violations),
                Value::Float(entry.p_violation),
                Value::Float(entry.p_default),
            ]),
        )?;
        Ok((report, entry))
    }

    /// The recorded audit history, oldest first.
    pub fn audit_history(&mut self) -> DbResult<Vec<AuditLogEntry>> {
        let mut entries = Vec::new();
        for (_, row) in self.db.scan(T_AUDIT_LOG)? {
            entries.push(AuditLogEntry {
                seq: int(&row, 0)?,
                label: text(&row, 1)?,
                population: int(&row, 2)?,
                violated: int(&row, 3)?,
                defaulted: int(&row, 4)?,
                total_violations: int(&row, 5)?,
                p_violation: float(&row, 6)?,
                p_default: float(&row, 7)?,
            });
        }
        entries.sort_by_key(|e| e.seq);
        Ok(entries)
    }

    /// Record an audit and check Definition 3's α-PPDB condition in one
    /// step — the "demonstrably shown to be an α-PPDB" workflow.
    pub fn certify_alpha(&mut self, alpha: f64, label: &str) -> DbResult<bool> {
        let (report, _) = self.record_audit(label)?;
        Ok(report.is_alpha_ppdb(alpha))
    }
}

// Column accessors with model-level errors.
fn int(row: &Row, idx: usize) -> DbResult<i64> {
    row.get(idx)
        .and_then(Value::as_int)
        .ok_or_else(|| DbError::Schema(format!("expected INT at column {idx}")))
}

fn text(row: &Row, idx: usize) -> DbResult<String> {
    row.get(idx)
        .and_then(Value::as_text)
        .map(str::to_string)
        .ok_or_else(|| DbError::Schema(format!("expected TEXT at column {idx}")))
}

fn float(row: &Row, idx: usize) -> DbResult<f64> {
    row.get(idx)
        .and_then(Value::as_float)
        .ok_or_else(|| DbError::Schema(format!("expected FLOAT at column {idx}")))
}

/// Decode `(attribute, purpose, vis, gran, ret)` starting at `base`.
fn decode_tuple_row(row: &Row, base: usize) -> DbResult<(String, PrivacyTuple)> {
    let attr = text(row, base)?;
    let purpose = text(row, base + 1)?;
    let point = PrivacyPoint::from_raw(
        int(row, base + 2)? as u32,
        int(row, base + 3)? as u32,
        int(row, base + 4)? as u32,
    );
    Ok((attr, PrivacyTuple::from_point(purpose.as_str(), point)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_schema() -> Schema {
        SchemaBuilder::new()
            .column("provider_id", DataType::Int)
            .nullable_column("age", DataType::Int)
            .nullable_column("weight", DataType::Int)
            .build()
            .unwrap()
    }

    fn fresh() -> Ppdb {
        Ppdb::create(
            Database::in_memory(),
            PpdbConfig::new("people", "provider_id"),
            data_schema(),
        )
        .unwrap()
    }

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn sample_profile(id: u64, threshold: u64) -> ProviderProfile {
        let mut p = ProviderProfile::new(ProviderId(id), threshold);
        p.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(7, 4, 7)));
        p.sensitivities
            .insert("weight".into(), DatumSensitivity::new(3, 1, 5, 2));
        p
    }

    fn data_row(id: u64) -> Row {
        Row::from_values([Value::Int(id as i64), Value::Int(30), Value::Int(70)])
    }

    #[test]
    fn create_validates_provider_column() {
        // Missing column.
        let err = Ppdb::create(
            Database::in_memory(),
            PpdbConfig::new("people", "nope"),
            data_schema(),
        );
        assert!(err.is_err());
        // Wrong type.
        let schema = SchemaBuilder::new()
            .column("provider_id", DataType::Text)
            .build()
            .unwrap();
        let err = Ppdb::create(
            Database::in_memory(),
            PpdbConfig::new("people", "provider_id"),
            schema,
        );
        assert!(err.is_err());
    }

    #[test]
    fn attributes_exclude_provider_column() {
        let ppdb = fresh();
        assert_eq!(ppdb.attributes().unwrap(), vec!["age", "weight"]);
    }

    #[test]
    fn policy_round_trips_through_storage() {
        let mut ppdb = fresh();
        let policy = HousePolicy::builder("people")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
            .tuple("age", PrivacyTuple::from_point("ads", pt(3, 2, 365)))
            .build();
        ppdb.set_policy(&policy).unwrap();
        let back = ppdb.house_policy().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get("weight", &qpv_taxonomy::Purpose::new("pr"))
                .unwrap()
                .point,
            pt(5, 5, 5)
        );
        // Replacing overwrites.
        ppdb.set_policy(&HousePolicy::new("empty")).unwrap();
        assert!(ppdb.house_policy().unwrap().is_empty());
    }

    #[test]
    fn provider_profile_round_trips() {
        let mut ppdb = fresh();
        let profile = sample_profile(42, 50);
        ppdb.register_provider(&profile, data_row(42)).unwrap();
        let back = ppdb.provider_profile(ProviderId(42)).unwrap();
        assert_eq!(back, profile);
        assert_eq!(ppdb.provider_ids().unwrap(), vec![ProviderId(42)]);
    }

    #[test]
    fn register_rejects_mismatched_provider_id() {
        let mut ppdb = fresh();
        let err = ppdb.register_provider(&sample_profile(42, 50), data_row(43));
        assert!(err.is_err());
        // The failed registration left nothing behind (txn rollback).
        assert!(ppdb.provider_ids().unwrap().is_empty());
        assert!(ppdb.db_mut().scan(T_THRESHOLDS).unwrap().is_empty());
    }

    #[test]
    fn remove_provider_clears_everything() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(1, 50), data_row(1))
            .unwrap();
        ppdb.register_provider(&sample_profile(2, 60), data_row(2))
            .unwrap();
        ppdb.remove_provider(ProviderId(1)).unwrap();
        assert_eq!(ppdb.provider_ids().unwrap(), vec![ProviderId(2)]);
        for t in [T_PREFS, T_SENS, T_THRESHOLDS] {
            for (_, row) in ppdb.db_mut().scan(t).unwrap() {
                assert_ne!(row.values[0], Value::Int(1), "stale row in {t}");
            }
        }
    }

    #[test]
    fn full_audit_reproduces_the_worked_example_from_storage() {
        let mut ppdb = fresh();
        let (v, g, r) = (5u32, 5u32, 5u32);
        ppdb.set_policy(
            &HousePolicy::builder("people")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
                .build(),
        )
        .unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();

        let mk = |id: u64, pref: PrivacyPoint, s: DatumSensitivity, thr: u64| {
            let mut p = ProviderProfile::new(ProviderId(id), thr);
            p.preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            p.sensitivities.insert("weight".into(), s);
            p
        };
        ppdb.register_provider(
            &mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            data_row(0),
        )
        .unwrap();
        ppdb.register_provider(
            &mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            data_row(1),
        )
        .unwrap();
        ppdb.register_provider(
            &mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
            data_row(2),
        )
        .unwrap();

        let report = ppdb.audit().unwrap();
        let scores: Vec<u64> = report.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80]);
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.total_violations, 140);
    }

    #[test]
    fn par_audit_matches_sequential_audit_from_storage() {
        let mut ppdb = fresh();
        ppdb.set_policy(
            &HousePolicy::builder("people")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
                .build(),
        )
        .unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();
        for id in 0..12u64 {
            let mut p = ProviderProfile::new(ProviderId(id), 30 + id * 5);
            p.preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(4 + (id % 4) as u32, 5, 6)),
            );
            p.sensitivities
                .insert("weight".into(), DatumSensitivity::new(2, 1, 3, 1));
            ppdb.register_provider(&p, data_row(id)).unwrap();
        }
        let sequential = ppdb.audit().unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = ppdb
                .par_audit(std::num::NonZeroUsize::new(threads).unwrap())
                .unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    /// The scan-built population must audit byte-identically to compiling
    /// the materialized profiles — including a provider with no stated
    /// preferences at all.
    #[test]
    fn compiled_population_matches_the_profile_path() {
        let mut ppdb = fresh();
        ppdb.set_policy(
            &HousePolicy::builder("people")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
                .tuple("age", PrivacyTuple::from_point("ads", pt(3, 2, 365)))
                .build(),
        )
        .unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();
        ppdb.set_attribute_weight("age", 2).unwrap();
        for id in 0..9u64 {
            let mut p = ProviderProfile::new(ProviderId(id), 20 + id * 7);
            if id % 3 != 0 {
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(4 + (id % 4) as u32, 5, 6)),
                );
            }
            if id % 2 == 0 {
                p.preferences
                    .add("age", PrivacyTuple::from_point("pr", pt(2, 3, 60)));
                p.sensitivities
                    .insert("age".into(), DatumSensitivity::new(2, 1, 3, 1));
            }
            ppdb.register_provider(&p, data_row(id)).unwrap();
        }
        let engine = ppdb.audit_engine().unwrap();
        let pop = ppdb.compiled_population().unwrap();
        let profiles = ppdb.all_profiles().unwrap();
        let from_scan = engine.audit_compiled(&pop);
        let from_profiles =
            engine.audit_compiled(&crate::pop::CompiledPopulation::from_profiles(&profiles));
        assert_eq!(
            serde_json::to_string(&from_scan).unwrap(),
            serde_json::to_string(&from_profiles).unwrap()
        );
        // And both equal the string-path oracle.
        assert_eq!(from_scan, engine.run_reference(&profiles));
    }

    /// Write ops emit deltas; a live auditor fed via peek/ack tracks the
    /// store without ever rescanning it.
    #[test]
    fn live_auditor_tracks_store_through_deltas() {
        use crate::incremental::IncrementalAuditor;

        let mut ppdb = fresh();
        ppdb.set_policy(
            &HousePolicy::builder("people")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
                .tuple("age", PrivacyTuple::from_point("ads", pt(3, 2, 365)))
                .build(),
        )
        .unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();
        ppdb.set_attribute_weight("age", 2).unwrap();
        for id in 0..8u64 {
            let mut p = ProviderProfile::new(ProviderId(id), 20 + id * 9);
            p.preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(4 + (id % 4) as u32, 5, 6)),
            );
            if id % 2 == 0 {
                p.sensitivities
                    .insert("weight".into(), DatumSensitivity::new(2, 1, 3, 1));
            }
            ppdb.register_provider(&p, data_row(id)).unwrap();
        }

        // Snapshot the store into a live auditor; drain the registration
        // backlog so it isn't applied twice.
        let pop = ppdb.compiled_population().unwrap();
        let attrs = ppdb.attributes().unwrap();
        let weights = ppdb.attribute_weights().unwrap();
        let policy = ppdb.house_policy().unwrap();
        let mut live =
            IncrementalAuditor::from_population(pop, attrs.clone(), &weights, policy.clone());
        let backlog = ppdb.peek_delta().len();
        ppdb.ack_delta(backlog);

        // Every kind of write op, including no-ops on unknown providers.
        ppdb.insert_provider(&sample_profile(100, 35), data_row(100))
            .unwrap();
        ppdb.set_preferences(
            ProviderId(3),
            "age",
            vec![PrivacyTuple::from_point("ads", pt(2, 1, 400))],
        )
        .unwrap();
        ppdb.set_sensitivity(ProviderId(4), "age", DatumSensitivity::new(5, 2, 1, 3))
            .unwrap();
        ppdb.set_threshold(ProviderId(5), 1).unwrap();
        ppdb.set_threshold(ProviderId(999), 1).unwrap(); // unknown: no-op
        ppdb.remove_provider(ProviderId(2)).unwrap();

        let delta = ppdb.peek_delta();
        assert_eq!(delta.len(), 5, "unknown-provider op must not be recorded");
        live.apply_delta(&delta).unwrap();
        ppdb.ack_delta(delta.len());
        assert!(ppdb.peek_delta().is_empty());

        // The live auditor now agrees with a from-scratch audit of the
        // store (order-independent aggregates, then per-id scores).
        let report = ppdb.audit().unwrap();
        let outcome = live.outcome();
        assert_eq!(outcome.population, report.providers.len());
        assert_eq!(outcome.total_violations, report.total_violations);
        for pa in &report.providers {
            let i = live.compiled().occurrence_of(pa.provider).unwrap();
            assert_eq!(live.score(i), pa.score, "provider {:?}", pa.provider);
            assert_eq!(
                live.defaulted(i),
                pa.defaulted,
                "provider {:?}",
                pa.provider
            );
        }
    }

    /// Regression for the drain-then-apply bug: `take_delta()` used to
    /// drain the pending ops before the apply ran, so a failing
    /// `apply_delta` (here: a duplicate-occurrence population refusing
    /// deltas) lost committed edits forever. Under peek/ack a failed
    /// apply leaves the pending delta intact and replayable.
    #[test]
    fn failed_apply_leaves_delta_replayable() {
        use crate::incremental::IncrementalAuditor;

        let mut ppdb = fresh();
        ppdb.set_policy(
            &HousePolicy::builder("people")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
                .build(),
        )
        .unwrap();
        ppdb.set_attribute_weight("weight", 4).unwrap();
        for id in 0..4u64 {
            ppdb.register_provider(&sample_profile(id, 10 + id), data_row(id))
                .unwrap();
        }
        let base = ppdb.all_profiles().unwrap();
        let attrs = ppdb.attributes().unwrap();
        let weights = ppdb.attribute_weights().unwrap();
        let policy = ppdb.house_policy().unwrap();
        let backlog = ppdb.peek_delta().len();
        ppdb.ack_delta(backlog);

        // Committed writes accumulate as pending ops.
        ppdb.set_threshold(ProviderId(1), 7).unwrap();
        ppdb.remove_provider(ProviderId(2)).unwrap();
        let before = ppdb.peek_delta();
        assert_eq!(before.len(), 2);

        // An auditor over a duplicate-occurrence population refuses the
        // delta — and because nothing was acked, nothing is lost.
        let mut dup = base.clone();
        dup.push(base[0].clone());
        let mut broken = IncrementalAuditor::new(dup, attrs.clone(), &weights, policy.clone());
        assert!(broken.apply_delta(&ppdb.peek_delta()).is_err());
        assert_eq!(
            ppdb.peek_delta(),
            before,
            "failed apply must leave the pending delta untouched"
        );

        // A healthy auditor replays the same ops; only then do we ack.
        let mut live = IncrementalAuditor::new(base, attrs, &weights, policy);
        live.apply_delta(&ppdb.peek_delta()).unwrap();
        let n = ppdb.peek_delta().len();
        ppdb.ack_delta(n);
        assert!(ppdb.peek_delta().is_empty());

        let report = ppdb.audit().unwrap();
        let outcome = live.outcome();
        assert_eq!(outcome.population, report.providers.len());
        assert_eq!(outcome.total_violations, report.total_violations);
    }

    #[test]
    fn open_validates_table_presence() {
        let db = Database::in_memory();
        assert!(Ppdb::open(db, PpdbConfig::new("people", "provider_id")).is_err());
        let ppdb = fresh();
        let db = ppdb.db; // take the database back
        assert!(Ppdb::open(db, PpdbConfig::new("people", "provider_id")).is_ok());
    }

    #[test]
    fn audit_history_accumulates_and_survives_policy_changes() {
        let mut ppdb = fresh();
        ppdb.set_attribute_weight("weight", 4).unwrap();
        ppdb.register_provider(&sample_profile(1, 50), data_row(1))
            .unwrap();
        ppdb.set_policy(
            &HousePolicy::builder("v1")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(2, 2, 2)))
                .build(),
        )
        .unwrap();
        let (_, e1) = ppdb.record_audit("v1").unwrap();
        assert_eq!(e1.seq, 0);
        assert_eq!(e1.population, 1);
        assert_eq!(e1.violated, 0, "prefs (7,4,7) bound policy (2,2,2)");

        // Widen beyond the stated preference and re-audit.
        ppdb.set_policy(
            &HousePolicy::builder("v2")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
                .build(),
        )
        .unwrap();
        let (_, e2) = ppdb.record_audit("v2").unwrap();
        assert_eq!(e2.seq, 1);
        assert_eq!(e2.violated, 1);
        assert!(e2.total_violations > 0);

        let history = ppdb.audit_history().unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0], e1);
        assert_eq!(history[1], e2);
        assert!(history[1].p_violation > history[0].p_violation);
        // History is plain SQL too.
        let rs = ppdb
            .db_mut()
            .query("SELECT label FROM _qpv_audit_log ORDER BY seq")
            .unwrap();
        assert_eq!(rs.rows[1].values[0], Value::Text("v2".into()));
    }

    #[test]
    fn certify_alpha_records_and_judges() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(1, 50), data_row(1))
            .unwrap();
        ppdb.set_policy(
            &HousePolicy::builder("v1")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
                .build(),
        )
        .unwrap();
        // One of one providers violated: P(W) = 1.
        assert!(!ppdb.certify_alpha(0.5, "check-1").unwrap());
        assert!(ppdb.certify_alpha(1.0, "check-2").unwrap());
        assert_eq!(ppdb.audit_history().unwrap().len(), 2);
    }

    #[test]
    fn metadata_is_queryable_as_sql() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(7, 50), data_row(7))
            .unwrap();
        let rs = ppdb
            .db_mut()
            .query("SELECT COUNT(*) FROM _qpv_prefs WHERE provider = 7")
            .unwrap();
        assert_eq!(rs.rows[0].values[0], Value::Int(1));
    }

    #[test]
    fn metadata_joins_across_companion_tables() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(1, 50), data_row(1))
            .unwrap();
        ppdb.register_provider(&sample_profile(2, 200), data_row(2))
            .unwrap();
        // "Which providers consented to purpose 'pr' and what are their
        // thresholds?" — one SQL join over the privacy metadata.
        let rs = ppdb
            .db_mut()
            .query(
                "SELECT p.provider, t.threshold FROM _qpv_prefs p \
                 JOIN _qpv_thresholds t ON p.provider = t.provider \
                 WHERE p.purpose = 'pr' ORDER BY p.provider",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0].values, vec![Value::Int(1), Value::Int(50)]);
        assert_eq!(rs.rows[1].values, vec![Value::Int(2), Value::Int(200)]);
    }

    /// Satellite regression: a consumer that stalls forever must not let
    /// the pending backlog grow without bound. Writes hit the cap, fail
    /// with the *typed* backpressure error (before any storage txn
    /// begins), and resume cleanly once the consumer drains.
    #[test]
    fn stalled_consumer_backpressure_then_recovery() {
        use crate::incremental::IncrementalAuditor;
        let mut ppdb = Ppdb::create(
            Database::in_memory(),
            PpdbConfig::new("people", "provider_id").with_delta_capacity(3),
            data_schema(),
        )
        .unwrap();

        // Consumer is stalled: nobody acks. The cap admits exactly 3 ops.
        for id in 1..=3 {
            ppdb.register_provider(&sample_profile(id, 100), data_row(id))
                .unwrap();
        }
        assert_eq!(ppdb.delta_backlog_len(), 3);

        // The 4th write is refused with the typed error...
        let err = ppdb
            .register_provider(&sample_profile(4, 100), data_row(4))
            .unwrap_err();
        match err {
            DbError::Backpressure { pending, capacity } => {
                assert_eq!((pending, capacity), (3, 3));
            }
            other => panic!("expected Backpressure, got {other:?}"),
        }
        // ...and refused *before* the storage txn: no partial row landed,
        // and the store still matches the 3 recorded deltas exactly.
        assert_eq!(ppdb.provider_ids().unwrap().len(), 3);
        assert_eq!(ppdb.delta_backlog_len(), 3);

        // Repeated attempts stay refused — backpressure is stable, not
        // one-shot.
        assert!(matches!(
            ppdb.set_threshold(ProviderId(1), 7).unwrap_err(),
            DbError::Backpressure { .. }
        ));

        // Consumer wakes up, applies, acks: writes flow again and the
        // delta stream is gapless (4 total ops across the stall).
        let (first_seq, delta) = ppdb.peek_delta_seq();
        assert_eq!(first_seq, 0);
        let mut live = IncrementalAuditor::from_population(
            CompiledPopulation::from_profiles(&[]),
            ppdb.attributes().unwrap(),
            &AttributeSensitivities::new(),
            HousePolicy::new("people"),
        );
        live.apply_delta(&delta).unwrap();
        ppdb.ack_delta_through(first_seq + delta.len() as u64);
        assert_eq!(ppdb.delta_backlog_len(), 0);

        ppdb.register_provider(&sample_profile(4, 100), data_row(4))
            .unwrap();
        let (seq, resumed) = ppdb.peek_delta_seq();
        assert_eq!(seq, 3, "seqs continue across the stall with no gap");
        live.apply_delta(&resumed).unwrap();
        assert_eq!(live.outcome().population, 4);
    }

    /// Seq-tagged acks are idempotent and absolute: a consumer that
    /// crashed after applying but before acking re-acks the same seq
    /// range and nothing is lost or double-applied, even with writes
    /// racing in between.
    #[test]
    fn ack_through_is_idempotent_under_interleaved_writes() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(1, 100), data_row(1))
            .unwrap();
        ppdb.register_provider(&sample_profile(2, 100), data_row(2))
            .unwrap();
        let backlog = ppdb.delta_backlog_len();

        let (base, first) = ppdb.peek_delta_seq();
        // Writer races a new op in after the peek.
        ppdb.set_threshold(ProviderId(1), 9).unwrap();

        // Consumer applied `first` then crashed pre-ack; recovery re-acks
        // the absolute range — twice, to prove idempotence.
        let applied_through = base + first.len() as u64;
        ppdb.ack_delta_through(applied_through);
        ppdb.ack_delta_through(applied_through);
        // Only the racing op is still pending, under its original seq.
        let (seq, rest) = ppdb.peek_delta_seq();
        assert_eq!(seq, base + backlog as u64);
        assert_eq!(rest.len(), 1);
        assert!(matches!(
            rest.ops()[0],
            DeltaOp::SetThreshold {
                id: ProviderId(1),
                threshold: 9
            }
        ));
        // Acking a stale (already-acked) boundary is a no-op.
        ppdb.ack_delta_through(base);
        assert_eq!(ppdb.delta_backlog_len(), 1);
    }

    /// The queue handle is shared state: a consumer thread peeking and
    /// acking through its own [`DeltaQueue`] clone drains the writer's
    /// backlog.
    #[test]
    fn delta_queue_handle_shares_state_across_threads() {
        let mut ppdb = fresh();
        ppdb.register_provider(&sample_profile(1, 100), data_row(1))
            .unwrap();
        let queue = ppdb.delta_queue();
        let consumer = std::thread::spawn(move || {
            let (base, ops) = queue.peek();
            queue.ack_through(base + ops.len() as u64);
            ops.len()
        });
        let drained = consumer.join().unwrap();
        assert!(drained > 0);
        assert_eq!(ppdb.delta_backlog_len(), 0);
        assert_eq!(ppdb.delta_queue().next_seq(), drained as u64);
    }
}
