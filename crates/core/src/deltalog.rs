//! The durable delta log: restartable continuous monitoring (§10).
//!
//! PR 5's delta pipeline ([`crate::pop::PopulationDelta`] →
//! [`crate::incremental::IncrementalAuditor`]) is purely in-memory: a
//! restarted auditor falls back to a full `O(N)` rescan, and any delta
//! in flight at crash time is simply gone. This module closes both gaps
//! with the same machinery the relational engine already trusts:
//!
//! * **[`DeltaLog`]** persists every applied delta as a checksummed
//!   frame — `[len: u32 LE][crc32(payload): u32 LE][payload]`, the exact
//!   `qpv_reldb::wal` frame format — group-committed with one fsync per
//!   [`DeltaLog::sync`]. Replay stops at the first invalid frame, so a
//!   torn tail degrades to prefix durability, never corruption.
//! * **Snapshots** bound the tail: [`DeltaLog::snapshot`] serialises the
//!   live [`CompiledPopulation`] — its SoA arrays dumped as bulk
//!   fixed-width little-endian runs, not per-profile structs — to a
//!   generation-numbered snapshot file, starts a fresh log, and atomically
//!   publishes the new generation by rewriting `CURRENT` (write-temp +
//!   fsync + rename + dir-sync — PR 3's checkpoint publish trick).
//!   Recovery = decode snapshot ⊕ replay tail through
//!   [`CompiledPopulation::apply_delta`]: `O(snapshot + tail)` at memcpy
//!   speed, with no profile re-assembly and no store rescan.
//! * **[`Monitor`]** is the §10 service loop on top: ingest deltas (e.g.
//!   `qpv_synth::workload::churn` batches), keep `P(W)` / `P(Default)` /
//!   `Violations` live through an [`IncrementalAuditor`], and raise
//!   α-certification alerts with hysteresis when a delta pushes the
//!   store out of compliance. The discipline is strictly log-ahead: a
//!   delta reaches the auditor only after the log has fsynced it, so the
//!   recovered state can never lag what the live monitor reported.
//!
//! Every durable op routes through the shared
//! [`qpv_reldb::fault::FaultInjector`] failpoints ([`FaultOp::DeltaSync`],
//! [`FaultOp::DeltaReplay`], [`FaultOp::DeltaTruncate`],
//! [`FaultOp::SnapshotWrite`], [`FaultOp::SnapshotPublish`],
//! [`FaultOp::SnapshotRead`]), so the crash-torture suite can kill the
//! log at every op index and assert recovery byte-for-byte
//! (`crates/core/tests/deltalog_torture.rs`).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::disk::sync_dir;
use qpv_reldb::encoding::{get_varint, put_varint};
use qpv_reldb::error::{DbError, DbResult};
use qpv_reldb::fault::{crash_error, FaultDecision, FaultInjector, FaultOp};
use qpv_reldb::wal::{crc32, get_string, put_string};
use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};

use crate::incremental::IncrementalAuditor;
use crate::pop::{CompiledPopulation, DeltaOp, PolicyOutcome, PopulationDelta};
use crate::profile::ProviderProfile;
use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};

// ---------------------------------------------------------------------------
// Binary codec
//
// `DeltaOp` carries no serde derives (and the WAL style here is hand-rolled
// binary anyway), so deltas and profiles get a tag-based codec over the same
// primitives the relational WAL uses: LEB128 varints, length-prefixed
// strings, one leading `u8` tag per op.
// ---------------------------------------------------------------------------

const OP_UPSERT: u8 = 0;
const OP_REMOVE: u8 = 1;
const OP_SET_PREFS: u8 = 2;
const OP_SET_SENSITIVITY: u8 = 3;
const OP_SET_THRESHOLD: u8 = 4;

/// Snapshot file magic: `QPVS` little-endian.
const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"QPVS");

fn get_u32(buf: &mut &[u8]) -> DbResult<u32> {
    u32::try_from(get_varint(buf)?)
        .map_err(|_| DbError::Corruption("delta-log value out of u32 range".into()))
}

fn put_point(buf: &mut Vec<u8>, p: &PrivacyPoint) {
    put_varint(buf, u64::from(p.get(Dim::Visibility)));
    put_varint(buf, u64::from(p.get(Dim::Granularity)));
    put_varint(buf, u64::from(p.get(Dim::Retention)));
}

fn get_point(buf: &mut &[u8]) -> DbResult<PrivacyPoint> {
    let v = get_u32(buf)?;
    let g = get_u32(buf)?;
    let r = get_u32(buf)?;
    Ok(PrivacyPoint::from_raw(v, g, r))
}

fn put_tuple(buf: &mut Vec<u8>, t: &PrivacyTuple) {
    put_string(buf, t.purpose.name());
    put_point(buf, &t.point);
}

fn get_tuple(buf: &mut &[u8]) -> DbResult<PrivacyTuple> {
    let purpose = get_string(buf)?;
    let point = get_point(buf)?;
    Ok(PrivacyTuple::from_point(purpose.as_str(), point))
}

fn put_sensitivity(buf: &mut Vec<u8>, s: &DatumSensitivity) {
    put_varint(buf, u64::from(s.value));
    put_varint(buf, u64::from(s.visibility));
    put_varint(buf, u64::from(s.granularity));
    put_varint(buf, u64::from(s.retention));
}

fn get_sensitivity(buf: &mut &[u8]) -> DbResult<DatumSensitivity> {
    let value = get_u32(buf)?;
    let vis = get_u32(buf)?;
    let gran = get_u32(buf)?;
    let ret = get_u32(buf)?;
    Ok(DatumSensitivity::new(value, vis, gran, ret))
}

fn put_profile(buf: &mut Vec<u8>, p: &ProviderProfile) {
    put_varint(buf, p.id().0);
    put_varint(buf, p.threshold);
    let tuples = p.preferences.tuples();
    put_varint(buf, tuples.len() as u64);
    for t in tuples {
        put_string(buf, &t.attribute);
        put_tuple(buf, &t.tuple);
    }
    // Sensitivities live in a HashMap; serialise in sorted-key order so
    // the same profile always encodes to the same bytes.
    let mut attrs: Vec<&String> = p.sensitivities.keys().collect();
    attrs.sort();
    put_varint(buf, attrs.len() as u64);
    for attr in attrs {
        put_string(buf, attr);
        put_sensitivity(buf, &p.sensitivities[attr]);
    }
}

fn get_profile(buf: &mut &[u8]) -> DbResult<ProviderProfile> {
    let id = ProviderId(get_varint(buf)?);
    let threshold = get_varint(buf)?;
    let mut profile = ProviderProfile::new(id, threshold);
    let tuples = get_varint(buf)?;
    for _ in 0..tuples {
        let attribute = get_string(buf)?;
        let tuple = get_tuple(buf)?;
        profile.preferences.add(attribute, tuple);
    }
    let sens = get_varint(buf)?;
    for _ in 0..sens {
        let attribute = get_string(buf)?;
        let s = get_sensitivity(buf)?;
        profile.sensitivities.insert(attribute, s);
    }
    Ok(profile)
}

fn put_op(buf: &mut Vec<u8>, op: &DeltaOp) {
    match op {
        DeltaOp::Upsert(p) => {
            buf.push(OP_UPSERT);
            put_profile(buf, p);
        }
        DeltaOp::Remove(id) => {
            buf.push(OP_REMOVE);
            put_varint(buf, id.0);
        }
        DeltaOp::SetAttributePrefs {
            id,
            attribute,
            tuples,
        } => {
            buf.push(OP_SET_PREFS);
            put_varint(buf, id.0);
            put_string(buf, attribute);
            put_varint(buf, tuples.len() as u64);
            for t in tuples {
                put_tuple(buf, t);
            }
        }
        DeltaOp::SetSensitivity {
            id,
            attribute,
            sensitivity,
        } => {
            buf.push(OP_SET_SENSITIVITY);
            put_varint(buf, id.0);
            put_string(buf, attribute);
            put_sensitivity(buf, sensitivity);
        }
        DeltaOp::SetThreshold { id, threshold } => {
            buf.push(OP_SET_THRESHOLD);
            put_varint(buf, id.0);
            put_varint(buf, *threshold);
        }
    }
}

fn get_op(buf: &mut &[u8]) -> DbResult<DeltaOp> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(DbError::Corruption("truncated delta op".into()));
    };
    *buf = rest;
    match tag {
        OP_UPSERT => Ok(DeltaOp::Upsert(get_profile(buf)?)),
        OP_REMOVE => Ok(DeltaOp::Remove(ProviderId(get_varint(buf)?))),
        OP_SET_PREFS => {
            let id = ProviderId(get_varint(buf)?);
            let attribute = get_string(buf)?;
            let n = get_varint(buf)?;
            let mut tuples = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                tuples.push(get_tuple(buf)?);
            }
            Ok(DeltaOp::SetAttributePrefs {
                id,
                attribute,
                tuples,
            })
        }
        OP_SET_SENSITIVITY => {
            let id = ProviderId(get_varint(buf)?);
            let attribute = get_string(buf)?;
            let sensitivity = get_sensitivity(buf)?;
            Ok(DeltaOp::SetSensitivity {
                id,
                attribute,
                sensitivity,
            })
        }
        OP_SET_THRESHOLD => {
            let id = ProviderId(get_varint(buf)?);
            let threshold = get_varint(buf)?;
            Ok(DeltaOp::SetThreshold { id, threshold })
        }
        other => Err(DbError::Corruption(format!(
            "unknown delta op tag {other:#x}"
        ))),
    }
}

fn encode_delta(delta: &PopulationDelta) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, delta.len() as u64);
    for op in delta.ops() {
        put_op(&mut buf, op);
    }
    buf
}

fn decode_delta(mut payload: &[u8]) -> DbResult<PopulationDelta> {
    let buf = &mut payload;
    let n = get_varint(buf)?;
    let mut delta = PopulationDelta::new();
    for _ in 0..n {
        delta.push(get_op(buf)?);
    }
    if !buf.is_empty() {
        return Err(DbError::Corruption(
            "trailing bytes after delta frame".into(),
        ));
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Paths and generation publish
// ---------------------------------------------------------------------------

/// Path of the generation pointer file inside a delta-log directory.
pub fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Path of generation `g`'s population snapshot.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("pop.{generation}.snap"))
}

/// Path of generation `g`'s delta log file.
pub fn log_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("deltas.{generation}.log"))
}

/// The published generation, or `None` when the directory was never
/// initialised (no `CURRENT` file).
pub fn read_current(dir: &Path) -> DbResult<Option<u64>> {
    let path = current_path(dir);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)?;
    let g = text
        .trim()
        .parse::<u64>()
        .map_err(|_| DbError::Corruption(format!("bad CURRENT contents: {text:?}")))?;
    Ok(Some(g))
}

fn check_failpoint(injector: &Option<FaultInjector>, op: FaultOp) -> DbResult<()> {
    if let Some(injector) = injector {
        match injector.check(op, 0) {
            FaultDecision::Proceed => {}
            FaultDecision::Torn { .. } => unreachable!("{op:?} carries no write bytes"),
            FaultDecision::Fail(e) => return Err(e),
        }
    }
    Ok(())
}

/// Durably write generation `g`'s snapshot file: magic + CRC + the
/// compiled population's SoA payload
/// ([`CompiledPopulation::encode_snapshot`] — bulk fixed-width arrays, so
/// recovery decodes at memcpy speed instead of re-assembling profile
/// structs), written under its final (unpublished) name and fsynced. A
/// torn write leaves a prefix under a name no `CURRENT` points at, so
/// recovery never sees it.
fn write_snapshot_file(
    dir: &Path,
    generation: u64,
    pop: &CompiledPopulation,
    injector: &Option<FaultInjector>,
) -> DbResult<()> {
    let mut payload = Vec::new();
    pop.encode_snapshot(&mut payload);
    let mut bytes = Vec::with_capacity(payload.len() + 8);
    bytes.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let path = snapshot_path(dir, generation);
    let mut keep = bytes.len();
    let mut torn = false;
    if let Some(injector) = injector {
        match injector.check(FaultOp::SnapshotWrite, bytes.len()) {
            FaultDecision::Proceed => {}
            FaultDecision::Torn { keep: k } => {
                keep = k;
                torn = true;
            }
            FaultDecision::Fail(e) => return Err(e),
        }
    }
    let mut file = File::create(&path)?;
    file.write_all(&bytes[..keep])?;
    file.sync_all()?;
    sync_dir(&path)?;
    if torn {
        return Err(crash_error(FaultOp::SnapshotWrite));
    }
    Ok(())
}

/// Read and validate generation `g`'s snapshot. Published snapshots were
/// durable before `CURRENT` swung, so any mismatch here is real corruption,
/// not a tolerable torn tail.
fn read_snapshot_file(
    dir: &Path,
    generation: u64,
    injector: &Option<FaultInjector>,
) -> DbResult<CompiledPopulation> {
    check_failpoint(injector, FaultOp::SnapshotRead)?;
    let bytes = std::fs::read(snapshot_path(dir, generation))?;
    if bytes.len() < 8 || bytes[..4] != SNAP_MAGIC.to_le_bytes() {
        return Err(DbError::Corruption(format!(
            "snapshot {generation} has no valid header"
        )));
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let payload = &bytes[8..];
    if crc32(payload) != crc {
        return Err(DbError::Corruption(format!(
            "snapshot {generation} fails its checksum"
        )));
    }
    let mut cursor = payload;
    let pop = CompiledPopulation::decode_snapshot(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(DbError::Corruption(format!(
            "trailing bytes after snapshot {generation}"
        )));
    }
    Ok(pop)
}

/// Durably create generation `g`'s fresh, empty delta log.
fn create_empty_log(dir: &Path, generation: u64, injector: &Option<FaultInjector>) -> DbResult<()> {
    check_failpoint(injector, FaultOp::DeltaTruncate)?;
    let path = log_path(dir, generation);
    let file = File::create(&path)?;
    file.sync_all()?;
    sync_dir(&path)?;
    Ok(())
}

/// Atomically publish `generation` as current: write `CURRENT.tmp`
/// durably, rename over `CURRENT`, fsync the directory. The rename is the
/// commit point — a crash on either side leaves a consistent generation.
fn publish_current(dir: &Path, generation: u64, injector: &Option<FaultInjector>) -> DbResult<()> {
    check_failpoint(injector, FaultOp::SnapshotPublish)?;
    let tmp = dir.join("CURRENT.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(generation.to_string().as_bytes())?;
    file.sync_all()?;
    std::fs::rename(&tmp, current_path(dir))?;
    sync_dir(current_path(dir))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// DeltaLog
// ---------------------------------------------------------------------------

/// What [`DeltaLog::recover`] reconstructed: the compiled population as
/// of the last durable delta, plus how it got there.
#[derive(Debug)]
pub struct Recovery {
    /// The population after snapshot ⊕ tail replay. The tail replays
    /// through [`CompiledPopulation::apply_delta`], which
    /// `tests/delta_equivalence.rs` pins byte-identical to the
    /// [`PopulationDelta::apply_to_profiles`] oracle — so auditing this
    /// population is audit-report-identical to a fresh compile + audit of
    /// the durable state at crash time.
    pub population: CompiledPopulation,
    /// The published generation the recovery loaded.
    pub generation: u64,
    /// Delta frames replayed from the tail.
    pub deltas_replayed: u64,
    /// Individual ops inside those frames.
    pub ops_replayed: u64,
    /// Replayed ops that named an unknown provider id
    /// ([`crate::pop::DeltaOutcome::skipped`]) — nonzero means the log
    /// and snapshot disagree about the population, worth surfacing.
    pub ops_skipped: u64,
}

/// A checksummed, group-committed, replayable log of
/// [`PopulationDelta`]s with generation-numbered population snapshots.
/// See the module docs for the format and crash-consistency argument.
pub struct DeltaLog {
    dir: PathBuf,
    file: File,
    generation: u64,
    /// Encoded frames awaiting the next group commit.
    pending: Vec<u8>,
    pending_deltas: u64,
    /// Delta frames durably in this generation's log (as known to this
    /// handle; recovery recounts from disk).
    committed_deltas: u64,
    injector: Option<FaultInjector>,
}

impl DeltaLog {
    /// Initialise `dir` as a delta-log directory: write the generation-0
    /// snapshot of `pop`, create an empty log, publish `CURRENT`.
    /// Fails if the directory is already initialised.
    pub fn create(dir: impl AsRef<Path>, pop: &CompiledPopulation) -> DbResult<DeltaLog> {
        DeltaLog::create_with(dir, pop, None)
    }

    /// [`DeltaLog::create`] with every durable op routed through
    /// `injector`'s failpoints.
    pub fn create_with(
        dir: impl AsRef<Path>,
        pop: &CompiledPopulation,
        injector: Option<FaultInjector>,
    ) -> DbResult<DeltaLog> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if current_path(dir).exists() {
            return Err(DbError::Schema(format!(
                "delta log already initialised at {}",
                dir.display()
            )));
        }
        write_snapshot_file(dir, 0, pop, &injector)?;
        create_empty_log(dir, 0, &injector)?;
        publish_current(dir, 0, &injector)?;
        let file = OpenOptions::new().append(true).open(log_path(dir, 0))?;
        Ok(DeltaLog {
            dir: dir.to_path_buf(),
            file,
            generation: 0,
            pending: Vec::new(),
            pending_deltas: 0,
            committed_deltas: 0,
            injector,
        })
    }

    /// Recover from `dir`: load the published snapshot, replay the valid
    /// log tail through [`CompiledPopulation::apply_delta`], and return
    /// both the reconstructed population and a log handle positioned for
    /// further appends. `O(snapshot + tail)` — no profile re-assembly, no
    /// store rescan. Idempotent — recovering twice observes the same
    /// state, because recovery itself writes nothing.
    pub fn recover(dir: impl AsRef<Path>) -> DbResult<(DeltaLog, Recovery)> {
        DeltaLog::recover_with(dir, None)
    }

    /// [`DeltaLog::recover`] with failpoints.
    pub fn recover_with(
        dir: impl AsRef<Path>,
        injector: Option<FaultInjector>,
    ) -> DbResult<(DeltaLog, Recovery)> {
        let dir = dir.as_ref();
        let generation = read_current(dir)?.ok_or_else(|| {
            DbError::Schema(format!(
                "no delta log at {} (missing CURRENT)",
                dir.display()
            ))
        })?;
        let mut population = read_snapshot_file(dir, generation, &injector)?;
        let deltas = Self::replay_frames(dir, generation, &injector)?;
        let mut ops_replayed = 0u64;
        let mut ops_skipped = 0u64;
        for delta in &deltas {
            ops_replayed += delta.len() as u64;
            let outcome = population.apply_delta(delta).map_err(|e| {
                DbError::Corruption(format!("delta tail refused by snapshot population: {e}"))
            })?;
            ops_skipped += outcome.skipped;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(log_path(dir, generation))?;
        let recovery = Recovery {
            population,
            generation,
            deltas_replayed: deltas.len() as u64,
            ops_replayed,
            ops_skipped,
        };
        Ok((
            DeltaLog {
                dir: dir.to_path_buf(),
                file,
                generation,
                pending: Vec::new(),
                pending_deltas: 0,
                committed_deltas: recovery.deltas_replayed,
                injector,
            },
            recovery,
        ))
    }

    /// Read every valid delta frame of generation `g`, stopping cleanly at
    /// the first invalid frame (torn tail = prefix durability, exactly the
    /// WAL's replay contract).
    fn replay_frames(
        dir: &Path,
        generation: u64,
        injector: &Option<FaultInjector>,
    ) -> DbResult<Vec<PopulationDelta>> {
        check_failpoint(injector, FaultOp::DeltaReplay)?;
        let bytes = std::fs::read(log_path(dir, generation))?;
        let mut deltas = Vec::new();
        let mut slice = bytes.as_slice();
        while slice.len() >= 8 {
            let len = u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]) as usize;
            let crc = u32::from_le_bytes([slice[4], slice[5], slice[6], slice[7]]);
            if slice.len() < 8 + len {
                break; // torn tail
            }
            let payload = &slice[8..8 + len];
            if crc32(payload) != crc {
                break; // torn/corrupt tail
            }
            deltas.push(decode_delta(payload)?);
            slice = &slice[8 + len..];
        }
        Ok(deltas)
    }

    /// Frame a delta into the group-commit buffer. Nothing is durable
    /// until [`DeltaLog::sync`].
    pub fn append(&mut self, delta: &PopulationDelta) {
        let payload = encode_delta(delta);
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_deltas += 1;
    }

    /// Group commit: durably append every buffered frame with one write +
    /// one fsync. On a transient injected fault nothing is written and the
    /// buffer is retained (retrying persists the complete batch); a torn
    /// fault persists a deterministic byte prefix and crash-stops.
    pub fn sync(&mut self) -> DbResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Some(injector) = &self.injector {
            match injector.check(FaultOp::DeltaSync, self.pending.len()) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { keep } => {
                    let pending = std::mem::take(&mut self.pending);
                    self.pending_deltas = 0;
                    self.write_durable(&pending[..keep])?;
                    return Err(crash_error(FaultOp::DeltaSync));
                }
                // Pending is retained: the op was not performed.
                FaultDecision::Fail(e) => return Err(e),
            }
        }
        let pending = std::mem::take(&mut self.pending);
        self.write_durable(&pending)?;
        self.committed_deltas += self.pending_deltas;
        self.pending_deltas = 0;
        Ok(())
    }

    fn write_durable(&mut self, bytes: &[u8]) -> DbResult<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Rotate to a new generation: durably write `pop` as the next
    /// snapshot, start a fresh empty log, atomically publish the new
    /// `CURRENT`, then garbage-collect the old generation (best-effort —
    /// the publish already committed).
    ///
    /// `pop` must be the population with **every appended delta applied**
    /// (the [`Monitor`] hands over its live auditor's population); pending
    /// frames are synced first so the caller cannot publish a snapshot
    /// ahead of the log.
    pub fn snapshot(&mut self, pop: &CompiledPopulation) -> DbResult<()> {
        self.sync()?;
        let next = self.generation + 1;
        write_snapshot_file(&self.dir, next, pop, &self.injector)?;
        create_empty_log(&self.dir, next, &self.injector)?;
        publish_current(&self.dir, next, &self.injector)?;
        // Commit point passed: swing the handle, then GC.
        self.file = OpenOptions::new()
            .append(true)
            .open(log_path(&self.dir, next))?;
        let old = self.generation;
        self.generation = next;
        self.committed_deltas = 0;
        let _ = std::fs::remove_file(snapshot_path(&self.dir, old));
        let _ = std::fs::remove_file(log_path(&self.dir, old));
        Ok(())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current published generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Delta frames durably committed in the current generation's tail.
    pub fn tail_deltas(&self) -> u64 {
        self.committed_deltas
    }

    /// Delta frames buffered but not yet group-committed.
    pub fn pending_deltas(&self) -> u64 {
        self.pending_deltas
    }
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

/// Tuning for a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The α-PPDB compliance bound (Definition 5): the store is compliant
    /// while `P(W) <= alpha`.
    pub alpha: f64,
    /// Hysteresis fraction in `[0, 1)`. A breach alert fires when `P(W)`
    /// exceeds `alpha`; the matching clear fires only once `P(W)` falls to
    /// `alpha * (1 - hysteresis)` or below, so a population oscillating at
    /// the boundary cannot flap alerts on every delta.
    pub hysteresis: f64,
    /// Deltas buffered per group commit (≥ 1). Larger batches amortise the
    /// fsync; the auditor (and therefore alerting) only observes deltas
    /// once their batch is durable.
    pub group_commit: u64,
    /// Deltas between population snapshots (0 = never snapshot). Bounds
    /// the log tail and hence recovery time.
    pub snapshot_every: u64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            alpha: 0.05,
            hysteresis: 0.1,
            group_commit: 8,
            snapshot_every: 1024,
        }
    }
}

/// An α-certification state change the [`Monitor`] observed.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorAlert {
    /// `P(W)` rose above `alpha`: the store stopped being an α-PPDB.
    Breach {
        /// Deltas durably applied when the alert fired (counted from the
        /// recovered tail at start).
        seq: u64,
        /// The violation probability that breached.
        p_violation: f64,
        /// The configured bound it breached.
        alpha: f64,
    },
    /// `P(W)` fell back to the hysteresis threshold or below.
    Cleared {
        /// Deltas durably applied when the alert fired.
        seq: u64,
        /// The violation probability at clear time.
        p_violation: f64,
        /// The hysteresis threshold (`alpha * (1 - hysteresis)`).
        threshold: f64,
    },
}

/// The §10 continuous-monitoring service loop: a [`DeltaLog`] for
/// durability, an [`IncrementalAuditor`] for live `P(W)` / `P(Default)` /
/// `Violations`, and α-certification alerting with hysteresis.
///
/// The discipline is strictly **log-ahead**: [`Monitor::ingest`] buffers
/// deltas into the log's group-commit batch, and only once a batch is
/// fsynced does it reach the auditor (whose compiled population is what
/// the next snapshot is cut from). A crash therefore loses at most the
/// un-synced batch — never anything the auditor already reported — and
/// [`Monitor::recover`] lands on exactly the durable prefix.
pub struct Monitor {
    log: DeltaLog,
    auditor: IncrementalAuditor,
    staged: Vec<PopulationDelta>,
    config: MonitorConfig,
    seq: u64,
    in_breach: bool,
    alerts: Vec<MonitorAlert>,
    since_snapshot: u64,
}

impl Monitor {
    /// Start monitoring a fresh population: initialise the delta log at
    /// `dir` (generation-0 snapshot of `initial`) and build the live
    /// auditor. Fails if `dir` already holds a log — use
    /// [`Monitor::recover`] for restarts.
    pub fn start(
        dir: impl AsRef<Path>,
        initial: Vec<ProviderProfile>,
        attributes: Vec<String>,
        weights: &AttributeSensitivities,
        policy: HousePolicy,
        config: MonitorConfig,
    ) -> DbResult<Monitor> {
        Monitor::start_with(dir, initial, attributes, weights, policy, config, None)
    }

    /// [`Monitor::start`] with failpoints on every durable op.
    pub fn start_with(
        dir: impl AsRef<Path>,
        initial: Vec<ProviderProfile>,
        attributes: Vec<String>,
        weights: &AttributeSensitivities,
        policy: HousePolicy,
        config: MonitorConfig,
        injector: Option<FaultInjector>,
    ) -> DbResult<Monitor> {
        let pop = CompiledPopulation::from_profiles(&initial);
        let log = DeltaLog::create_with(dir, &pop, injector)?;
        Ok(Monitor::assemble(
            log, pop, 0, attributes, weights, policy, config,
        ))
    }

    /// Restart after a crash or shutdown: recover the delta log at `dir`
    /// (snapshot ⊕ tail replay) and rebuild the live auditor from the
    /// recovered population — `O(population + tail)`, no store rescan.
    pub fn recover(
        dir: impl AsRef<Path>,
        attributes: Vec<String>,
        weights: &AttributeSensitivities,
        policy: HousePolicy,
        config: MonitorConfig,
    ) -> DbResult<Monitor> {
        Monitor::recover_with(dir, attributes, weights, policy, config, None)
    }

    /// [`Monitor::recover`] with failpoints.
    pub fn recover_with(
        dir: impl AsRef<Path>,
        attributes: Vec<String>,
        weights: &AttributeSensitivities,
        policy: HousePolicy,
        config: MonitorConfig,
        injector: Option<FaultInjector>,
    ) -> DbResult<Monitor> {
        let (log, recovery) = DeltaLog::recover_with(dir, injector)?;
        Ok(Monitor::assemble(
            log,
            recovery.population,
            recovery.deltas_replayed,
            attributes,
            weights,
            policy,
            config,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        log: DeltaLog,
        pop: CompiledPopulation,
        seq: u64,
        attributes: Vec<String>,
        weights: &AttributeSensitivities,
        policy: HousePolicy,
        config: MonitorConfig,
    ) -> Monitor {
        let auditor = IncrementalAuditor::from_population(pop, attributes, weights, policy);
        let mut monitor = Monitor {
            log,
            auditor,
            staged: Vec::new(),
            config,
            seq,
            in_breach: false,
            alerts: Vec::new(),
            since_snapshot: 0,
        };
        // A population already out of compliance alerts immediately.
        monitor.check_alpha();
        monitor
    }

    /// Ingest one delta: frame it into the log and, when the group-commit
    /// batch is full, [`Monitor::flush`]. Returns the alerts this call
    /// raised (empty while a batch is still buffering).
    pub fn ingest(&mut self, delta: PopulationDelta) -> DbResult<Vec<MonitorAlert>> {
        let before = self.alerts.len();
        self.log.append(&delta);
        self.staged.push(delta);
        if self.staged.len() as u64 >= self.config.group_commit.max(1) {
            self.flush()?;
        }
        Ok(self.alerts[before..].to_vec())
    }

    /// Force the buffered batch durable and apply it to the live auditor,
    /// then re-check α-certification and cut a snapshot if one is due.
    /// Transient sync faults leave the batch staged — retrying flushes the
    /// complete batch.
    pub fn flush(&mut self) -> DbResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        self.log.sync()?;
        for delta in std::mem::take(&mut self.staged) {
            self.auditor
                .apply_delta(&delta)
                .map_err(|e| DbError::Schema(format!("delta refused by live auditor: {e}")))?;
            self.seq += 1;
            self.since_snapshot += 1;
        }
        self.check_alpha();
        if self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every {
            self.log.snapshot(self.auditor.compiled())?;
            self.since_snapshot = 0;
        }
        Ok(())
    }

    /// Flush and cut a snapshot now (e.g. before a planned shutdown, to
    /// make the next [`Monitor::recover`] tail-free).
    pub fn checkpoint(&mut self) -> DbResult<()> {
        self.flush()?;
        self.log.snapshot(self.auditor.compiled())?;
        self.since_snapshot = 0;
        Ok(())
    }

    fn check_alpha(&mut self) {
        let p = self.auditor.p_violation();
        if !self.in_breach {
            if p > self.config.alpha {
                self.in_breach = true;
                self.alerts.push(MonitorAlert::Breach {
                    seq: self.seq,
                    p_violation: p,
                    alpha: self.config.alpha,
                });
            }
        } else {
            let threshold = self.config.alpha * (1.0 - self.config.hysteresis);
            if p <= threshold {
                self.in_breach = false;
                self.alerts.push(MonitorAlert::Cleared {
                    seq: self.seq,
                    p_violation: p,
                    threshold,
                });
            }
        }
    }

    /// The live auditor (scores, outcome, compiled population).
    pub fn auditor(&self) -> &IncrementalAuditor {
        &self.auditor
    }

    /// The underlying delta log.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Every alert raised so far, in order.
    pub fn alerts(&self) -> &[MonitorAlert] {
        &self.alerts
    }

    /// Whether the monitor currently considers the store in breach
    /// (hysteresis applied).
    pub fn in_breach(&self) -> bool {
        self.in_breach
    }

    /// Deltas durably applied (recovered tail + this run).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Live `P(W)` (Definition 2) over the durable population.
    pub fn p_violation(&self) -> f64 {
        self.auditor.p_violation()
    }

    /// Live `P(Default)` (Definition 3).
    pub fn p_default(&self) -> f64 {
        self.auditor.p_default()
    }

    /// The full aggregate outcome (population, violated, defaulted,
    /// total violations).
    pub fn outcome(&self) -> PolicyOutcome {
        self.auditor.outcome()
    }
}

// ---------------------------------------------------------------------------
// SharedMonitor
// ---------------------------------------------------------------------------

/// A point-in-time, read-only view of a [`Monitor`]'s state.
///
/// [`SharedMonitor`] republishes one of these (behind an `Arc`) after
/// every mutation, so dashboards and compliance checks read a coherent
/// `{seq, P(W), alerts}` tuple without ever contending with ingest or a
/// snapshot cut. Views from the same monitor are totally ordered by
/// [`MonitorView::epoch`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorView {
    /// Publication counter: strictly increasing, one per republish.
    pub epoch: u64,
    /// Deltas durably applied ([`Monitor::seq`]) as of this view.
    pub seq: u64,
    /// Aggregate outcome over the durable population.
    pub outcome: PolicyOutcome,
    /// `P(W)` over the durable population.
    pub p_violation: f64,
    /// `P(Default)` over the durable population.
    pub p_default: f64,
    /// Whether the monitor considered the store in breach.
    pub in_breach: bool,
    /// Every alert raised so far, in order.
    pub alerts: Vec<MonitorAlert>,
    /// The delta log generation backing this state.
    pub generation: u64,
}

/// A [`Monitor`] shared between an ingest path and concurrent readers,
/// with snapshot cuts that never stall ingestion.
///
/// Three rules make it safe and non-blocking:
///
/// * **Mutations serialise on one mutex.** Ingest, flush, and checkpoint
///   all take the monitor lock; the log-ahead discipline inside
///   [`Monitor`] is untouched.
/// * **Ingest never waits for a checkpoint.** [`SharedMonitor::ingest`]
///   stages the delta under a short buffer lock and then only
///   *try-locks* the monitor. If another thread is cutting a snapshot
///   (or mid-flush), the delta stays staged and the call returns
///   immediately with no alerts — exactly the contract a buffered
///   [`Monitor::ingest`] already has inside a group-commit window. The
///   staged backlog is drained, in order, by whichever call next holds
///   the lock ([`SharedMonitor::flush`] guarantees it).
/// * **Reads never take the monitor lock.** [`SharedMonitor::view`]
///   clones an `Arc<MonitorView>` republished after every mutation.
///
/// Durability contract: a delta is durable (and visible in the view's
/// `seq`) only after a [`SharedMonitor::flush`] that returned `Ok`.
/// Upstream peek/ack consumers must ack their [`crate::ppdb::DeltaQueue`]
/// seqs only after such a flush, never after a mere `ingest` — staged or
/// group-commit-buffered deltas are still in the crash-loss window.
#[derive(Clone)]
pub struct SharedMonitor {
    monitor: Arc<Mutex<Monitor>>,
    /// Deltas accepted while the monitor lock was busy, FIFO.
    staged: Arc<Mutex<Vec<PopulationDelta>>>,
    view: Arc<Mutex<Arc<MonitorView>>>,
    epoch: Arc<AtomicU64>,
}

impl SharedMonitor {
    /// Wrap a monitor for shared use and publish its initial view.
    pub fn new(monitor: Monitor) -> SharedMonitor {
        let view = Arc::new(snapshot_view(&monitor, 0));
        SharedMonitor {
            monitor: Arc::new(Mutex::new(monitor)),
            staged: Arc::new(Mutex::new(Vec::new())),
            view: Arc::new(Mutex::new(view)),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    fn lock_monitor(&self) -> std::sync::MutexGuard<'_, Monitor> {
        // The monitor's own invariants hold at every await-free point a
        // panic can occur; recovering a poisoned guard is safe.
        self.monitor.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_staged(&self) -> std::sync::MutexGuard<'_, Vec<PopulationDelta>> {
        self.staged.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Apply every staged delta (in arrival order) to the locked
    /// monitor, then republish the view. Returns the alerts the drain
    /// raised.
    fn drain_into(&self, monitor: &mut Monitor) -> DbResult<Vec<MonitorAlert>> {
        let mut raised = Vec::new();
        loop {
            // Take the backlog in one short lock; new arrivals while we
            // apply go to a fresh Vec and are picked up next iteration.
            let batch = std::mem::take(&mut *self.lock_staged());
            if batch.is_empty() {
                break;
            }
            for delta in batch {
                raised.extend(monitor.ingest(delta)?);
            }
        }
        Ok(raised)
    }

    fn publish(&self, monitor: &Monitor) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let view = Arc::new(snapshot_view(monitor, epoch));
        *self.view.lock().unwrap_or_else(|e| e.into_inner()) = view;
    }

    /// Ingest one delta without ever blocking on a concurrent snapshot
    /// cut. If the monitor lock is free the delta (plus any staged
    /// backlog) is applied now and the alerts it raised are returned; if
    /// the lock is busy the delta is staged FIFO and the call returns
    /// `Ok(vec![])` — its alerts surface from whichever call drains it.
    pub fn ingest(&self, delta: PopulationDelta) -> DbResult<Vec<MonitorAlert>> {
        self.lock_staged().push(delta);
        let Ok(mut monitor) = self.monitor.try_lock() else {
            return Ok(Vec::new());
        };
        let raised = self.drain_into(&mut monitor);
        self.publish(&monitor);
        raised
    }

    /// Drain the staged backlog and force everything durable
    /// ([`Monitor::flush`]). After `Ok`, every delta from every prior
    /// `ingest` on any thread is fsynced and reflected in the view.
    pub fn flush(&self) -> DbResult<Vec<MonitorAlert>> {
        let mut monitor = self.lock_monitor();
        let raised = self.drain_into(&mut monitor);
        let flushed = monitor.flush();
        self.publish(&monitor);
        let raised = raised?;
        flushed?;
        Ok(raised)
    }

    /// Drain, flush, and cut a snapshot now ([`Monitor::checkpoint`]).
    /// Concurrent `ingest` calls stage instead of blocking for the
    /// duration; a final drain picks up everything that arrived while
    /// the snapshot was being written.
    pub fn checkpoint(&self) -> DbResult<Vec<MonitorAlert>> {
        let mut monitor = self.lock_monitor();
        let mut raised = self.drain_into(&mut monitor)?;
        monitor.checkpoint()?;
        // Deltas staged while the snapshot file was written.
        raised.extend(self.drain_into(&mut monitor)?);
        self.publish(&monitor);
        Ok(raised)
    }

    /// Cut a snapshot on a background thread; ingestion continues
    /// (staging while the cut holds the lock). Join the handle for the
    /// result — a failed cut leaves the previous generation current.
    pub fn checkpoint_in_background(&self) -> std::thread::JoinHandle<DbResult<Vec<MonitorAlert>>> {
        let shared = self.clone();
        std::thread::spawn(move || shared.checkpoint())
    }

    /// The latest published view. Lock-free with respect to the monitor:
    /// only a short swap-lock on the published `Arc` is taken, so a
    /// snapshot cut in progress never delays a reader.
    pub fn view(&self) -> Arc<MonitorView> {
        self.view.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Deltas accepted by [`SharedMonitor::ingest`] but not yet applied
    /// to the monitor (they are applied by the next lock holder).
    pub fn staged_len(&self) -> usize {
        self.lock_staged().len()
    }

    /// Run `f` under the monitor lock (draining staged deltas first so
    /// `f` observes every accepted delta), then republish the view.
    pub fn with<R>(&self, f: impl FnOnce(&mut Monitor) -> R) -> DbResult<R> {
        let mut monitor = self.lock_monitor();
        self.drain_into(&mut monitor)?;
        let out = f(&mut monitor);
        self.publish(&monitor);
        Ok(out)
    }

    /// Unwrap back to the owned monitor, applying any staged backlog
    /// first. Fails if other handles are still alive.
    pub fn into_inner(self) -> Result<Monitor, SharedMonitor> {
        {
            let mut monitor = self.lock_monitor();
            // Best-effort: a refused staged delta is surfaced on the
            // next explicit flush, not silently dropped here.
            if self.drain_into(&mut monitor).is_ok() {
                self.publish(&monitor);
            }
        }
        let SharedMonitor {
            monitor,
            staged,
            view,
            epoch,
        } = self;
        match Arc::try_unwrap(monitor) {
            Ok(m) => Ok(m.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(monitor) => Err(SharedMonitor {
                monitor,
                staged,
                view,
                epoch,
            }),
        }
    }
}

fn snapshot_view(monitor: &Monitor, epoch: u64) -> MonitorView {
    MonitorView {
        epoch,
        seq: monitor.seq(),
        outcome: monitor.outcome(),
        p_violation: monitor.p_violation(),
        p_default: monitor.p_default(),
        in_breach: monitor.in_breach(),
        alerts: monitor.alerts().to_vec(),
        generation: monitor.log().generation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use qpv_reldb::fault::{FaultKind, FaultPlan};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qpv-deltalog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn profile(id: u64, threshold: u64) -> ProviderProfile {
        let mut p = ProviderProfile::new(ProviderId(id), threshold);
        p.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(4, 5, 6)));
        p.preferences
            .add("age", PrivacyTuple::from_point("ads", pt(1, 2, 30)));
        p.sensitivities
            .insert("weight".into(), DatumSensitivity::new(3, 1, 5, 2));
        p
    }

    /// Audit-report JSON under a fixed tiny engine: the state fingerprint
    /// the tests compare populations by ([`CompiledPopulation`] has no
    /// `PartialEq`; report identity is the contract recovery promises).
    fn report(pop: &CompiledPopulation) -> String {
        let mut w = AttributeSensitivities::new();
        w.set("weight", 4);
        w.set("age", 2);
        let policy = HousePolicy::builder("dl-test")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(3, 3, 3)))
            .tuple("age", PrivacyTuple::from_point("ads", pt(2, 2, 20)))
            .build();
        let engine = AuditEngine::new(policy, ["weight", "age"], w);
        serde_json::to_string(&engine.audit_compiled(pop)).unwrap()
    }

    fn report_of(profiles: &[ProviderProfile]) -> String {
        report(&CompiledPopulation::from_profiles(profiles))
    }

    fn sample_delta() -> PopulationDelta {
        PopulationDelta::new()
            .upsert(profile(9, 40))
            .remove(ProviderId(1))
            .set_attribute_prefs(
                ProviderId(2),
                "weight",
                vec![PrivacyTuple::from_point("pr", pt(3, 3, 3))],
            )
            .set_sensitivity(ProviderId(2), "age", DatumSensitivity::new(5, 4, 3, 2))
            .set_threshold(ProviderId(0), 7)
    }

    #[test]
    fn codec_round_trips_every_op_kind() {
        let delta = sample_delta();
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back, delta);
        // Trailing bytes are rejected, like the WAL's record decoder.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_delta(&extended).is_err());
        // Unknown tags are rejected.
        let mut bad = Vec::new();
        put_varint(&mut bad, 1);
        bad.push(0x7f);
        assert!(decode_delta(&bad).is_err());
    }

    #[test]
    fn append_sync_recover_replays_the_oracle() {
        let dir = temp_dir("roundtrip");
        let initial: Vec<ProviderProfile> = (0..4).map(|i| profile(i, 10 + i)).collect();
        let mut log = DeltaLog::create(&dir, &CompiledPopulation::from_profiles(&initial)).unwrap();
        let d1 = sample_delta();
        let d2 = PopulationDelta::new().set_threshold(ProviderId(9), 99);
        log.append(&d1);
        log.append(&d2);
        assert_eq!(log.pending_deltas(), 2);
        log.sync().unwrap();
        assert_eq!(log.tail_deltas(), 2);

        let (_log2, rec) = DeltaLog::recover(&dir).unwrap();
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.deltas_replayed, 2);
        assert_eq!(rec.ops_replayed, 6);
        let mut expected = initial.clone();
        d1.apply_to_profiles(&mut expected);
        d2.apply_to_profiles(&mut expected);
        assert_eq!(report(&rec.population), report_of(&expected));

        // Un-synced frames are not durable.
        let mut log3 = DeltaLog::recover(&dir).unwrap().0;
        log3.append(&PopulationDelta::new().remove(ProviderId(0)));
        drop(log3);
        let (_, rec2) = DeltaLog::recover(&dir).unwrap();
        assert_eq!(rec2.deltas_replayed, 2, "pending frame was never synced");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotates_generation_and_bounds_the_tail() {
        let dir = temp_dir("rotate");
        let initial: Vec<ProviderProfile> = (0..3).map(|i| profile(i, 20)).collect();
        let mut log = DeltaLog::create(&dir, &CompiledPopulation::from_profiles(&initial)).unwrap();
        let mut mirror = initial.clone();
        let d1 = PopulationDelta::new().set_threshold(ProviderId(1), 5);
        d1.apply_to_profiles(&mut mirror);
        log.append(&d1);
        log.snapshot(&CompiledPopulation::from_profiles(&mirror))
            .unwrap();
        assert_eq!(log.generation(), 1);
        assert_eq!(log.tail_deltas(), 0);
        assert!(!snapshot_path(&dir, 0).exists(), "old generation GC'd");
        assert!(!log_path(&dir, 0).exists());

        let d2 = PopulationDelta::new().remove(ProviderId(0));
        d2.apply_to_profiles(&mut mirror);
        log.append(&d2);
        log.sync().unwrap();

        let (_, rec) = DeltaLog::recover(&dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(
            rec.deltas_replayed, 1,
            "tail holds only post-snapshot deltas"
        );
        assert_eq!(report(&rec.population), report_of(&mirror));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_sync_fault_retains_the_batch() {
        let dir = temp_dir("transient");
        // Op indices: 0 SnapshotWrite, 1 DeltaTruncate, 2 SnapshotPublish,
        // 3 first DeltaSync.
        let injector = FaultInjector::new(FaultPlan::fail_at(3, FaultKind::Transient));
        let pop = CompiledPopulation::from_profiles(&[profile(0, 10)]);
        let mut log = DeltaLog::create_with(&dir, &pop, Some(injector)).unwrap();
        log.append(&sample_delta());
        let err = log.sync().unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(log.pending_deltas(), 1, "batch retained for retry");
        log.sync().unwrap();
        assert_eq!(log.tail_deltas(), 1);
        let (_, rec) = DeltaLog::recover(&dir).unwrap();
        assert_eq!(rec.deltas_replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_policy() -> HousePolicy {
        HousePolicy::builder("mon")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
            .build()
    }

    fn tiny_weights() -> AttributeSensitivities {
        let mut w = AttributeSensitivities::new();
        w.set("weight", 4);
        w
    }

    /// A provider whose stated preference the policy violates (policy
    /// point 5,5,5 exceeds the stated 1,1,1 bound) when `violating`.
    fn mon_profile(id: u64, violating: bool) -> ProviderProfile {
        let mut p = ProviderProfile::new(ProviderId(id), 1_000_000);
        let bound = if violating { pt(1, 1, 1) } else { pt(9, 9, 9) };
        p.preferences
            .add("weight", PrivacyTuple::from_point("pr", bound));
        p
    }

    #[test]
    fn monitor_alerts_with_hysteresis() {
        let dir = temp_dir("monitor");
        // 10 compliant providers; alpha 0.25 with 20% hysteresis means:
        // breach when P(W) > 0.25, clear only when P(W) <= 0.20.
        let initial: Vec<ProviderProfile> = (0..10).map(|i| mon_profile(i, false)).collect();
        let config = MonitorConfig {
            alpha: 0.25,
            hysteresis: 0.2,
            group_commit: 1,
            snapshot_every: 0,
        };
        let mut m = Monitor::start(
            &dir,
            initial,
            vec!["weight".into()],
            &tiny_weights(),
            tiny_policy(),
            config,
        )
        .unwrap();
        assert!(!m.in_breach());
        assert!(m.alerts().is_empty());

        // Flip three providers to violating: P(W) = 0.3 > 0.25 → breach,
        // raised exactly once.
        for id in 0..3u64 {
            let alerts = m
                .ingest(PopulationDelta::new().upsert(mon_profile(id, true)))
                .unwrap();
            if id < 2 {
                assert!(alerts.is_empty(), "no breach at P(W) <= 0.25");
            } else {
                assert_eq!(alerts.len(), 1);
                assert!(matches!(alerts[0], MonitorAlert::Breach { .. }));
            }
        }
        assert!(m.in_breach());

        // Back to 2 violating: P(W) = 0.2 is inside the hysteresis band
        // boundary (<= 0.20), so the clear fires; dropping to 0.1 first
        // checks no duplicate clear.
        let alerts = m
            .ingest(PopulationDelta::new().upsert(mon_profile(0, false)))
            .unwrap();
        assert_eq!(alerts.len(), 1, "P(W)=0.2 <= 0.20 clears");
        assert!(matches!(alerts[0], MonitorAlert::Cleared { .. }));
        let alerts = m
            .ingest(PopulationDelta::new().upsert(mon_profile(1, false)))
            .unwrap();
        assert!(alerts.is_empty(), "already cleared, no duplicate alert");
        assert_eq!(m.alerts().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn monitor_recover_lands_on_durable_prefix() {
        let dir = temp_dir("mon-recover");
        let initial: Vec<ProviderProfile> = (0..6).map(|i| mon_profile(i, false)).collect();
        let config = MonitorConfig {
            alpha: 0.25,
            hysteresis: 0.0,
            group_commit: 2,
            snapshot_every: 3,
        };
        let mut m = Monitor::start(
            &dir,
            initial,
            vec!["weight".into()],
            &tiny_weights(),
            tiny_policy(),
            config.clone(),
        )
        .unwrap();
        for id in 0..4u64 {
            m.ingest(PopulationDelta::new().upsert(mon_profile(id, id % 2 == 0)))
                .unwrap();
        }
        // One more ingest leaves a staged, un-durable delta behind.
        m.ingest(PopulationDelta::new().upsert(mon_profile(4, true)))
            .unwrap();
        assert_eq!(m.log().pending_deltas(), 1);
        let durable_seq = m.seq();
        let expected = report(m.auditor().compiled());
        drop(m);

        let m2 = Monitor::recover(
            &dir,
            vec!["weight".into()],
            &tiny_weights(),
            tiny_policy(),
            config,
        )
        .unwrap();
        assert_eq!(
            report(m2.auditor().compiled()),
            expected,
            "durable prefix recovered"
        );
        assert_eq!(durable_seq, 4);
        assert_eq!(
            m2.seq(),
            0,
            "the snapshot cut at the 4th durable delta left an empty tail"
        );
        assert_eq!(
            m2.p_violation(),
            2.0 / 6.0,
            "two of six providers violating in the durable prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn shared_monitor(dir: &Path, group_commit: u64) -> SharedMonitor {
        let config = MonitorConfig {
            alpha: 0.25,
            hysteresis: 0.2,
            group_commit,
            snapshot_every: 0,
        };
        SharedMonitor::new(
            Monitor::start(
                dir,
                Vec::new(),
                vec!["weight".into()],
                &tiny_weights(),
                tiny_policy(),
                config,
            )
            .unwrap(),
        )
    }

    /// Views are epoch-ordered, coherent snapshots: each ingest
    /// republished one, and a held view is immutable while the monitor
    /// moves on.
    #[test]
    fn shared_monitor_publishes_epoch_ordered_views() {
        let dir = temp_dir("shared-view");
        let shared = shared_monitor(&dir, 1);
        let v0 = shared.view();
        assert_eq!((v0.epoch, v0.seq), (0, 0));

        shared
            .ingest(PopulationDelta::new().upsert(mon_profile(0, false)))
            .unwrap();
        shared
            .ingest(PopulationDelta::new().upsert(mon_profile(1, true)))
            .unwrap();
        let v2 = shared.view();
        assert!(v2.epoch > v0.epoch, "every mutation republishes");
        assert_eq!(v2.seq, 2, "group_commit=1: both deltas durable");
        assert_eq!(v2.outcome.population, 2);
        assert!((v2.p_violation - 0.5).abs() < 1e-12);
        assert!(v2.in_breach);
        assert_eq!(v2.alerts.len(), 1);
        // The old view is a snapshot, not a live reference.
        assert_eq!((v0.seq, v0.outcome.population), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Ingest while the monitor lock is held (a snapshot cut in
    /// progress) must not block: the delta stages, and the next lock
    /// holder applies it in order. Nothing is lost, nothing applied
    /// twice.
    #[test]
    fn shared_monitor_ingest_stages_instead_of_blocking() {
        let dir = temp_dir("shared-staged");
        let shared = shared_monitor(&dir, 1);

        // Simulate a cut in progress: hold the monitor lock directly.
        let guard = shared.monitor.lock().unwrap();
        let alerts = shared
            .ingest(PopulationDelta::new().upsert(mon_profile(0, false)))
            .unwrap();
        assert!(alerts.is_empty(), "staged, not applied");
        assert_eq!(shared.staged_len(), 1);
        assert_eq!(shared.view().seq, 0, "view unchanged while staged");
        drop(guard);

        // The next lock holder (here: flush) drains the backlog.
        shared.flush().unwrap();
        assert_eq!(shared.staged_len(), 0);
        let v = shared.view();
        assert_eq!((v.seq, v.outcome.population), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The tentpole claim, exercised with real threads: a writer keeps
    /// ingesting while snapshots cut in the background. Every delta
    /// survives (exactly once), the final view matches, and a cold
    /// recovery from the directory lands on the identical population.
    #[test]
    fn shared_monitor_ingests_while_snapshots_cut_in_background() {
        let dir = temp_dir("shared-bg");
        let shared = shared_monitor(&dir, 4);
        const N: u64 = 96;

        let writer = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                for id in 0..N {
                    shared
                        .ingest(PopulationDelta::new().upsert(mon_profile(id, id % 3 == 0)))
                        .unwrap();
                }
            })
        };
        // Cut snapshots concurrently with the writer.
        let mut cuts = Vec::new();
        for _ in 0..3 {
            cuts.push(shared.checkpoint_in_background());
            std::thread::yield_now();
        }
        writer.join().unwrap();
        for cut in cuts {
            cut.join().unwrap().unwrap();
        }
        shared.flush().unwrap();

        let v = shared.view();
        assert_eq!(v.seq, N, "every ingested delta durably applied");
        assert_eq!(v.outcome.population, N as usize);
        assert_eq!(v.outcome.violated, (0..N).filter(|i| i % 3 == 0).count());
        assert_eq!(shared.staged_len(), 0);

        // Cold recovery replays snapshot ⊕ tail to the same population.
        let m = shared
            .into_inner()
            .unwrap_or_else(|_| panic!("sole handle"));
        drop(m);
        let recovered = Monitor::recover(
            &dir,
            vec!["weight".into()],
            &tiny_weights(),
            tiny_policy(),
            MonitorConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.outcome().population, N as usize);
        assert_eq!(
            recovered.outcome().violated,
            (0..N).filter(|i| i % 3 == 0).count()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
