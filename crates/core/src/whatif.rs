//! What-if scenario analysis (paper §10).
//!
//! "It is also possible to develop 'what if' scenarios that modify a house's
//! privacy policies with respect to data provider default. Thus, if a
//! particular default level is explicitly adopted, the database can be
//! demonstrably shown to be an α-PPDB." — this module is that capability:
//! evaluate candidate policies against the live population *without*
//! changing the stored policy, and search for the widest policy that keeps a
//! compliance target.
//!
//! Scenario sweeps are where [`crate::pop::CompiledPopulation`] pays off:
//! the population is compiled once at construction, and every candidate
//! policy after that is one counts-only pass over the flat preference rows —
//! no profile re-indexing, no witness allocation.

use serde::{Deserialize, Serialize};

use qpv_policy::HousePolicy;

use crate::audit::AuditEngine;
use crate::pop::{CompiledPopulation, DeltaError, PolicyOutcome, PopulationDelta};
use crate::profile::ProviderProfile;

/// The summary of one evaluated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Caller-supplied scenario label.
    pub label: String,
    /// Equation 16's `Violations`.
    pub total_violations: u128,
    /// `P(W)`.
    pub p_violation: f64,
    /// `P(Default)`.
    pub p_default: f64,
    /// Providers that would remain (`N_future`).
    pub remaining: usize,
}

impl ScenarioOutcome {
    fn from_counts(label: String, counts: &PolicyOutcome) -> ScenarioOutcome {
        ScenarioOutcome {
            label,
            total_violations: counts.total_violations,
            p_violation: counts.p_violation(),
            p_default: counts.p_default(),
            remaining: counts.remaining(),
        }
    }
}

/// Evaluates candidate policies against a fixed population, compiled once.
#[derive(Debug)]
pub struct WhatIf<'a> {
    engine: &'a AuditEngine,
    pop: CompiledPopulation,
}

impl<'a> WhatIf<'a> {
    /// Bind an engine (for its attributes and weights) and a population,
    /// compiling the population into flat storage once up front.
    pub fn new(engine: &'a AuditEngine, profiles: &[ProviderProfile]) -> WhatIf<'a> {
        WhatIf::from_population(engine, CompiledPopulation::from_profiles(profiles))
    }

    /// [`WhatIf::new`], reusing an already-compiled population (e.g. one
    /// scanned straight out of a `Ppdb`).
    pub fn from_population(engine: &'a AuditEngine, pop: CompiledPopulation) -> WhatIf<'a> {
        WhatIf { engine, pop }
    }

    /// [`WhatIf::from_population`], starting from a base population plus a
    /// delta — clone-and-apply instead of recompiling from profiles, so
    /// pricing a scenario against a slightly mutated population costs
    /// `O(N + changed)` (the clone) rather than a full rebuild.
    pub fn with_delta(
        engine: &'a AuditEngine,
        base: &CompiledPopulation,
        delta: &PopulationDelta,
    ) -> Result<WhatIf<'a>, DeltaError> {
        let mut pop = base.clone();
        pop.apply_delta(delta)?;
        Ok(WhatIf::from_population(engine, pop))
    }

    /// Evaluate one candidate policy: a single counts-only pass.
    pub fn evaluate(&self, label: impl Into<String>, policy: &HousePolicy) -> ScenarioOutcome {
        let counts = self.engine.counts_with_policy(&self.pop, policy);
        ScenarioOutcome::from_counts(label.into(), &counts)
    }

    /// Evaluate a batch of labelled candidates, in order — one compiled
    /// population, K cheap passes ([`AuditEngine::audit_many_policies`]).
    pub fn evaluate_all(&self, scenarios: &[(String, HousePolicy)]) -> Vec<ScenarioOutcome> {
        let policies: Vec<HousePolicy> = scenarios.iter().map(|(_, p)| p.clone()).collect();
        self.engine
            .audit_many_policies(&self.pop, &policies)
            .iter()
            .zip(scenarios)
            .map(|(counts, (label, _))| ScenarioOutcome::from_counts(label.clone(), counts))
            .collect()
    }

    /// The largest uniform widening (in raw steps applied to every tuple on
    /// every ordered dimension) of `base` that still satisfies
    /// `P(W) ≤ alpha`, searched up to `max_steps`. Returns
    /// `(steps, outcome)` for the widest compliant policy, or `None` if even
    /// the unwidened base is non-compliant.
    ///
    /// `P(W)` is monotone in uniform widening (wider policies only add
    /// exceedance), so a linear scan with early exit is exact.
    pub fn max_compliant_widening(
        &self,
        base: &HousePolicy,
        alpha: f64,
        max_steps: u32,
    ) -> Option<(u32, ScenarioOutcome)> {
        let mut best = None;
        for steps in 0..=max_steps {
            let candidate = base.widened_uniform(steps);
            let outcome = self.evaluate(format!("widen+{steps}"), &candidate);
            if outcome.p_violation <= alpha {
                best = Some((steps, outcome));
            } else {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};
    use qpv_policy::{ProviderId, ProviderPreferences};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn setup() -> (AuditEngine, Vec<ProviderProfile>) {
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(2, 2, 30)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        // Staggered tolerance: preference headroom i on every dimension.
        let profiles: Vec<ProviderProfile> = (0..10u64)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 30);
                let mut prefs = ProviderPreferences::new(ProviderId(i));
                prefs.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + i as u32, 2 + i as u32, 30 + i as u32)),
                );
                p.preferences = prefs;
                p.sensitivities
                    .insert("weight".into(), DatumSensitivity::new(1, 1, 1, 1));
                p
            })
            .collect();
        (engine, profiles)
    }

    #[test]
    fn base_policy_violates_no_one() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        let outcome = whatif.evaluate("base", &engine.policy);
        assert_eq!(outcome.p_violation, 0.0);
        assert_eq!(outcome.remaining, 10);
    }

    #[test]
    fn widening_monotonically_increases_violations() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        let mut last = 0u128;
        let mut last_p = 0.0;
        for steps in 0..8 {
            let outcome =
                whatif.evaluate(format!("w{steps}"), &engine.policy.widened_uniform(steps));
            assert!(outcome.total_violations >= last);
            assert!(outcome.p_violation >= last_p);
            last = outcome.total_violations;
            last_p = outcome.p_violation;
        }
        assert!(last > 0);
    }

    #[test]
    fn max_compliant_widening_finds_the_boundary() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        // Provider i tolerates widening ≤ i without violation, so widening
        // by s violates providers 0..s, giving P(W) = s/10.
        let (steps, outcome) = whatif
            .max_compliant_widening(&engine.policy, 0.35, 20)
            .expect("base is compliant");
        assert_eq!(steps, 3, "P(W)={}", outcome.p_violation);
        assert!(outcome.p_violation <= 0.35);
        // One more step must break the bound.
        let next = whatif.evaluate("next", &engine.policy.widened_uniform(steps + 1));
        assert!(next.p_violation > 0.35);
    }

    #[test]
    fn non_compliant_base_returns_none() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        let wide = engine.policy.widened_uniform(10); // violates everyone but 9
        assert!(whatif.max_compliant_widening(&wide, 0.05, 5).is_none());
    }

    /// The counts-only fast path must report exactly what a full
    /// report-building audit would.
    #[test]
    fn counts_path_matches_the_full_report() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        for steps in [0u32, 3, 7] {
            let policy = engine.policy.widened_uniform(steps);
            let outcome = whatif.evaluate("x", &policy);
            let report = engine.run_with_policy(&profiles, &policy);
            assert_eq!(outcome.total_violations, report.total_violations);
            assert_eq!(outcome.p_violation, report.p_violation());
            assert_eq!(outcome.p_default, report.p_default());
            assert_eq!(outcome.remaining, report.remaining());
        }
    }

    /// A what-if built from base + delta prices scenarios identically to
    /// one built from the mutated profiles — and the base stays pristine.
    #[test]
    fn with_delta_matches_recompiled_population() {
        use crate::pop::PopulationDelta;

        let (engine, mut profiles) = setup();
        let base = CompiledPopulation::from_profiles(&profiles);
        let base_epoch = base.epoch();

        let mut newcomer = ProviderProfile::new(ProviderId(50), 30);
        newcomer
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(2, 2, 30)));
        let delta = PopulationDelta::new()
            .upsert(newcomer)
            .remove(ProviderId(4))
            .set_threshold(ProviderId(7), 1);
        let whatif = WhatIf::with_delta(&engine, &base, &delta).unwrap();

        delta.apply_to_profiles(&mut profiles);
        let fresh = WhatIf::new(&engine, &profiles);
        for steps in [0u32, 3, 7] {
            let policy = engine.policy.widened_uniform(steps);
            let a = whatif.evaluate("d", &policy);
            let b = fresh.evaluate("d", &policy);
            assert_eq!(a.total_violations, b.total_violations);
            assert_eq!(a.p_violation, b.p_violation);
            assert_eq!(a.p_default, b.p_default);
            assert_eq!(a.remaining, b.remaining);
        }
        assert_eq!(base.epoch(), base_epoch, "base must not be mutated");
        assert_eq!(base.len(), 10);
    }

    #[test]
    fn evaluate_all_preserves_order_and_labels() {
        let (engine, profiles) = setup();
        let whatif = WhatIf::new(&engine, &profiles);
        let scenarios = vec![
            ("narrow".to_string(), engine.policy.clone()),
            ("wide".to_string(), engine.policy.widened_uniform(5)),
        ];
        let outcomes = whatif.evaluate_all(&scenarios);
        assert_eq!(outcomes[0].label, "narrow");
        assert_eq!(outcomes[1].label, "wide");
        assert!(outcomes[1].total_violations > outcomes[0].total_violations);
    }
}
