//! The compiled population: packed-lane, row-deduplicated provider
//! storage.
//!
//! [`crate::plan::CompiledAuditPlan`] (PR 2) compiled the *house* side of
//! the audit — policy tuples to dense rows, lattice coverage to id lists.
//! PR 4 compiled the provider side into flat structure-of-arrays storage;
//! this revision reworks that layout around two observations:
//!
//! * real populations cluster into a handful of preference segments
//!   (`qpv_synth::segments` models exactly this), so most providers'
//!   preference rows and datum sensitivities are *identical* — the
//!   [`RowTable`] interns each distinct (preference rows, datum row)
//!   combination **once**, with per-occurrence row references and
//!   refcounts as multiplicities. Segment-clustered populations shrink
//!   the scanned table ~#segments/N, and 10M+ providers fit hot in
//!   cache;
//! * the counts hot path ([`AuditEngine::counts`],
//!   [`AuditEngine::audit_many_policies`]) no longer walks per-provider
//!   `(attr, purpose, point)` structs: preference coordinates live in
//!   contiguous u32 *lanes* (`p_vis`/`p_gran`/`p_ret`, and a
//!   `slots × attrs` datum-lane table), which `crate::packed` evaluates
//!   branch-free over whole blocks — see `PackedScratch::pass`.
//!
//! Per-occurrence state is three u32/u64 arrays (`urow_of` — the interned
//! unique-row slot, `row_of` — the merged id-row for thresholds, and the
//! id itself); everything content-sized lives in the [`RowTable`].
//! Thresholds stay per-id (merged last-wins across duplicate occurrences,
//! matching [`crate::profile::assemble`]), and so does the datum row each
//! unique row embeds.
//!
//! Everything here is pinned bitwise-equal to
//! [`AuditEngine::run_reference`] by `tests/pop_equivalence.rs`.
//!
//! Populations are not frozen after compilation: a [`PopulationDelta`]
//! applies **in place** via [`CompiledPopulation::apply_delta`] — each op
//! re-interns the touched occurrence's unique row (intern-new then
//! release-old, so shared content is never copied) and the refcounted
//! table recycles dead slots and preference ranges through freelists.
//! Churny workloads therefore cost `O(changed)` per update instead of an
//! `O(N)` rebuild; `tests/delta_equivalence.rs` pins the delta path
//! byte-identical to a fresh compile of the mutated population, including
//! sequences that drive refcounts to zero and back.

use std::collections::HashMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::encoding::{get_varint, put_varint};
use qpv_reldb::error::{DbError, DbResult};
use qpv_taxonomy::{Dim, PrivacyPoint};

use crate::audit::{AuditEngine, AuditReport, ProviderAudit};
use crate::default_model::defaults;
use crate::intern::{HashIndex, SigHasher, SymbolTable};
use crate::packed::PackedScratch;
use crate::plan::{CompiledAuditPlan, PlanScratch};
use crate::probability::census_fraction;
use crate::profile::ProviderProfile;
use crate::sensitivity::DatumSensitivity;

/// One interned stated preference row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PrefRow {
    /// Population attribute id.
    pub(crate) attr: u32,
    /// Population purpose id.
    pub(crate) purpose: u32,
    /// The stated point.
    pub(crate) point: PrivacyPoint,
}

/// The deduplicated unique-row table: each distinct (ordered preference
/// rows, dense datum row) combination is stored once, in packed u32
/// lanes, with a refcount recording how many provider occurrences
/// reference it.
///
/// Invariants (checked by [`RowTable::validate`]):
/// * `refs[u] == 0` ⇔ slot `u` is dead: its `ranges[u] == (0, 0)`, it is
///   in `free_slots`, and it is absent from `lookup`;
/// * live slots carry `hashes[u] == hash_slot(u)` and are registered in
///   `lookup` under that hash;
/// * no two live slots have identical content (interning dedups);
/// * preference ranges of live slots and `free_pref` holes partition a
///   prefix-closed region of the lanes (never overlap).
#[derive(Debug, Clone, Default)]
pub(crate) struct RowTable {
    /// Datum-lane row width == the population's interned attribute count.
    stride: usize,
    // Preference lanes, indexed by the ranges below.
    p_attr: Vec<u32>,
    p_purpose: Vec<u32>,
    p_vis: Vec<u32>,
    p_gran: Vec<u32>,
    p_ret: Vec<u32>,
    /// Per-slot `[start, end)` preference range into the lanes.
    ranges: Vec<(u32, u32)>,
    /// Per-slot reference count == number of occurrences using the slot
    /// (the multiplicity the packed counts path aggregates by). 0 = dead.
    refs: Vec<u32>,
    /// Per-slot content fingerprint (stale for dead slots).
    hashes: Vec<u64>,
    // Datum lanes: `slot_count × stride`, row-major per slot.
    d_value: Vec<u32>,
    d_vis: Vec<u32>,
    d_gran: Vec<u32>,
    d_ret: Vec<u32>,
    /// Dead slots, reused LIFO by later interns.
    free_slots: Vec<u32>,
    /// Free `[start, end)` holes in the preference lanes, reused
    /// first-fit (not coalesced; churn at a steady size re-uses its own
    /// holes).
    free_pref: Vec<(u32, u32)>,
    /// Content-hash → slot lookup (deterministic hashing, so snapshots
    /// rebuild identical structures).
    lookup: HashIndex,
}

impl RowTable {
    pub(crate) fn stride(&self) -> usize {
        self.stride
    }

    /// Total slots, live and dead (the packed pass iterates all of them;
    /// dead slots aggregate with multiplicity 0).
    pub(crate) fn slot_count(&self) -> usize {
        self.refs.len()
    }

    /// Live (referenced) unique rows.
    pub(crate) fn live_slots(&self) -> usize {
        self.refs.iter().filter(|&&r| r > 0).count()
    }

    /// Total preference rows across live unique rows.
    pub(crate) fn live_pref_rows(&self) -> usize {
        self.refs
            .iter()
            .zip(&self.ranges)
            .filter(|(&r, _)| r > 0)
            .map(|(_, &(s, e))| (e - s) as usize)
            .sum()
    }

    /// Length of the preference lanes (including holes).
    pub(crate) fn pref_lane_len(&self) -> usize {
        self.p_attr.len()
    }

    pub(crate) fn refs_slice(&self) -> &[u32] {
        &self.refs
    }

    pub(crate) fn ranges_slice(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// `(attr, purpose, vis, gran, ret)` preference lanes.
    #[allow(clippy::type_complexity)]
    pub(crate) fn pref_lanes(&self) -> (&[u32], &[u32], &[u32], &[u32], &[u32]) {
        (
            &self.p_attr,
            &self.p_purpose,
            &self.p_vis,
            &self.p_gran,
            &self.p_ret,
        )
    }

    /// `(value, vis, gran, ret)` datum lanes, `slot_count × stride`.
    pub(crate) fn datum_lanes(&self) -> (&[u32], &[u32], &[u32], &[u32]) {
        (&self.d_value, &self.d_vis, &self.d_gran, &self.d_ret)
    }

    /// The preference rows of slot `u`, materialized on the fly.
    pub(crate) fn pref_rows(&self, u: usize) -> impl Iterator<Item = PrefRow> + '_ {
        let (s, e) = self.ranges[u];
        (s as usize..e as usize).map(move |j| PrefRow {
            attr: self.p_attr[j],
            purpose: self.p_purpose[j],
            point: PrivacyPoint::from_raw(self.p_vis[j], self.p_gran[j], self.p_ret[j]),
        })
    }

    /// The datum sensitivity of slot `u` for a population attribute id.
    pub(crate) fn datum(&self, u: usize, attr: u32) -> DatumSensitivity {
        let d = u * self.stride + attr as usize;
        DatumSensitivity::new(
            self.d_value[d],
            self.d_vis[d],
            self.d_gran[d],
            self.d_ret[d],
        )
    }

    /// Copy slot `u`'s dense datum row into `out` (resized to `stride`).
    pub(crate) fn copy_datums(&self, u: usize, out: &mut Vec<DatumSensitivity>) {
        out.clear();
        let base = u * self.stride;
        out.extend((0..self.stride).map(|k| {
            DatumSensitivity::new(
                self.d_value[base + k],
                self.d_vis[base + k],
                self.d_gran[base + k],
                self.d_ret[base + k],
            )
        }));
    }

    fn hash_sig(prefs: &[PrefRow], datums: &[DatumSensitivity]) -> u64 {
        let mut h = SigHasher::new();
        h.push(prefs.len() as u32);
        for r in prefs {
            h.push(r.attr);
            h.push(r.purpose);
            h.push(r.point.get(Dim::Visibility));
            h.push(r.point.get(Dim::Granularity));
            h.push(r.point.get(Dim::Retention));
        }
        for d in datums {
            h.push(d.value);
            h.push(d.visibility);
            h.push(d.granularity);
            h.push(d.retention);
        }
        h.finish()
    }

    /// Recompute `hash_sig` from the lanes — the exact same word
    /// sequence, so interning and rebuilt indexes agree bit-for-bit.
    fn hash_slot(&self, u: usize) -> u64 {
        let (s, e) = self.ranges[u];
        let mut h = SigHasher::new();
        h.push(e - s);
        for j in s as usize..e as usize {
            h.push(self.p_attr[j]);
            h.push(self.p_purpose[j]);
            h.push(self.p_vis[j]);
            h.push(self.p_gran[j]);
            h.push(self.p_ret[j]);
        }
        let base = u * self.stride;
        for k in 0..self.stride {
            h.push(self.d_value[base + k]);
            h.push(self.d_vis[base + k]);
            h.push(self.d_gran[base + k]);
            h.push(self.d_ret[base + k]);
        }
        h.finish()
    }

    fn matches(&self, u: u32, prefs: &[PrefRow], datums: &[DatumSensitivity]) -> bool {
        let us = u as usize;
        if self.refs[us] == 0 {
            return false;
        }
        let (s, e) = self.ranges[us];
        if (e - s) as usize != prefs.len() {
            return false;
        }
        for (j, r) in prefs.iter().enumerate() {
            let idx = s as usize + j;
            if self.p_attr[idx] != r.attr
                || self.p_purpose[idx] != r.purpose
                || self.p_vis[idx] != r.point.get(Dim::Visibility)
                || self.p_gran[idx] != r.point.get(Dim::Granularity)
                || self.p_ret[idx] != r.point.get(Dim::Retention)
            {
                return false;
            }
        }
        let base = us * self.stride;
        for (k, d) in datums.iter().enumerate() {
            if self.d_value[base + k] != d.value
                || self.d_vis[base + k] != d.visibility
                || self.d_gran[base + k] != d.granularity
                || self.d_ret[base + k] != d.retention
            {
                return false;
            }
        }
        true
    }

    /// Allocate a preference range out of the freelist — an exact-length
    /// hole if one exists (so churn that re-interns the same shapes lands
    /// back on a stable footprint instead of fragmenting), else first-fit
    /// split of a larger hole, else append to the lane tails — and write
    /// `prefs` into it.
    fn alloc_pref(&mut self, prefs: &[PrefRow]) -> (u32, u32) {
        let k = prefs.len() as u32;
        if k == 0 {
            return (0, 0);
        }
        let fit = self
            .free_pref
            .iter()
            .position(|&(fs, fe)| fe - fs == k)
            .or_else(|| self.free_pref.iter().position(|&(fs, fe)| fe - fs >= k));
        let s = if let Some(pos) = fit {
            let (fs, fe) = self.free_pref[pos];
            if fe - fs == k {
                self.free_pref.swap_remove(pos);
            } else {
                self.free_pref[pos] = (fs + k, fe);
            }
            fs
        } else {
            let start = self.p_attr.len() as u32;
            let new_len = start as usize + k as usize;
            self.p_attr.resize(new_len, 0);
            self.p_purpose.resize(new_len, 0);
            self.p_vis.resize(new_len, 0);
            self.p_gran.resize(new_len, 0);
            self.p_ret.resize(new_len, 0);
            start
        };
        for (j, r) in prefs.iter().enumerate() {
            let idx = s as usize + j;
            self.p_attr[idx] = r.attr;
            self.p_purpose[idx] = r.purpose;
            self.p_vis[idx] = r.point.get(Dim::Visibility);
            self.p_gran[idx] = r.point.get(Dim::Granularity);
            self.p_ret[idx] = r.point.get(Dim::Retention);
        }
        (s, s + k)
    }

    /// Intern a (preference rows, dense datum row) combination: bump the
    /// refcount of an existing identical slot, or claim a dead slot (else
    /// append one) and write the content. `datums.len()` must equal the
    /// current stride.
    pub(crate) fn intern(&mut self, prefs: &[PrefRow], datums: &[DatumSensitivity]) -> u32 {
        debug_assert_eq!(datums.len(), self.stride);
        let h = Self::hash_sig(prefs, datums);
        if let Some(u) = self.lookup.find(h, |u| self.matches(u, prefs, datums)) {
            self.refs[u as usize] += 1;
            return u;
        }
        let range = self.alloc_pref(prefs);
        let u = match self.free_slots.pop() {
            Some(u) => {
                let us = u as usize;
                self.ranges[us] = range;
                self.refs[us] = 1;
                self.hashes[us] = h;
                let base = us * self.stride;
                for (k, d) in datums.iter().enumerate() {
                    self.d_value[base + k] = d.value;
                    self.d_vis[base + k] = d.visibility;
                    self.d_gran[base + k] = d.granularity;
                    self.d_ret[base + k] = d.retention;
                }
                u
            }
            None => {
                let u = self.refs.len() as u32;
                self.ranges.push(range);
                self.refs.push(1);
                self.hashes.push(h);
                for d in datums {
                    self.d_value.push(d.value);
                    self.d_vis.push(d.visibility);
                    self.d_gran.push(d.granularity);
                    self.d_ret.push(d.retention);
                }
                u
            }
        };
        self.lookup.insert(h, u);
        u
    }

    /// Drop one reference to slot `u`; at zero the slot dies — its
    /// preference range and the slot itself go onto the freelists and it
    /// leaves the lookup.
    pub(crate) fn release(&mut self, u: u32) {
        let us = u as usize;
        debug_assert!(self.refs[us] > 0, "releasing a dead slot");
        self.refs[us] -= 1;
        if self.refs[us] == 0 {
            self.lookup.remove(self.hashes[us], u);
            let (s, e) = self.ranges[us];
            if s < e {
                self.free_pref.push((s, e));
            }
            self.ranges[us] = (0, 0);
            self.free_slots.push(u);
        }
    }

    /// Re-stride the datum lanes after the attribute table grew (new
    /// columns neutral everywhere — no provider can have set a
    /// sensitivity for an attribute that was just interned), then rebuild
    /// hashes and lookup: the datum row is part of each slot's signature,
    /// so the stride change invalidates every fingerprint.
    pub(crate) fn grow(&mut self, new_stride: usize) {
        if new_stride == self.stride {
            return;
        }
        debug_assert!(new_stride > self.stride, "attribute ids are append-only");
        let slots = self.refs.len();
        self.d_value = restride(&self.d_value, slots, self.stride, new_stride, 1);
        self.d_vis = restride(&self.d_vis, slots, self.stride, new_stride, 1);
        self.d_gran = restride(&self.d_gran, slots, self.stride, new_stride, 1);
        self.d_ret = restride(&self.d_ret, slots, self.stride, new_stride, 1);
        self.stride = new_stride;
        self.rebuild_index();
    }

    /// Recompute every live slot's hash and re-register it (decode path
    /// and stride growth).
    pub(crate) fn rebuild_index(&mut self) {
        self.lookup.clear();
        for u in 0..self.refs.len() {
            if self.refs[u] > 0 {
                let h = self.hash_slot(u);
                self.hashes[u] = h;
                self.lookup.insert(h, u as u32);
            }
        }
    }

    /// Estimated resident bytes of the table (lanes + per-slot metadata +
    /// an allowance for the lookup map).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.pref_lane_len() * 4 * 5
            + self.ranges.len() * 8
            + self.refs.len() * 4
            + self.hashes.len() * 8
            + self.d_value.len() * 4 * 4
            + self.free_slots.len() * 4
            + self.free_pref.len() * 8
            + self.live_slots() * 48
    }

    fn slots_identical(&self, a: usize, b: usize) -> bool {
        let (sa, ea) = self.ranges[a];
        let (sb, eb) = self.ranges[b];
        if ea - sa != eb - sb {
            return false;
        }
        for j in 0..(ea - sa) as usize {
            let (ja, jb) = (sa as usize + j, sb as usize + j);
            if self.p_attr[ja] != self.p_attr[jb]
                || self.p_purpose[ja] != self.p_purpose[jb]
                || self.p_vis[ja] != self.p_vis[jb]
                || self.p_gran[ja] != self.p_gran[jb]
                || self.p_ret[ja] != self.p_ret[jb]
            {
                return false;
            }
        }
        let (ba, bb) = (a * self.stride, b * self.stride);
        for k in 0..self.stride {
            if self.d_value[ba + k] != self.d_value[bb + k]
                || self.d_vis[ba + k] != self.d_vis[bb + k]
                || self.d_gran[ba + k] != self.d_gran[bb + k]
                || self.d_ret[ba + k] != self.d_ret[bb + k]
            {
                return false;
            }
        }
        true
    }

    /// Assert every structural invariant (tests and
    /// [`CompiledPopulation::debug_validate`]; O(table²) worst case on
    /// the hash-collision check, so keep it out of hot paths).
    pub(crate) fn validate(&self, na: usize, np: usize) {
        let slots = self.refs.len();
        assert_eq!(self.ranges.len(), slots);
        assert_eq!(self.hashes.len(), slots);
        assert_eq!(self.d_value.len(), slots * self.stride);
        assert_eq!(self.d_vis.len(), slots * self.stride);
        assert_eq!(self.d_gran.len(), slots * self.stride);
        assert_eq!(self.d_ret.len(), slots * self.stride);
        let lane_len = self.p_attr.len();
        assert_eq!(self.p_purpose.len(), lane_len);
        assert_eq!(self.p_vis.len(), lane_len);
        assert_eq!(self.p_gran.len(), lane_len);
        assert_eq!(self.p_ret.len(), lane_len);
        for u in 0..slots {
            let (s, e) = self.ranges[u];
            assert!(s <= e && e as usize <= lane_len, "range in bounds");
            if self.refs[u] > 0 {
                assert_eq!(self.hashes[u], self.hash_slot(u), "stale hash");
                assert!(
                    self.lookup.contains(self.hashes[u], u as u32),
                    "live slot registered"
                );
                for j in s as usize..e as usize {
                    assert!((self.p_attr[j] as usize) < na, "pref attr in bounds");
                    assert!((self.p_purpose[j] as usize) < np, "pref purpose in bounds");
                }
            } else {
                assert_eq!(self.ranges[u], (0, 0), "dead slot range cleared");
                assert!(
                    self.free_slots.contains(&(u as u32)),
                    "dead slot on freelist"
                );
                assert!(
                    !self.lookup.contains(self.hashes[u], u as u32),
                    "dead slot deregistered"
                );
            }
        }
        for &(s, e) in &self.free_pref {
            assert!(s < e && e as usize <= lane_len, "free range in bounds");
        }
        for a in 0..slots {
            for b in a + 1..slots {
                if self.refs[a] > 0 && self.refs[b] > 0 && self.hashes[a] == self.hashes[b] {
                    assert!(
                        !self.slots_identical(a, b),
                        "live slots {a} and {b} are duplicates"
                    );
                }
            }
        }
    }
}

/// Copy `slots` rows of width `old` into rows of width `new ≥ old`,
/// filling the fresh tail columns with `fill`.
fn restride(lane: &[u32], slots: usize, old: usize, new: usize, fill: u32) -> Vec<u32> {
    let mut out = vec![fill; slots * new];
    for r in 0..slots {
        out[r * new..r * new + old].copy_from_slice(&lane[r * old..(r + 1) * old]);
    }
    out
}

/// A whole population interned into packed, row-deduplicated storage.
/// Build once ([`CompiledPopulation::from_profiles`], a
/// [`PopulationBuilder`], or `Ppdb::compiled_population`), audit many
/// times — see the module docs.
#[derive(Debug, Clone)]
pub struct CompiledPopulation {
    /// Every attribute name stated in a preference or carrying a datum
    /// sensitivity, interned once for the whole population.
    attrs: SymbolTable,
    /// Every stated purpose name, interned once.
    purposes: SymbolTable,
    /// Provider ids, one per *occurrence*, in input order.
    ids: Vec<ProviderId>,
    /// Occurrence index → unique-row slot in `table`. Preferences are
    /// per-occurrence: when an id occurs twice with different stated
    /// preferences, each occurrence references its own unique row.
    urow_of: Vec<u32>,
    /// Occurrence index → merged id-row index into `thresholds`.
    /// Thresholds (and the datum row baked into each unique row) are
    /// per-*id*, merged last-wins across occurrences, matching
    /// [`crate::profile::assemble`].
    row_of: Vec<u32>,
    /// The deduplicated unique-row table.
    table: RowTable,
    /// Per id-row default threshold `v_i` (last occurrence wins).
    thresholds: Vec<u64>,
    /// Bumped once per applied delta; lets downstream caches (plan
    /// bindings, auditors, reports) detect staleness cheaply.
    epoch: u64,
    /// id → occurrence index, the delta-addressing map, built lazily on
    /// first use (10M-provider audit-only populations never pay for it).
    /// `Some(None)`-equivalent inner `None` marks a population that
    /// interned some id more than once: "the provider with id X" is then
    /// ambiguous and [`CompiledPopulation::apply_delta`] refuses to run.
    index: OnceLock<Option<HashMap<ProviderId, u32>>>,
    /// Free merged id-rows (one `thresholds` slot each), reused by later
    /// delta inserts.
    free_rows: Vec<u32>,
}

impl CompiledPopulation {
    /// Intern a whole population in one pass.
    pub fn from_profiles(profiles: &[ProviderProfile]) -> CompiledPopulation {
        let mut b = PopulationBuilder::new();
        for p in profiles {
            b.push_profile(p);
        }
        b.finish()
    }

    /// Number of provider occurrences (the audit's `N`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of occurrence `i`.
    pub fn id(&self, i: usize) -> ProviderId {
        self.ids[i]
    }

    /// The resolved (merged, last-wins) threshold for occurrence `i`.
    pub fn threshold_of(&self, i: usize) -> u64 {
        self.thresholds[self.row_of[i] as usize]
    }

    /// Total live preference rows across the *unique-row table* — the
    /// rows an audit pass actually scans. Duplicate providers share rows,
    /// so this is ≤ the sum of per-occurrence statement counts.
    pub fn pref_row_count(&self) -> usize {
        self.table.live_pref_rows()
    }

    /// Live unique (preference rows, datum row) combinations.
    pub fn unique_row_count(&self) -> usize {
        self.table.live_slots()
    }

    /// Occurrences per unique row: `len() / unique_row_count()` (1.0 for
    /// the empty population). ~#providers/#segments on clustered data.
    pub fn dedup_ratio(&self) -> f64 {
        let u = self.unique_row_count();
        if u == 0 {
            1.0
        } else {
            self.len() as f64 / u as f64
        }
    }

    /// Estimated resident bytes of the compiled state: per-occurrence
    /// arrays + thresholds + the unique-row table + the delta index if it
    /// has been built.
    pub fn resident_bytes(&self) -> usize {
        let idx = match self.index.get() {
            Some(Some(m)) => m.len() * 48,
            _ => 0,
        };
        self.ids.len() * (8 + 4 + 4)
            + self.thresholds.len() * 8
            + self.free_rows.len() * 4
            + self.table.resident_bytes()
            + idx
    }

    /// Number of distinct interned attribute / purpose names.
    pub fn symbol_counts(&self) -> (usize, usize) {
        (self.attrs.len(), self.purposes.len())
    }

    /// The interned preference rows of occurrence `i`.
    pub(crate) fn pref_rows_of(&self, i: usize) -> impl Iterator<Item = PrefRow> + '_ {
        self.table.pref_rows(self.urow_of[i] as usize)
    }

    /// The merged datum sensitivity of occurrence `i` for a population
    /// attribute id.
    pub(crate) fn datum(&self, i: usize, attr: u32) -> DatumSensitivity {
        self.table.datum(self.urow_of[i] as usize, attr)
    }

    /// The population-side symbol tables (attributes, purposes).
    pub(crate) fn symbols(&self) -> (&SymbolTable, &SymbolTable) {
        (&self.attrs, &self.purposes)
    }

    /// The unique-row table (packed evaluation reads the lanes directly).
    pub(crate) fn table(&self) -> &RowTable {
        &self.table
    }

    /// Occurrence → unique-row slot.
    pub(crate) fn urows(&self) -> &[u32] {
        &self.urow_of
    }

    /// Occurrence → id-row.
    pub(crate) fn rows(&self) -> &[u32] {
        &self.row_of
    }

    /// Per id-row thresholds.
    pub(crate) fn thresholds_slice(&self) -> &[u64] {
        &self.thresholds
    }

    /// Assert the full cross-structure invariant set: refcounts equal the
    /// number of occurrences referencing each slot, all references are in
    /// bounds, and the table's own invariants hold. Test/debug aid; not
    /// part of the public API contract.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let n = self.ids.len();
        assert_eq!(self.urow_of.len(), n);
        assert_eq!(self.row_of.len(), n);
        let mut derived = vec![0u32; self.table.slot_count()];
        for &u in &self.urow_of {
            derived[u as usize] += 1;
        }
        assert_eq!(
            derived,
            self.table.refs_slice(),
            "refcounts == occurrence references"
        );
        for &r in self.row_of.iter().chain(&self.free_rows) {
            assert!((r as usize) < self.thresholds.len(), "id-row in bounds");
        }
        assert_eq!(self.table.stride(), self.attrs.len(), "stride == attrs");
        self.table.validate(self.attrs.len(), self.purposes.len());
    }

    /// Translate this population's symbol ids to a plan's. Two array
    /// probes replace two hash lookups per preference row in the hot
    /// loop; build once per (population, plan) pair.
    pub(crate) fn bind(&self, plan: &CompiledAuditPlan) -> PlanBinding {
        PlanBinding {
            attr_to_plan: self
                .attrs
                .names()
                .iter()
                .map(|n| plan.attrs.get(n).unwrap_or(u32::MAX))
                .collect(),
            purpose_to_plan: self
                .purposes
                .names()
                .iter()
                .map(|n| plan.purposes.get(n).unwrap_or(u32::MAX))
                .collect(),
            plan_attr_to_pop: plan
                .attrs
                .names()
                .iter()
                .map(|n| self.attrs.get(n))
                .collect(),
        }
    }

    /// Index occurrence `i` into the plan-shaped scratch: the per-provider
    /// equivalent of `CompiledAuditPlan::index_profile`, with the string
    /// hashing replaced by binding-array probes. Semantics are identical:
    /// flat mode keeps the first stated tuple per `(attr, purpose)`,
    /// lattice mode joins all of them, rows naming symbols the plan never
    /// interned are skipped, and datum slots for plan attributes the
    /// population never saw stay neutral (no provider can have set them).
    fn index_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) {
        let np = plan.purposes.len();
        let epoch = plan.prepare_scratch(scratch);
        for row in self.pref_rows_of(i) {
            let a = binding.attr_to_plan[row.attr as usize];
            if a == u32::MAX {
                continue;
            }
            let p = binding.purpose_to_plan[row.purpose as usize];
            if p == u32::MAX {
                continue;
            }
            let slot = &mut scratch.slots[a as usize * np + p as usize];
            if slot.epoch != epoch {
                slot.epoch = epoch;
                slot.point = row.point;
            } else if plan.lattice_mode {
                slot.point = slot.point.join(&row.point);
            }
        }
        for (a, pop_attr) in binding.plan_attr_to_pop.iter().enumerate() {
            scratch.datums[a] = match pop_attr {
                Some(pa) => self.datum(i, *pa),
                None => DatumSensitivity::neutral(),
            };
        }
    }

    /// Fully audit occurrence `i` (witnesses resolved from the symbol
    /// tables).
    pub(crate) fn audit_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) -> ProviderAudit {
        self.index_provider(plan, binding, i, scratch);
        let mut wit = Vec::new();
        let (score, _) = plan.eval_scratch(scratch, Some(&mut wit));
        let threshold = self.threshold_of(i);
        ProviderAudit {
            provider: self.ids[i],
            violated: !wit.is_empty(),
            score,
            threshold,
            defaulted: defaults(score, threshold),
            witnesses: wit,
        }
    }

    /// The population epoch: 0 at compile time, +1 per applied delta.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The delta-addressing map, built on first use. Inner `None` marks a
    /// duplicate-occurrence population (audit-only).
    fn index_map(&self) -> Option<&HashMap<ProviderId, u32>> {
        self.index
            .get_or_init(|| {
                let mut m = HashMap::with_capacity(self.ids.len());
                for (i, &id) in self.ids.iter().enumerate() {
                    if m.insert(id, i as u32).is_some() {
                        return None;
                    }
                }
                Some(m)
            })
            .as_ref()
    }

    /// Mutable delta-addressing map; only called after `index_map`
    /// confirmed uniqueness in `apply_delta`.
    fn index_mut(&mut self) -> &mut HashMap<ProviderId, u32> {
        self.index
            .get_mut()
            .expect("initialized by index_map")
            .as_mut()
            .expect("checked unique in apply_delta")
    }

    /// Apply a delta in place, recycling freed unique-row slots and
    /// preference ranges and bumping the epoch. Returns the
    /// per-occurrence event log an
    /// [`crate::incremental::IncrementalAuditor`] replays to patch its
    /// own state.
    ///
    /// Semantics (mirrored exactly by
    /// [`PopulationDelta::apply_to_profiles`], which is the oracle the
    /// equivalence suite compares against):
    ///
    /// * upserting a known id replaces that occurrence wholesale and
    ///   keeps its position; upserting an unknown id appends;
    /// * removal is `swap_remove` — the last occurrence moves into the
    ///   freed slot (O(1), order is deterministic but not stable);
    /// * preference edits replace every tuple naming the attribute,
    ///   appending the new tuples after the untouched ones;
    /// * ops naming an unknown id are no-ops, like
    ///   [`PopulationBuilder::set_sensitivity`] on the scan path — but
    ///   counted into [`DeltaOutcome::skipped`] rather than dropped
    ///   silently, so callers can tell "applied cleanly" from "some edits
    ///   bound to nothing".
    ///
    /// Every mutation is intern-new-then-release-old on the unique-row
    /// table: content shared with other providers is never copied or
    /// disturbed, and a slot whose refcount hits zero goes onto the
    /// freelist for the next intern — so steady-state churn is
    /// `O(changed)` with no table growth.
    ///
    /// Errs on populations that interned the same id twice (Assumption 5
    /// of the paper — one data row per provider — is what makes id-based
    /// addressing well-defined); those stay audit-only.
    pub fn apply_delta(&mut self, delta: &PopulationDelta) -> Result<DeltaOutcome, DeltaError> {
        if self.index_map().is_none() {
            return Err(DeltaError::DuplicateOccurrences(self.first_duplicate()));
        }
        let mut events = Vec::with_capacity(delta.ops().len());
        let mut skipped = 0u64;
        for op in delta.ops() {
            let applied = match op {
                DeltaOp::Upsert(p) => {
                    self.apply_upsert(p, &mut events);
                    true
                }
                DeltaOp::Remove(id) => self.apply_remove(*id, &mut events),
                DeltaOp::SetAttributePrefs {
                    id,
                    attribute,
                    tuples,
                } => self.apply_set_prefs(*id, attribute, tuples, &mut events),
                DeltaOp::SetSensitivity {
                    id,
                    attribute,
                    sensitivity,
                } => self.apply_set_sensitivity(*id, attribute, *sensitivity, &mut events),
                DeltaOp::SetThreshold { id, threshold } => {
                    self.apply_set_threshold(*id, *threshold, &mut events)
                }
            };
            if !applied {
                skipped += 1;
            }
        }
        self.epoch += 1;
        Ok(DeltaOutcome {
            epoch: self.epoch,
            events,
            skipped,
        })
    }

    /// The occurrence index of a provider id, when deltas are available.
    pub fn occurrence_of(&self, id: ProviderId) -> Option<usize> {
        self.index_map()
            .and_then(|ix| ix.get(&id).map(|&i| i as usize))
    }

    fn first_duplicate(&self) -> ProviderId {
        let mut seen = std::collections::HashSet::new();
        for &id in &self.ids {
            if !seen.insert(id) {
                return id;
            }
        }
        unreachable!("index is None only when an id occurs twice")
    }

    /// Grow the datum-lane stride to the current attribute count (no-op
    /// when nothing was interned since the last sync).
    fn sync_stride(&mut self) {
        let na = self.attrs.len();
        if na != self.table.stride() {
            self.table.grow(na);
        }
    }

    fn apply_upsert(&mut self, p: &ProviderProfile, events: &mut Vec<DeltaEvent>) {
        let mut prefs = Vec::with_capacity(p.preferences.tuples().len());
        for t in p.preferences.tuples() {
            prefs.push(PrefRow {
                attr: self.attrs.intern(&t.attribute),
                purpose: self.purposes.intern(t.tuple.purpose.name()),
                point: t.tuple.point,
            });
        }
        for attr in p.sensitivities.keys() {
            self.attrs.intern(attr);
        }
        self.sync_stride();
        let na = self.attrs.len();
        let mut datums = vec![DatumSensitivity::neutral(); na];
        for (attr, s) in &p.sensitivities {
            datums[self.attrs.get(attr).expect("interned above") as usize] = *s;
        }
        let id = p.id();
        match self.occurrence_of(id) {
            Some(i) => {
                let new_u = self.table.intern(&prefs, &datums);
                let old_u = self.urow_of[i];
                self.table.release(old_u);
                self.urow_of[i] = new_u;
                self.thresholds[self.row_of[i] as usize] = p.threshold;
                events.push(DeltaEvent::Touched(i as u32));
            }
            None => {
                let u = self.table.intern(&prefs, &datums);
                let row = match self.free_rows.pop() {
                    Some(r) => {
                        self.thresholds[r as usize] = p.threshold;
                        r
                    }
                    None => {
                        self.thresholds.push(p.threshold);
                        (self.thresholds.len() - 1) as u32
                    }
                };
                let i = self.ids.len() as u32;
                self.ids.push(id);
                self.urow_of.push(u);
                self.row_of.push(row);
                self.index_mut().insert(id, i);
                events.push(DeltaEvent::Appended(i));
            }
        }
    }

    fn apply_remove(&mut self, id: ProviderId, events: &mut Vec<DeltaEvent>) -> bool {
        let Some(i) = self.index_mut().remove(&id) else {
            return false;
        };
        let i_us = i as usize;
        self.table.release(self.urow_of[i_us]);
        self.free_rows.push(self.row_of[i_us]);
        self.ids.swap_remove(i_us);
        self.urow_of.swap_remove(i_us);
        self.row_of.swap_remove(i_us);
        if i_us < self.ids.len() {
            let moved = self.ids[i_us];
            self.index_mut().insert(moved, i);
        }
        events.push(DeltaEvent::Removed(i));
        true
    }

    fn apply_set_prefs(
        &mut self,
        id: ProviderId,
        attribute: &str,
        tuples: &[qpv_taxonomy::PrivacyTuple],
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        let a = self.attrs.intern(attribute);
        let mut prefs: Vec<PrefRow> = self.pref_rows_of(i).filter(|r| r.attr != a).collect();
        for t in tuples {
            prefs.push(PrefRow {
                attr: a,
                purpose: self.purposes.intern(t.purpose.name()),
                point: t.point,
            });
        }
        self.sync_stride();
        let mut datums = Vec::new();
        self.table
            .copy_datums(self.urow_of[i] as usize, &mut datums);
        let new_u = self.table.intern(&prefs, &datums);
        self.table.release(self.urow_of[i]);
        self.urow_of[i] = new_u;
        events.push(DeltaEvent::Touched(i as u32));
        true
    }

    fn apply_set_sensitivity(
        &mut self,
        id: ProviderId,
        attribute: &str,
        s: DatumSensitivity,
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        let a = self.attrs.intern(attribute) as usize;
        self.sync_stride();
        let u = self.urow_of[i] as usize;
        let mut datums = Vec::new();
        self.table.copy_datums(u, &mut datums);
        datums[a] = s;
        let prefs: Vec<PrefRow> = self.table.pref_rows(u).collect();
        let new_u = self.table.intern(&prefs, &datums);
        self.table.release(self.urow_of[i]);
        self.urow_of[i] = new_u;
        events.push(DeltaEvent::Touched(i as u32));
        true
    }

    fn apply_set_threshold(
        &mut self,
        id: ProviderId,
        threshold: u64,
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        self.thresholds[self.row_of[i] as usize] = threshold;
        events.push(DeltaEvent::Touched(i as u32));
        true
    }
}

/// One mutation in a [`PopulationDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert a provider, or replace the existing occurrence of its id
    /// wholesale (preferences, sensitivities, threshold).
    Upsert(ProviderProfile),
    /// Remove a provider (`swap_remove` semantics; unknown ids no-op).
    Remove(ProviderId),
    /// Replace every stated preference tuple naming `attribute` with
    /// `tuples` (appended after the provider's untouched tuples).
    SetAttributePrefs {
        /// The provider to edit.
        id: ProviderId,
        /// The attribute whose tuples are replaced.
        attribute: String,
        /// The new tuples for that attribute (may be empty = retract).
        tuples: Vec<qpv_taxonomy::PrivacyTuple>,
    },
    /// Overwrite one datum sensitivity.
    SetSensitivity {
        /// The provider to edit.
        id: ProviderId,
        /// The datum's attribute.
        attribute: String,
        /// The new sensitivity.
        sensitivity: DatumSensitivity,
    },
    /// Overwrite the provider's default threshold `v_i`.
    SetThreshold {
        /// The provider to edit.
        id: ProviderId,
        /// The new threshold.
        threshold: u64,
    },
}

/// An ordered batch of population mutations, applied atomically by
/// [`CompiledPopulation::apply_delta`] (one epoch bump per batch).
/// Produced by hand, by `Ppdb`'s write ops, or by
/// `qpv_synth::workload::churn`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PopulationDelta {
    ops: Vec<DeltaOp>,
}

impl PopulationDelta {
    /// An empty delta.
    pub fn new() -> PopulationDelta {
        PopulationDelta::default()
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append one op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Append every op of `other`, in order.
    pub fn merge(&mut self, other: PopulationDelta) {
        self.ops.extend(other.ops);
    }

    /// Drop the first `n` ops (clamped to the length) — the consumer side
    /// of `Ppdb`'s peek/ack protocol, called once those ops are safely
    /// applied downstream.
    pub fn drain_front(&mut self, n: usize) {
        self.ops.drain(..n.min(self.ops.len()));
    }

    /// Builder-style [`DeltaOp::Upsert`].
    pub fn upsert(mut self, profile: ProviderProfile) -> PopulationDelta {
        self.ops.push(DeltaOp::Upsert(profile));
        self
    }

    /// Builder-style [`DeltaOp::Remove`].
    pub fn remove(mut self, id: ProviderId) -> PopulationDelta {
        self.ops.push(DeltaOp::Remove(id));
        self
    }

    /// Builder-style [`DeltaOp::SetAttributePrefs`].
    pub fn set_attribute_prefs(
        mut self,
        id: ProviderId,
        attribute: impl Into<String>,
        tuples: Vec<qpv_taxonomy::PrivacyTuple>,
    ) -> PopulationDelta {
        self.ops.push(DeltaOp::SetAttributePrefs {
            id,
            attribute: attribute.into(),
            tuples,
        });
        self
    }

    /// Builder-style [`DeltaOp::SetSensitivity`].
    pub fn set_sensitivity(
        mut self,
        id: ProviderId,
        attribute: impl Into<String>,
        sensitivity: DatumSensitivity,
    ) -> PopulationDelta {
        self.ops.push(DeltaOp::SetSensitivity {
            id,
            attribute: attribute.into(),
            sensitivity,
        });
        self
    }

    /// Builder-style [`DeltaOp::SetThreshold`].
    pub fn set_threshold(mut self, id: ProviderId, threshold: u64) -> PopulationDelta {
        self.ops.push(DeltaOp::SetThreshold { id, threshold });
        self
    }

    /// Apply the same mutations to a plain profile list — the model-side
    /// mirror of [`CompiledPopulation::apply_delta`], including the
    /// `swap_remove` ordering, so
    /// `CompiledPopulation::from_profiles(&mutated)` audits byte-identical
    /// to the delta-applied population. Assumes unique provider ids, like
    /// the compiled path (ops bind to the first matching profile).
    pub fn apply_to_profiles(&self, profiles: &mut Vec<ProviderProfile>) {
        for op in &self.ops {
            match op {
                DeltaOp::Upsert(p) => match profiles.iter().position(|q| q.id() == p.id()) {
                    Some(i) => profiles[i] = p.clone(),
                    None => profiles.push(p.clone()),
                },
                DeltaOp::Remove(id) => {
                    if let Some(i) = profiles.iter().position(|q| q.id() == *id) {
                        profiles.swap_remove(i);
                    }
                }
                DeltaOp::SetAttributePrefs {
                    id,
                    attribute,
                    tuples,
                } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        let mut prefs = qpv_policy::ProviderPreferences::new(*id);
                        for t in q.preferences.tuples() {
                            if t.attribute != *attribute {
                                prefs.add(t.attribute.clone(), t.tuple.clone());
                            }
                        }
                        for t in tuples {
                            prefs.add(attribute.clone(), t.clone());
                        }
                        q.preferences = prefs;
                    }
                }
                DeltaOp::SetSensitivity {
                    id,
                    attribute,
                    sensitivity,
                } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        q.sensitivities.insert(attribute.clone(), *sensitivity);
                    }
                }
                DeltaOp::SetThreshold { id, threshold } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        q.threshold = *threshold;
                    }
                }
            }
        }
    }
}

/// Why [`CompiledPopulation::apply_delta`] refused a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The population interned this provider id more than once, so
    /// id-based delta addressing is ambiguous. Rebuild duplicate-free
    /// (or keep auditing it batch-style — audits are unaffected).
    DuplicateOccurrences(ProviderId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DuplicateOccurrences(id) => write!(
                f,
                "provider id {} occurs more than once; deltas address providers by id",
                id.0
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// One occurrence-level effect of an applied delta, in application
/// order. Indices are positions *at the time the event fired* — replay
/// them in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeltaEvent {
    /// Occurrence `i` changed in place: re-score it.
    Touched(u32),
    /// A fresh occurrence appeared at index `i` (the then-end).
    Appended(u32),
    /// Occurrence `i` was removed; the then-last occurrence (if any)
    /// moved into slot `i` (`swap_remove`).
    Removed(u32),
}

/// The event log of one [`CompiledPopulation::apply_delta`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The population epoch after application.
    pub epoch: u64,
    events: Vec<DeltaEvent>,
    /// Ops that named an unknown provider id and therefore bound to
    /// nothing. The mutation semantics match
    /// [`PopulationDelta::apply_to_profiles`] either way (unknown-id
    /// edits are no-ops on both paths); the count exists so callers can
    /// detect a delta that partially missed — e.g. one replayed against
    /// the wrong snapshot — instead of the misses vanishing silently.
    pub skipped: u64,
}

impl DeltaOutcome {
    pub(crate) fn events(&self) -> &[DeltaEvent] {
        &self.events
    }

    /// Number of per-occurrence events the delta produced (an upper
    /// bound on distinct touched providers).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the delta touched nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Population → plan symbol-id translation arrays. `u32::MAX` marks a
/// population symbol the plan never interned (no policy row can match it).
#[derive(Debug, Clone)]
pub(crate) struct PlanBinding {
    pub(crate) attr_to_plan: Vec<u32>,
    pub(crate) purpose_to_plan: Vec<u32>,
    /// Plan attribute id → population attribute id, for datum loads.
    /// `None` means no provider ever stated a preference or sensitivity
    /// for that attribute, so its datum is neutral for everyone.
    pub(crate) plan_attr_to_pop: Vec<Option<u32>>,
}

/// Incrementally interns providers into a [`CompiledPopulation`].
///
/// Two entry styles:
/// * [`PopulationBuilder::push_profile`] — from materialized
///   [`ProviderProfile`]s (streaming-friendly: a one-shot push interns
///   straight into the unique-row table and retains nothing
///   per-provider beyond three machine words, so millions-scale
///   generators can feed it without a full `Vec` anywhere);
/// * the scan-oriented [`PopulationBuilder::push_occurrence`] /
///   [`PopulationBuilder::set_sensitivity`] /
///   [`PopulationBuilder::set_threshold`] trio — used by
///   `Ppdb::compiled_population` to build straight off batched table
///   scans without materializing profiles.
///
/// Rows edited *after* their occurrence was interned (duplicate-id
/// merges, scan-path sensitivity sets) are tracked in a dirty map and
/// re-interned with their final datum state in [`PopulationBuilder::finish`].
#[derive(Debug, Default)]
pub struct PopulationBuilder {
    attrs: SymbolTable,
    purposes: SymbolTable,
    ids: Vec<ProviderId>,
    urow_of: Vec<u32>,
    row_of: Vec<u32>,
    /// id-row → its first occurrence (for reading a row's current datum
    /// state back out of the table).
    row_occ: Vec<u32>,
    table: RowTable,
    thresholds: Vec<u64>,
    /// id → id-row. `None` while pushed ids are strictly increasing (the
    /// streaming fast path: no hash map at all; lookups binary-search
    /// `ids`); materialized on the first out-of-order or duplicate push.
    id_rows: Option<HashMap<ProviderId, u32>>,
    /// id-rows whose authoritative dense datum state diverged from what
    /// their occurrences were interned with (fixed up in `finish`).
    dirty: HashMap<u32, Vec<DatumSensitivity>>,
    pref_buf: Vec<PrefRow>,
    datum_buf: Vec<DatumSensitivity>,
}

impl PopulationBuilder {
    /// An empty builder.
    pub fn new() -> PopulationBuilder {
        PopulationBuilder::default()
    }

    /// Number of occurrences pushed so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id-row for `id` if it was pushed before.
    fn lookup_row(&self, id: ProviderId) -> Option<u32> {
        match &self.id_rows {
            Some(m) => m.get(&id).copied(),
            None => self
                .ids
                .binary_search_by(|p| p.0.cmp(&id.0))
                .ok()
                .map(|i| self.row_of[i]),
        }
    }

    /// The id-row a new occurrence of `id` belongs to, plus whether it is
    /// fresh. Materializes the id map only when the strictly-increasing
    /// streaming order breaks.
    fn id_row(&mut self, id: ProviderId) -> (u32, bool) {
        if self.id_rows.is_none() {
            if self.ids.last().is_none_or(|last| id.0 > last.0) {
                return (self.thresholds.len() as u32, true);
            }
            let mut m = HashMap::with_capacity(self.ids.len() + 1);
            for (i, &pid) in self.ids.iter().enumerate() {
                m.entry(pid).or_insert(self.row_of[i]);
            }
            self.id_rows = Some(m);
        }
        let next = self.thresholds.len() as u32;
        match self.id_rows.as_mut().expect("materialized above").entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                (next, true)
            }
        }
    }

    /// A row's authoritative dense datum state at the current stride.
    fn current_datums(&self, row: u32) -> Vec<DatumSensitivity> {
        let mut d = match self.dirty.get(&row) {
            Some(v) => v.clone(),
            None => {
                let occ = self.row_occ[row as usize] as usize;
                let mut v = Vec::new();
                self.table.copy_datums(self.urow_of[occ] as usize, &mut v);
                v
            }
        };
        d.resize(self.attrs.len(), DatumSensitivity::neutral());
        d
    }

    fn sync_stride(&mut self) {
        let na = self.attrs.len();
        if na != self.table.stride() {
            self.table.grow(na);
        }
    }

    /// Intern one profile: its preferences as a fresh occurrence, its
    /// sensitivities and threshold merged into the id's row (overwrite
    /// per attribute, threshold last-wins — [`crate::profile::assemble`]
    /// semantics).
    pub fn push_profile(&mut self, p: &ProviderProfile) {
        self.pref_buf.clear();
        for t in p.preferences.tuples() {
            let attr = self.attrs.intern(&t.attribute);
            let purpose = self.purposes.intern(t.tuple.purpose.name());
            self.pref_buf.push(PrefRow {
                attr,
                purpose,
                point: t.tuple.point,
            });
        }
        for attr in p.sensitivities.keys() {
            self.attrs.intern(attr);
        }
        self.sync_stride();
        let na = self.attrs.len();
        let (row, fresh) = self.id_row(p.id());
        if fresh {
            self.thresholds.push(p.threshold);
            self.row_occ.push(self.ids.len() as u32);
            self.datum_buf.clear();
            self.datum_buf.resize(na, DatumSensitivity::neutral());
            for (attr, s) in &p.sensitivities {
                self.datum_buf[self.attrs.get(attr).expect("interned above") as usize] = *s;
            }
            let u = self.table.intern(&self.pref_buf, &self.datum_buf);
            self.ids.push(p.id());
            self.urow_of.push(u);
            self.row_of.push(row);
        } else {
            // Duplicate id: merge sensitivities and threshold last-wins
            // into the shared id-row; the occurrence still audits its own
            // stated preferences. Earlier occurrences of the row are
            // re-interned with the merged datums in `finish`.
            let mut datums = self.current_datums(row);
            for (attr, s) in &p.sensitivities {
                datums[self.attrs.get(attr).expect("interned above") as usize] = *s;
            }
            self.thresholds[row as usize] = p.threshold;
            let u = self.table.intern(&self.pref_buf, &datums);
            self.ids.push(p.id());
            self.urow_of.push(u);
            self.row_of.push(row);
            if !p.sensitivities.is_empty() {
                self.dirty.insert(row, datums);
            }
        }
    }

    /// Intern an attribute name (scan path).
    pub fn intern_attr(&mut self, name: &str) -> u32 {
        self.attrs.intern(name)
    }

    /// Intern a purpose name (scan path).
    pub fn intern_purpose(&mut self, name: &str) -> u32 {
        self.purposes.intern(name)
    }

    /// Append one provider occurrence whose preference rows are already
    /// interned `(attr_id, purpose_id, point)` triples (scan path).
    pub fn push_occurrence(&mut self, id: ProviderId, rows: &[(u32, u32, PrivacyPoint)]) {
        self.sync_stride();
        let na = self.attrs.len();
        self.pref_buf.clear();
        self.pref_buf
            .extend(rows.iter().map(|&(attr, purpose, point)| PrefRow {
                attr,
                purpose,
                point,
            }));
        let (row, fresh) = self.id_row(id);
        if fresh {
            self.thresholds.push(0);
            self.row_occ.push(self.ids.len() as u32);
            self.datum_buf.clear();
            self.datum_buf.resize(na, DatumSensitivity::neutral());
            let u = self.table.intern(&self.pref_buf, &self.datum_buf);
            self.ids.push(id);
            self.urow_of.push(u);
            self.row_of.push(row);
        } else {
            let datums = self.current_datums(row);
            let u = self.table.intern(&self.pref_buf, &datums);
            self.ids.push(id);
            self.urow_of.push(u);
            self.row_of.push(row);
        }
    }

    /// Set (overwrite) one datum sensitivity for an already-pushed id.
    /// Unknown ids are ignored — matching the table scans, where
    /// sensitivity rows for providers absent from the data table are
    /// dropped.
    pub fn set_sensitivity(&mut self, id: ProviderId, attr: u32, s: DatumSensitivity) {
        let Some(row) = self.lookup_row(id) else {
            return;
        };
        self.sync_stride();
        let mut datums = self.current_datums(row);
        if datums[attr as usize] != s {
            datums[attr as usize] = s;
            self.dirty.insert(row, datums);
        }
    }

    /// Set (overwrite) the threshold for an already-pushed id. Unknown
    /// ids are ignored, as in [`PopulationBuilder::set_sensitivity`].
    pub fn set_threshold(&mut self, id: ProviderId, threshold: u64) {
        if let Some(row) = self.lookup_row(id) {
            self.thresholds[row as usize] = threshold;
        }
    }

    /// Re-intern occurrences of dirty rows with their final datum state,
    /// and freeze.
    pub fn finish(mut self) -> CompiledPopulation {
        self.sync_stride();
        if !self.dirty.is_empty() {
            let na = self.attrs.len();
            for i in 0..self.ids.len() {
                let Some(d) = self.dirty.get(&self.row_of[i]).cloned() else {
                    continue;
                };
                let mut datums = d;
                datums.resize(na, DatumSensitivity::neutral());
                let prefs: Vec<PrefRow> = self.table.pref_rows(self.urow_of[i] as usize).collect();
                let new_u = self.table.intern(&prefs, &datums);
                self.table.release(self.urow_of[i]);
                self.urow_of[i] = new_u;
            }
        }
        CompiledPopulation {
            attrs: self.attrs,
            purposes: self.purposes,
            ids: self.ids,
            urow_of: self.urow_of,
            row_of: self.row_of,
            table: self.table,
            thresholds: self.thresholds,
            epoch: 0,
            index: OnceLock::new(),
            free_rows: Vec::new(),
        }
    }
}

/// Counts-only aggregate of auditing one policy against a compiled
/// population: everything Eq. 31's expansion economics and the what-if
/// search read, with no per-provider allocations behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Equation 16's `Violations`.
    pub total_violations: u128,
    /// Providers with `w_i = 1`.
    pub violated: usize,
    /// Providers with `default_i = 1`.
    pub defaulted: usize,
    /// Population size `N` (occurrences).
    pub population: usize,
}

impl PolicyOutcome {
    /// Definition 2's `P(W)` (census form).
    pub fn p_violation(&self) -> f64 {
        census_fraction(self.violated, self.population)
    }

    /// Definition 5's `P(Default)` (census form).
    pub fn p_default(&self) -> f64 {
        census_fraction(self.defaulted, self.population)
    }

    /// `N_future`: providers remaining after defaults (Eq. 26).
    pub fn remaining(&self) -> usize {
        self.population - self.defaulted
    }

    /// Definition 3: `P(W) ≤ α`.
    pub fn is_alpha_ppdb(&self, alpha: f64) -> bool {
        self.p_violation() <= alpha
    }
}

impl AuditEngine {
    /// Audit a compiled population, producing the same full
    /// [`AuditReport`] as [`AuditEngine::run`] — bitwise-identical, in
    /// fact: `run` routes through this. This is the full/severity path
    /// (per-provider witnesses); counts-only callers should prefer
    /// [`AuditEngine::counts`], which runs branch-free over the packed
    /// unique-row lanes.
    pub fn audit_compiled(&self, pop: &CompiledPopulation) -> AuditReport {
        let plan = self.compile_house();
        let binding = pop.bind(&plan);
        let mut scratch = PlanScratch::new();
        let mut providers = Vec::with_capacity(pop.len());
        let mut total: u128 = 0;
        for i in 0..pop.len() {
            let audit = pop.audit_provider(&plan, &binding, i, &mut scratch);
            total += audit.score as u128;
            providers.push(audit);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// Counts-only audit of the engine's own policy: aggregates identical
    /// to `self.audit_compiled(pop)`'s, evaluated branch-free over the
    /// packed unique-row lanes (each unique row scored once, aggregated
    /// by multiplicity) with zero heap allocated per provider.
    pub fn counts(&self, pop: &CompiledPopulation) -> PolicyOutcome {
        let plan = self.compile_house();
        PackedScratch::new().pass(pop, &plan)
    }

    /// Counts-only audit of a *different* policy — the cheap what-if
    /// primitive (compile the population once, call this K times).
    pub fn counts_with_policy(
        &self,
        pop: &CompiledPopulation,
        policy: &HousePolicy,
    ) -> PolicyOutcome {
        let plan = self.compile_policy(policy);
        PackedScratch::new().pass(pop, &plan)
    }

    /// Evaluate K candidate policies against one compiled population:
    /// Eq. 31's search as one population compile + K packed passes,
    /// sharing a single scratch across passes. Outcomes are in `policies`
    /// order, each equal to what a full re-audit would aggregate to.
    pub fn audit_many_policies(
        &self,
        pop: &CompiledPopulation,
        policies: &[HousePolicy],
    ) -> Vec<PolicyOutcome> {
        let mut packed = PackedScratch::new();
        policies
            .iter()
            .map(|policy| {
                let plan = self.compile_policy(policy);
                packed.pass(pop, &plan)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec (crate-internal, used by `crate::deltalog`)
// ---------------------------------------------------------------------------

fn snap_corrupt(what: &str) -> DbError {
    DbError::Corruption(format!("population snapshot: {what}"))
}

fn put_symbols(buf: &mut Vec<u8>, table: &SymbolTable) {
    let names = table.names();
    put_varint(buf, names.len() as u64);
    for name in names {
        let bytes = name.as_bytes();
        put_varint(buf, bytes.len() as u64);
        buf.extend_from_slice(bytes);
    }
}

fn get_symbols(buf: &mut &[u8]) -> DbResult<SymbolTable> {
    let n = get_varint(buf)?;
    let mut table = SymbolTable::new();
    for _ in 0..n {
        let len = get_varint(buf)? as usize;
        let bytes = take(buf, len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| snap_corrupt("non-utf8 symbol"))?;
        table.intern(name);
    }
    if table.len() as u64 != n {
        return Err(snap_corrupt("duplicate interned symbol"));
    }
    Ok(table)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> DbResult<&'a [u8]> {
    if buf.len() < n {
        return Err(snap_corrupt("truncated"));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn le_u32(c: &[u8]) -> u32 {
    u32::from_le_bytes([c[0], c[1], c[2], c[3]])
}

fn le_u64(c: &[u8]) -> u64 {
    u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
}

fn put_u32s(buf: &mut Vec<u8>, xs: &[u32]) {
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn get_u32s(buf: &mut &[u8], n: usize) -> DbResult<Vec<u32>> {
    Ok(take(buf, n * 4)?.chunks_exact(4).map(le_u32).collect())
}

/// Binary snapshot codec for the delta log ([`crate::deltalog`]): the
/// packed lanes serialized almost verbatim — bulk fixed-width
/// little-endian arrays behind varint counts — so a 100k-provider
/// population decodes at memcpy speed. Refcounts are stored (and
/// cross-checked against the occurrence references on decode); slot
/// hashes and the content-lookup index are *recomputed* on decode — the
/// hash function is deterministic, so the rebuilt structures are
/// bit-identical to the encoder's. The id → occurrence map stays lazy.
impl CompiledPopulation {
    pub(crate) fn encode_snapshot(&self, buf: &mut Vec<u8>) {
        put_symbols(buf, &self.attrs);
        put_symbols(buf, &self.purposes);
        put_varint(buf, self.ids.len() as u64);
        for id in &self.ids {
            buf.extend_from_slice(&id.0.to_le_bytes());
        }
        put_u32s(buf, &self.urow_of);
        put_u32s(buf, &self.row_of);
        put_varint(buf, self.thresholds.len() as u64);
        for &t in &self.thresholds {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        put_varint(buf, self.epoch);
        put_varint(buf, self.free_rows.len() as u64);
        put_u32s(buf, &self.free_rows);
        let t = &self.table;
        put_varint(buf, t.refs.len() as u64);
        put_varint(buf, t.p_attr.len() as u64);
        for &(start, end) in &t.ranges {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&end.to_le_bytes());
        }
        put_u32s(buf, &t.refs);
        put_u32s(buf, &t.p_attr);
        put_u32s(buf, &t.p_purpose);
        put_u32s(buf, &t.p_vis);
        put_u32s(buf, &t.p_gran);
        put_u32s(buf, &t.p_ret);
        put_u32s(buf, &t.d_value);
        put_u32s(buf, &t.d_vis);
        put_u32s(buf, &t.d_gran);
        put_u32s(buf, &t.d_ret);
        put_varint(buf, t.free_pref.len() as u64);
        for &(start, end) in &t.free_pref {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&end.to_le_bytes());
        }
        put_varint(buf, t.free_slots.len() as u64);
        put_u32s(buf, &t.free_slots);
    }

    pub(crate) fn decode_snapshot(buf: &mut &[u8]) -> DbResult<CompiledPopulation> {
        let attrs = get_symbols(buf)?;
        let purposes = get_symbols(buf)?;
        let n = get_varint(buf)? as usize;
        let ids: Vec<ProviderId> = take(buf, n * 8)?
            .chunks_exact(8)
            .map(|c| ProviderId(le_u64(c)))
            .collect();
        let urow_of = get_u32s(buf, n)?;
        let row_of = get_u32s(buf, n)?;
        let id_rows = get_varint(buf)? as usize;
        let thresholds: Vec<u64> = take(buf, id_rows * 8)?
            .chunks_exact(8)
            .map(le_u64)
            .collect();
        let epoch = get_varint(buf)?;
        let n_free_rows = get_varint(buf)? as usize;
        let free_rows = get_u32s(buf, n_free_rows)?;
        let slots = get_varint(buf)? as usize;
        let lane_len = get_varint(buf)? as usize;
        let ranges: Vec<(u32, u32)> = take(buf, slots * 8)?
            .chunks_exact(8)
            .map(|c| (le_u32(&c[0..4]), le_u32(&c[4..8])))
            .collect();
        let refs = get_u32s(buf, slots)?;
        let p_attr = get_u32s(buf, lane_len)?;
        let p_purpose = get_u32s(buf, lane_len)?;
        let p_vis = get_u32s(buf, lane_len)?;
        let p_gran = get_u32s(buf, lane_len)?;
        let p_ret = get_u32s(buf, lane_len)?;
        let stride = attrs.len();
        let d_value = get_u32s(buf, slots * stride)?;
        let d_vis = get_u32s(buf, slots * stride)?;
        let d_gran = get_u32s(buf, slots * stride)?;
        let d_ret = get_u32s(buf, slots * stride)?;
        let n_free_pref = get_varint(buf)? as usize;
        let free_pref: Vec<(u32, u32)> = take(buf, n_free_pref * 8)?
            .chunks_exact(8)
            .map(|c| (le_u32(&c[0..4]), le_u32(&c[4..8])))
            .collect();
        let n_free_slots = get_varint(buf)? as usize;
        let free_slots = get_u32s(buf, n_free_slots)?;

        // Cheap structural sanity on the CRC-validated payload, so a codec
        // bug surfaces as `Err`, never as a panic in the audit hot loop.
        if ranges
            .iter()
            .chain(&free_pref)
            .any(|&(s, e)| s > e || e as usize > lane_len)
        {
            return Err(snap_corrupt("inconsistent preference ranges"));
        }
        if row_of.iter().any(|&r| r as usize >= id_rows.max(1))
            || free_rows.iter().any(|&r| r as usize >= id_rows.max(1))
        {
            return Err(snap_corrupt("inconsistent id-row references"));
        }
        let mut derived = vec![0u32; slots];
        for &u in &urow_of {
            let us = u as usize;
            if us >= slots {
                return Err(snap_corrupt("unique-row reference out of bounds"));
            }
            derived[us] += 1;
        }
        if derived != refs {
            return Err(snap_corrupt("refcounts disagree with occurrences"));
        }
        if free_slots.len() != refs.iter().filter(|&&r| r == 0).count()
            || free_slots.iter().any(|&u| {
                let us = u as usize;
                us >= slots || refs[us] != 0
            })
        {
            return Err(snap_corrupt("slot freelist disagrees with refcounts"));
        }

        let mut table = RowTable {
            stride,
            p_attr,
            p_purpose,
            p_vis,
            p_gran,
            p_ret,
            ranges,
            refs,
            hashes: vec![0; slots],
            d_value,
            d_vis,
            d_gran,
            d_ret,
            free_slots,
            free_pref,
            lookup: HashIndex::default(),
        };
        table.rebuild_index();
        Ok(CompiledPopulation {
            attrs,
            purposes,
            ids,
            urow_of,
            row_of,
            table,
            thresholds,
            epoch,
            index: OnceLock::new(),
            free_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::AttributeSensitivities;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn worked_example() -> (AuditEngine, Vec<ProviderProfile>) {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        (engine, profiles)
    }

    #[test]
    fn compiled_population_reproduces_table_1() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 3);
        assert_eq!(pop.pref_row_count(), 3);
        assert_eq!(pop.unique_row_count(), 3, "three distinct rows");
        pop.debug_validate();
        let report = engine.audit_compiled(&pop);
        let scores: Vec<u64> = report.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80]);
        assert_eq!(report.total_violations, 140);
        assert_eq!(report, engine.run_reference(&profiles));
    }

    #[test]
    fn counts_aggregates_match_the_full_report() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let report = engine.audit_compiled(&pop);
        let counts = engine.counts(&pop);
        assert_eq!(counts.total_violations, report.total_violations);
        assert_eq!(counts.population, report.population());
        assert_eq!(counts.p_violation(), report.p_violation());
        assert_eq!(counts.p_default(), report.p_default());
        assert_eq!(counts.remaining(), report.remaining());
        assert_eq!(counts.violated, 2);
        assert_eq!(counts.defaulted, 1);
        assert!(counts.is_alpha_ppdb(2.0 / 3.0));
        assert!(!counts.is_alpha_ppdb(0.5));
    }

    #[test]
    fn audit_many_policies_equals_one_audit_per_policy() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let policies: Vec<HousePolicy> = (0..4).map(|k| engine.policy.widened_uniform(k)).collect();
        let outcomes = engine.audit_many_policies(&pop, &policies);
        assert_eq!(outcomes.len(), policies.len());
        for (policy, outcome) in policies.iter().zip(&outcomes) {
            let report = engine.run_with_policy(&profiles, policy);
            assert_eq!(outcome.total_violations, report.total_violations);
            assert_eq!(outcome.p_violation(), report.p_violation());
            assert_eq!(outcome.p_default(), report.p_default());
            assert_eq!(outcome.remaining(), report.remaining());
        }
    }

    /// Identical providers intern into one unique row: counts aggregate
    /// by multiplicity and stay equal to the full per-occurrence report.
    #[test]
    fn identical_providers_share_one_unique_row() {
        let (engine, profiles) = worked_example();
        let clones: Vec<ProviderProfile> = (0..1000)
            .map(|k| {
                let mut p = profiles[1].clone();
                p.preferences.provider = ProviderId(100 + k);
                p
            })
            .collect();
        let pop = CompiledPopulation::from_profiles(&clones);
        assert_eq!(pop.len(), 1000);
        assert_eq!(pop.unique_row_count(), 1, "all content dedups to one row");
        assert_eq!(pop.pref_row_count(), 1);
        assert_eq!(pop.dedup_ratio(), 1000.0);
        pop.debug_validate();
        let report = engine.audit_compiled(&pop);
        let counts = engine.counts(&pop);
        assert_eq!(counts.total_violations, report.total_violations);
        assert_eq!(
            counts.violated,
            report.providers.iter().filter(|p| p.violated).count()
        );
        assert_eq!(
            counts.defaulted,
            report.providers.iter().filter(|p| p.defaulted).count()
        );
        assert!(
            pop.resident_bytes() < 1000 * 64,
            "dedup keeps resident bytes far below per-provider structs"
        );
    }

    #[test]
    fn duplicate_ids_merge_datums_but_keep_per_occurrence_preferences() {
        let (_, mut profiles) = worked_example();
        // Re-register Ted (id 1) with different preferences, sensitivity,
        // and threshold. Preferences stay per-occurrence; the datum map
        // and threshold merge last-wins across occurrences.
        let mut dup = ProviderProfile::new(ProviderId(1), 7);
        dup.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        dup.sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 2, 2, 2));
        profiles.push(dup);
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 4, "one occurrence each");
        pop.debug_validate();
        assert_ne!(
            pop.pref_rows_of(1).next().unwrap().point,
            pop.pref_rows_of(3).next().unwrap().point,
            "each occurrence audits its own stated preferences"
        );
        // Merged view: the duplicate's sensitivity and threshold win for
        // both occurrences.
        assert_eq!(pop.threshold_of(1), 7);
        assert_eq!(pop.threshold_of(3), 7);
        let a = pop.attrs.get("weight").unwrap();
        assert_eq!(pop.datum(1, a), DatumSensitivity::new(2, 2, 2, 2));
        assert_eq!(pop.datum(3, a), DatumSensitivity::new(2, 2, 2, 2));
    }

    #[test]
    fn scan_path_builder_matches_push_profile() {
        let (_, profiles) = worked_example();
        let via_profiles = CompiledPopulation::from_profiles(&profiles);
        let mut b = PopulationBuilder::new();
        for p in &profiles {
            let rows: Vec<(u32, u32, PrivacyPoint)> = p
                .preferences
                .tuples()
                .iter()
                .map(|t| {
                    (
                        b.intern_attr(&t.attribute),
                        b.intern_purpose(t.tuple.purpose.name()),
                        t.tuple.point,
                    )
                })
                .collect();
            b.push_occurrence(p.id(), &rows);
        }
        for p in &profiles {
            for (attr, s) in &p.sensitivities {
                let a = b.intern_attr(attr);
                b.set_sensitivity(p.id(), a, *s);
            }
            b.set_threshold(p.id(), p.threshold);
        }
        // Unknown ids are silently dropped, like the table scans do.
        b.set_threshold(ProviderId(999), 1);
        b.set_sensitivity(ProviderId(999), 0, DatumSensitivity::neutral());
        let via_scans = b.finish();
        assert_eq!(via_scans.len(), via_profiles.len());
        via_scans.debug_validate();
        let (engine, _) = worked_example();
        assert_eq!(
            engine.audit_compiled(&via_scans),
            engine.audit_compiled(&via_profiles)
        );
    }

    /// Delta application audits identically to a fresh compile of the
    /// mutated profile list, across every op kind.
    #[test]
    fn apply_delta_matches_fresh_compile_of_mutated_profiles() {
        let (engine, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.epoch(), 0);

        let mut newcomer = ProviderProfile::new(ProviderId(9), 30);
        newcomer
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(6, 6, 6)));
        newcomer
            .sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 1, 1, 1));
        let mut replacement = ProviderProfile::new(ProviderId(0), 5);
        replacement
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));

        let delta = PopulationDelta::new()
            .upsert(newcomer)
            .upsert(replacement)
            .remove(ProviderId(1))
            .set_attribute_prefs(
                ProviderId(2),
                "weight",
                vec![PrivacyTuple::from_point("pr", pt(3, 3, 3))],
            )
            .set_sensitivity(ProviderId(2), "weight", DatumSensitivity::new(5, 5, 5, 5))
            .set_threshold(ProviderId(2), 1)
            .remove(ProviderId(777)); // unknown id: no-op

        let mut mutated = profiles.clone();
        delta.apply_to_profiles(&mut mutated);
        let outcome = pop.apply_delta(&delta).expect("unique ids");
        assert_eq!(pop.epoch(), 1);
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.len(), 6, "the unknown-id op produced no event");
        assert_eq!(outcome.skipped, 1, "the unknown-id op was counted");
        pop.debug_validate();

        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(
            engine.audit_compiled(&pop),
            engine.audit_compiled(&fresh),
            "delta-applied population audits byte-identical to a rebuild"
        );
    }

    /// Removal + re-insert cycles reuse freed unique-row slots, lane
    /// ranges, and id-rows instead of growing the table.
    #[test]
    fn delta_freelists_recycle_rows() {
        let (engine, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let mut mutated = profiles.clone();
        // First round establishes the recycled slot/lane footprint (the
        // new content is distinct from all three initial rows).
        let mut sizes = Vec::new();
        for round in 0u64..8 {
            let mut p = ProviderProfile::new(ProviderId(1), 10 + round);
            p.preferences
                .add("weight", PrivacyTuple::from_point("pr", pt(4, 4, 4)));
            p.sensitivities
                .insert("weight".into(), DatumSensitivity::new(1, 2, 3, 4));
            let delta = PopulationDelta::new().remove(ProviderId(1)).upsert(p);
            delta.apply_to_profiles(&mut mutated);
            pop.apply_delta(&delta).expect("unique ids");
            pop.debug_validate();
            sizes.push((
                pop.table.pref_lane_len(),
                pop.table.slot_count(),
                pop.thresholds.len(),
            ));
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "steady-state churn recycles slots, lanes, and id-rows: {sizes:?}"
        );
        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(engine.audit_compiled(&pop), engine.audit_compiled(&fresh));
    }

    /// A delta introducing a brand-new attribute re-strides the datum
    /// lanes without disturbing existing sensitivities.
    #[test]
    fn delta_with_new_attribute_restrides_datums() {
        let (_, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let delta = PopulationDelta::new()
            .set_sensitivity(ProviderId(0), "height", DatumSensitivity::new(9, 9, 9, 9))
            .set_attribute_prefs(
                ProviderId(1),
                "height",
                vec![PrivacyTuple::from_point("pr", pt(2, 2, 2))],
            );
        let mut mutated = profiles.clone();
        delta.apply_to_profiles(&mut mutated);
        pop.apply_delta(&delta).expect("unique ids");
        pop.debug_validate();
        let h = pop.attrs.get("height").expect("interned by the delta");
        let w = pop.attrs.get("weight").expect("still interned");
        assert_eq!(pop.datum(0, h), DatumSensitivity::new(9, 9, 9, 9));
        assert_eq!(pop.datum(1, h), DatumSensitivity::neutral());
        assert_eq!(pop.datum(1, w), DatumSensitivity::new(3, 1, 5, 2));
        // Audit with an engine that covers the new attribute.
        let policy = HousePolicy::builder("h2")
            .tuple("height", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
            .build();
        let engine = AuditEngine::new(policy, ["weight", "height"], {
            let mut w = AttributeSensitivities::new();
            w.set("weight", 4);
            w.set("height", 2);
            w
        });
        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(engine.audit_compiled(&pop), engine.audit_compiled(&fresh));
    }

    /// Duplicate-occurrence populations stay audit-only: deltas are
    /// refused with the offending id.
    #[test]
    fn duplicate_occurrences_refuse_deltas() {
        let (_, mut profiles) = worked_example();
        profiles.push(profiles[1].clone());
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let delta = PopulationDelta::new().set_threshold(ProviderId(0), 3);
        assert_eq!(
            pop.apply_delta(&delta),
            Err(DeltaError::DuplicateOccurrences(ProviderId(1)))
        );
        assert_eq!(pop.epoch(), 0, "refused deltas do not bump the epoch");
    }

    #[test]
    fn empty_population_and_empty_policy() {
        let (engine, profiles) = worked_example();
        let empty = CompiledPopulation::from_profiles(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.dedup_ratio(), 1.0);
        let counts = engine.counts(&empty);
        assert_eq!(counts.population, 0);
        assert_eq!(counts.p_violation(), 0.0);
        assert_eq!(counts.remaining(), 0);
        // A policy whose tuples are all filtered out still audits.
        let ghost = HousePolicy::builder("g")
            .tuple("ghost", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .build();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let outcome = engine.counts_with_policy(&pop, &ghost);
        assert_eq!(outcome.total_violations, 0);
        assert_eq!(outcome.violated, 0);
    }

    /// The snapshot codec round-trips the packed layout exactly, and the
    /// rebuilt lookup index keeps interning (delta application) working.
    #[test]
    fn snapshot_roundtrip_preserves_packed_layout() {
        let (engine, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        // Punch a hole so freelists are non-trivial in the snapshot.
        let delta = PopulationDelta::new().remove(ProviderId(0));
        pop.apply_delta(&delta).expect("unique ids");
        let mut buf = Vec::new();
        pop.encode_snapshot(&mut buf);
        let mut slice = buf.as_slice();
        let mut decoded = CompiledPopulation::decode_snapshot(&mut slice).expect("decodes");
        assert!(slice.is_empty(), "codec consumed the whole buffer");
        decoded.debug_validate();
        assert_eq!(decoded.epoch(), pop.epoch());
        assert_eq!(engine.audit_compiled(&decoded), engine.audit_compiled(&pop));
        // The rebuilt content index dedups new interns against decoded rows.
        let mut back = profiles[0].clone();
        back.threshold = 42;
        let redelta = PopulationDelta::new().upsert(back);
        pop.apply_delta(&redelta).expect("unique ids");
        decoded.apply_delta(&redelta).expect("unique ids");
        decoded.debug_validate();
        assert_eq!(engine.audit_compiled(&decoded), engine.audit_compiled(&pop));
        assert_eq!(
            decoded.unique_row_count(),
            pop.unique_row_count(),
            "decoded table interns identically to the original"
        );
    }
}
