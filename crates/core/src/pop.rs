//! The compiled population: structure-of-arrays provider storage.
//!
//! [`crate::plan::CompiledAuditPlan`] (PR 2) compiled the *house* side of
//! the audit — policy tuples to dense rows, lattice coverage to id lists.
//! The provider side stayed an array-of-structs: every audit re-hashes
//! every stated preference string of every [`ProviderProfile`], and §9's
//! policy-expansion economics (Eq. 31) repeats that work for every
//! candidate policy. A [`CompiledPopulation`] interns the whole population
//! **once**:
//!
//! * every stated preference becomes a dense `(attr_id, purpose_id,
//!   point)` [`PrefRow`], with per-provider offset ranges into one flat
//!   row array;
//! * datum sensitivities densify into one flat `providers × attributes`
//!   table (merged last-wins per provider id, exactly like
//!   [`crate::profile::assemble`] — so duplicate-id populations resolve
//!   identically to the reference path);
//! * thresholds flatten into one array per distinct id.
//!
//! Auditing against a plan then needs no string hashing at all: a
//! [`PlanBinding`] translates population symbol ids to plan symbol ids
//! through two plain arrays, built once per (population, plan) pair. The
//! counts-only path ([`AuditEngine::counts`],
//! [`AuditEngine::audit_many_policies`]) allocates **zero heap per
//! provider** — witness strings are resolved from the symbol tables only
//! when a full report is requested.
//!
//! Everything here is pinned bitwise-equal to
//! [`AuditEngine::run_reference`] by `tests/pop_equivalence.rs`.
//!
//! Populations are not frozen after compilation: a [`PopulationDelta`]
//! (provider upsert/remove, per-attribute preference edits, sensitivity
//! and threshold changes) applies **in place** via
//! [`CompiledPopulation::apply_delta`] — free row ranges are recycled
//! through a freelist, the population epoch bumps, and the resulting
//! [`DeltaOutcome`] event log tells an
//! [`crate::incremental::IncrementalAuditor`] exactly which occurrences
//! to re-score. Churny workloads therefore cost `O(changed)` per update
//! instead of an `O(N)` rebuild; `tests/delta_equivalence.rs` pins the
//! delta path byte-identical to a fresh compile of the mutated
//! population.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::encoding::{get_varint, put_varint};
use qpv_reldb::error::{DbError, DbResult};
use qpv_taxonomy::{Dim, PrivacyPoint};

use crate::audit::{AuditEngine, AuditReport, ProviderAudit};
use crate::default_model::defaults;
use crate::intern::SymbolTable;
use crate::plan::{CompiledAuditPlan, PlanScratch};
use crate::probability::census_fraction;
use crate::profile::ProviderProfile;
use crate::sensitivity::DatumSensitivity;

/// One interned stated preference: the SoA row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefRow {
    /// Population attribute id.
    pub(crate) attr: u32,
    /// Population purpose id.
    pub(crate) purpose: u32,
    /// The stated point.
    pub(crate) point: PrivacyPoint,
}

/// A whole population interned into flat structure-of-arrays storage.
/// Build once ([`CompiledPopulation::from_profiles`], a
/// [`PopulationBuilder`], or `Ppdb::compiled_population`), audit many
/// times — see the module docs.
#[derive(Debug, Clone)]
pub struct CompiledPopulation {
    /// Every attribute name stated in a preference or carrying a datum
    /// sensitivity, interned once for the whole population.
    attrs: SymbolTable,
    /// Every stated purpose name, interned once.
    purposes: SymbolTable,
    /// Provider ids, one per *occurrence*, in input order.
    ids: Vec<ProviderId>,
    /// Per-occurrence `[start, end)` ranges into `pref_rows`. Preferences
    /// are per-occurrence: when an id occurs twice with different stated
    /// preferences, each occurrence audits its own — exactly what the
    /// reference path does.
    pref_ranges: Vec<(u32, u32)>,
    /// All interned preference rows, statement order within each range.
    pref_rows: Vec<PrefRow>,
    /// Occurrence index → merged id-row index (`datums` / `thresholds`).
    /// Datums and thresholds are per-*id*, merged last-wins across
    /// occurrences, matching [`crate::profile::assemble`].
    row_of: Vec<u32>,
    /// `id_rows × attrs.len()` datum sensitivities, row-major, neutral
    /// where never set.
    datums: Vec<DatumSensitivity>,
    /// Per id-row default threshold `v_i` (last occurrence wins).
    thresholds: Vec<u64>,
    /// Bumped once per applied delta; lets downstream caches (plan
    /// bindings, auditors, reports) detect staleness cheaply.
    epoch: u64,
    /// id → occurrence index, the delta-addressing map. `None` when some
    /// id was interned more than once: "the provider with id X" is then
    /// ambiguous and [`CompiledPopulation::apply_delta`] refuses to run.
    index: Option<HashMap<ProviderId, u32>>,
    /// Free `[start, end)` ranges inside `pref_rows` left behind by
    /// removals and shrinking replacements, reused first-fit by later
    /// delta ops (ranges are not coalesced; churn at a steady size
    /// re-uses its own holes).
    free_pref: Vec<(u32, u32)>,
    /// Free merged id-rows (one `datums` stride plus one `thresholds`
    /// slot each), reused by later inserts.
    free_rows: Vec<u32>,
}

impl CompiledPopulation {
    /// Intern a whole population in one pass.
    pub fn from_profiles(profiles: &[ProviderProfile]) -> CompiledPopulation {
        let mut b = PopulationBuilder::new();
        for p in profiles {
            b.push_profile(p);
        }
        b.finish()
    }

    /// Number of provider occurrences (the audit's `N`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of occurrence `i`.
    pub fn id(&self, i: usize) -> ProviderId {
        self.ids[i]
    }

    /// The resolved (merged, last-wins) threshold for occurrence `i`.
    pub fn threshold_of(&self, i: usize) -> u64 {
        self.thresholds[self.row_of[i] as usize]
    }

    /// Total interned preference rows across the population.
    pub fn pref_row_count(&self) -> usize {
        self.pref_rows.len()
    }

    /// Number of distinct interned attribute / purpose names.
    pub fn symbol_counts(&self) -> (usize, usize) {
        (self.attrs.len(), self.purposes.len())
    }

    /// The interned preference rows of occurrence `i`.
    pub(crate) fn pref_rows_of(&self, i: usize) -> &[PrefRow] {
        let (start, end) = self.pref_ranges[i];
        &self.pref_rows[start as usize..end as usize]
    }

    /// The merged datum sensitivity of occurrence `i` for a population
    /// attribute id.
    pub(crate) fn datum(&self, i: usize, attr: u32) -> DatumSensitivity {
        self.datums[self.row_of[i] as usize * self.attrs.len() + attr as usize]
    }

    /// The population-side symbol tables (attributes, purposes).
    pub(crate) fn symbols(&self) -> (&SymbolTable, &SymbolTable) {
        (&self.attrs, &self.purposes)
    }

    /// Translate this population's symbol ids to a plan's. Two array
    /// probes replace two hash lookups per preference row in the hot
    /// loop; build once per (population, plan) pair.
    pub(crate) fn bind(&self, plan: &CompiledAuditPlan) -> PlanBinding {
        PlanBinding {
            attr_to_plan: self
                .attrs
                .names()
                .iter()
                .map(|n| plan.attrs.get(n).unwrap_or(u32::MAX))
                .collect(),
            purpose_to_plan: self
                .purposes
                .names()
                .iter()
                .map(|n| plan.purposes.get(n).unwrap_or(u32::MAX))
                .collect(),
            plan_attr_to_pop: plan
                .attrs
                .names()
                .iter()
                .map(|n| self.attrs.get(n))
                .collect(),
        }
    }

    /// Index occurrence `i` into the plan-shaped scratch: the SoA
    /// equivalent of `CompiledAuditPlan::index_profile`, with the string
    /// hashing replaced by binding-array probes. Semantics are identical:
    /// flat mode keeps the first stated tuple per `(attr, purpose)`,
    /// lattice mode joins all of them, rows naming symbols the plan never
    /// interned are skipped, and datum slots for plan attributes the
    /// population never saw stay neutral (no provider can have set them).
    fn index_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) {
        let np = plan.purposes.len();
        let epoch = plan.prepare_scratch(scratch);
        for row in self.pref_rows_of(i) {
            let a = binding.attr_to_plan[row.attr as usize];
            if a == u32::MAX {
                continue;
            }
            let p = binding.purpose_to_plan[row.purpose as usize];
            if p == u32::MAX {
                continue;
            }
            let slot = &mut scratch.slots[a as usize * np + p as usize];
            if slot.epoch != epoch {
                slot.epoch = epoch;
                slot.point = row.point;
            } else if plan.lattice_mode {
                slot.point = slot.point.join(&row.point);
            }
        }
        for (a, pop_attr) in binding.plan_attr_to_pop.iter().enumerate() {
            scratch.datums[a] = match pop_attr {
                Some(pa) => self.datum(i, *pa),
                None => DatumSensitivity::neutral(),
            };
        }
    }

    /// Fully audit occurrence `i` (witnesses resolved from the symbol
    /// tables).
    pub(crate) fn audit_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) -> ProviderAudit {
        self.index_provider(plan, binding, i, scratch);
        let mut wit = Vec::new();
        let (score, _) = plan.eval_scratch(scratch, Some(&mut wit));
        let threshold = self.threshold_of(i);
        ProviderAudit {
            provider: self.ids[i],
            violated: !wit.is_empty(),
            score,
            threshold,
            defaulted: defaults(score, threshold),
            witnesses: wit,
        }
    }

    /// Counts-only audit of occurrence `i`: `(score, violated,
    /// defaulted)`. Touches no strings, allocates nothing.
    fn count_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) -> (u64, bool, bool) {
        self.index_provider(plan, binding, i, scratch);
        let (score, violations) = plan.eval_scratch(scratch, None);
        let threshold = self.threshold_of(i);
        (score, violations > 0, defaults(score, threshold))
    }

    /// The population epoch: 0 at compile time, +1 per applied delta.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply a delta in place, recycling freed row ranges and bumping the
    /// epoch. Returns the per-occurrence event log an
    /// [`crate::incremental::IncrementalAuditor`] replays to patch its
    /// own state.
    ///
    /// Semantics (mirrored exactly by
    /// [`PopulationDelta::apply_to_profiles`], which is the oracle the
    /// equivalence suite compares against):
    ///
    /// * upserting a known id replaces that occurrence wholesale and
    ///   keeps its position; upserting an unknown id appends;
    /// * removal is `swap_remove` — the last occurrence moves into the
    ///   freed slot (O(1), order is deterministic but not stable);
    /// * preference edits replace every tuple naming the attribute,
    ///   appending the new tuples after the untouched ones;
    /// * ops naming an unknown id are no-ops, like
    ///   [`PopulationBuilder::set_sensitivity`] on the scan path — but
    ///   counted into [`DeltaOutcome::skipped`] rather than dropped
    ///   silently, so callers can tell "applied cleanly" from "some edits
    ///   bound to nothing".
    ///
    /// Errs on populations that interned the same id twice (Assumption 5
    /// of the paper — one data row per provider — is what makes id-based
    /// addressing well-defined); those stay audit-only.
    pub fn apply_delta(&mut self, delta: &PopulationDelta) -> Result<DeltaOutcome, DeltaError> {
        if self.index.is_none() {
            return Err(DeltaError::DuplicateOccurrences(self.first_duplicate()));
        }
        let mut events = Vec::with_capacity(delta.ops().len());
        let mut skipped = 0u64;
        for op in delta.ops() {
            let applied = match op {
                DeltaOp::Upsert(p) => {
                    self.apply_upsert(p, &mut events);
                    true
                }
                DeltaOp::Remove(id) => self.apply_remove(*id, &mut events),
                DeltaOp::SetAttributePrefs {
                    id,
                    attribute,
                    tuples,
                } => self.apply_set_prefs(*id, attribute, tuples, &mut events),
                DeltaOp::SetSensitivity {
                    id,
                    attribute,
                    sensitivity,
                } => self.apply_set_sensitivity(*id, attribute, *sensitivity, &mut events),
                DeltaOp::SetThreshold { id, threshold } => {
                    self.apply_set_threshold(*id, *threshold, &mut events)
                }
            };
            if !applied {
                skipped += 1;
            }
        }
        self.epoch += 1;
        Ok(DeltaOutcome {
            epoch: self.epoch,
            events,
            skipped,
        })
    }

    /// The occurrence index of a provider id, when deltas are available.
    pub fn occurrence_of(&self, id: ProviderId) -> Option<usize> {
        self.index
            .as_ref()
            .and_then(|ix| ix.get(&id).map(|&i| i as usize))
    }

    fn first_duplicate(&self) -> ProviderId {
        let mut seen = std::collections::HashSet::new();
        for &id in &self.ids {
            if !seen.insert(id) {
                return id;
            }
        }
        unreachable!("index is None only when an id occurs twice")
    }

    /// Re-stride `datums` after the attribute table grew. New columns are
    /// neutral everywhere: no provider can have set a sensitivity for an
    /// attribute that was just interned. Rare (only when a delta
    /// introduces a never-seen attribute name), and O(rows × attrs) when
    /// it happens.
    fn grow_attrs(&mut self, old_na: usize) {
        let na = self.attrs.len();
        if na == old_na {
            return;
        }
        let rows = self.thresholds.len();
        let mut datums = vec![DatumSensitivity::neutral(); rows * na];
        for r in 0..rows {
            datums[r * na..r * na + old_na]
                .copy_from_slice(&self.datums[r * old_na..(r + 1) * old_na]);
        }
        self.datums = datums;
    }

    /// Write `rows` as occurrence `i`'s preference range, reusing its
    /// current range when they fit (freeing the unused tail) and falling
    /// back to [`CompiledPopulation::alloc_rows`] otherwise.
    fn store_rows(&mut self, i: usize, rows: &[PrefRow]) {
        let (s, e) = self.pref_ranges[i];
        if rows.len() <= (e - s) as usize {
            let start = s as usize;
            self.pref_rows[start..start + rows.len()].copy_from_slice(rows);
            let new_end = s + rows.len() as u32;
            if new_end < e {
                self.free_pref.push((new_end, e));
            }
            self.pref_ranges[i] = (s, new_end);
        } else {
            if s < e {
                self.free_pref.push((s, e));
            }
            self.pref_ranges[i] = self.alloc_rows(rows);
        }
    }

    /// First-fit allocation out of the freelist, else append to the tail
    /// of `pref_rows`.
    fn alloc_rows(&mut self, rows: &[PrefRow]) -> (u32, u32) {
        let k = rows.len() as u32;
        if k == 0 {
            return (0, 0);
        }
        if let Some(pos) = self.free_pref.iter().position(|&(fs, fe)| fe - fs >= k) {
            let (fs, fe) = self.free_pref[pos];
            if fe - fs == k {
                self.free_pref.swap_remove(pos);
            } else {
                self.free_pref[pos] = (fs + k, fe);
            }
            self.pref_rows[fs as usize..(fs + k) as usize].copy_from_slice(rows);
            (fs, fs + k)
        } else {
            let start = self.pref_rows.len() as u32;
            self.pref_rows.extend_from_slice(rows);
            (start, start + k)
        }
    }

    fn apply_upsert(&mut self, p: &ProviderProfile, events: &mut Vec<DeltaEvent>) {
        let old_na = self.attrs.len();
        let mut rows = Vec::with_capacity(p.preferences.tuples().len());
        for t in p.preferences.tuples() {
            rows.push(PrefRow {
                attr: self.attrs.intern(&t.attribute),
                purpose: self.purposes.intern(t.tuple.purpose.name()),
                point: t.tuple.point,
            });
        }
        for attr in p.sensitivities.keys() {
            self.attrs.intern(attr);
        }
        self.grow_attrs(old_na);
        let na = self.attrs.len();
        let id = p.id();
        match self.occurrence_of(id) {
            Some(i) => {
                self.store_rows(i, &rows);
                let row = self.row_of[i] as usize;
                for slot in &mut self.datums[row * na..(row + 1) * na] {
                    *slot = DatumSensitivity::neutral();
                }
                for (attr, s) in &p.sensitivities {
                    let a = self.attrs.get(attr).expect("interned above") as usize;
                    self.datums[row * na + a] = *s;
                }
                self.thresholds[row] = p.threshold;
                events.push(DeltaEvent::Touched(i as u32));
            }
            None => {
                let range = self.alloc_rows(&rows);
                let row = match self.free_rows.pop() {
                    Some(r) => {
                        let r_us = r as usize;
                        for slot in &mut self.datums[r_us * na..(r_us + 1) * na] {
                            *slot = DatumSensitivity::neutral();
                        }
                        self.thresholds[r_us] = p.threshold;
                        r
                    }
                    None => {
                        self.datums
                            .extend(std::iter::repeat_n(DatumSensitivity::neutral(), na));
                        self.thresholds.push(p.threshold);
                        (self.thresholds.len() - 1) as u32
                    }
                };
                for (attr, s) in &p.sensitivities {
                    let a = self.attrs.get(attr).expect("interned above") as usize;
                    self.datums[row as usize * na + a] = *s;
                }
                let i = self.ids.len() as u32;
                self.ids.push(id);
                self.pref_ranges.push(range);
                self.row_of.push(row);
                self.index
                    .as_mut()
                    .expect("checked in apply_delta")
                    .insert(id, i);
                events.push(DeltaEvent::Appended(i));
            }
        }
    }

    fn apply_remove(&mut self, id: ProviderId, events: &mut Vec<DeltaEvent>) -> bool {
        let Some(i) = self
            .index
            .as_mut()
            .expect("checked in apply_delta")
            .remove(&id)
        else {
            return false;
        };
        let i_us = i as usize;
        let (s, e) = self.pref_ranges[i_us];
        if s < e {
            self.free_pref.push((s, e));
        }
        self.free_rows.push(self.row_of[i_us]);
        self.ids.swap_remove(i_us);
        self.pref_ranges.swap_remove(i_us);
        self.row_of.swap_remove(i_us);
        if i_us < self.ids.len() {
            let moved = self.ids[i_us];
            self.index
                .as_mut()
                .expect("checked in apply_delta")
                .insert(moved, i);
        }
        events.push(DeltaEvent::Removed(i));
        true
    }

    fn apply_set_prefs(
        &mut self,
        id: ProviderId,
        attribute: &str,
        tuples: &[qpv_taxonomy::PrivacyTuple],
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        let old_na = self.attrs.len();
        let a = self.attrs.intern(attribute);
        let mut rows: Vec<PrefRow> = self
            .pref_rows_of(i)
            .iter()
            .filter(|r| r.attr != a)
            .copied()
            .collect();
        for t in tuples {
            rows.push(PrefRow {
                attr: a,
                purpose: self.purposes.intern(t.purpose.name()),
                point: t.point,
            });
        }
        self.grow_attrs(old_na);
        self.store_rows(i, &rows);
        events.push(DeltaEvent::Touched(i as u32));
        true
    }

    fn apply_set_sensitivity(
        &mut self,
        id: ProviderId,
        attribute: &str,
        s: DatumSensitivity,
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        let old_na = self.attrs.len();
        let a = self.attrs.intern(attribute) as usize;
        self.grow_attrs(old_na);
        let na = self.attrs.len();
        let row = self.row_of[i] as usize;
        self.datums[row * na + a] = s;
        events.push(DeltaEvent::Touched(i as u32));
        true
    }

    fn apply_set_threshold(
        &mut self,
        id: ProviderId,
        threshold: u64,
        events: &mut Vec<DeltaEvent>,
    ) -> bool {
        let Some(i) = self.occurrence_of(id) else {
            return false;
        };
        self.thresholds[self.row_of[i] as usize] = threshold;
        events.push(DeltaEvent::Touched(i as u32));
        true
    }
}

/// One mutation in a [`PopulationDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert a provider, or replace the existing occurrence of its id
    /// wholesale (preferences, sensitivities, threshold).
    Upsert(ProviderProfile),
    /// Remove a provider (`swap_remove` semantics; unknown ids no-op).
    Remove(ProviderId),
    /// Replace every stated preference tuple naming `attribute` with
    /// `tuples` (appended after the provider's untouched tuples).
    SetAttributePrefs {
        /// The provider to edit.
        id: ProviderId,
        /// The attribute whose tuples are replaced.
        attribute: String,
        /// The new tuples for that attribute (may be empty = retract).
        tuples: Vec<qpv_taxonomy::PrivacyTuple>,
    },
    /// Overwrite one datum sensitivity.
    SetSensitivity {
        /// The provider to edit.
        id: ProviderId,
        /// The datum's attribute.
        attribute: String,
        /// The new sensitivity.
        sensitivity: DatumSensitivity,
    },
    /// Overwrite the provider's default threshold `v_i`.
    SetThreshold {
        /// The provider to edit.
        id: ProviderId,
        /// The new threshold.
        threshold: u64,
    },
}

/// An ordered batch of population mutations, applied atomically by
/// [`CompiledPopulation::apply_delta`] (one epoch bump per batch).
/// Produced by hand, by `Ppdb`'s write ops, or by
/// `qpv_synth::workload::churn`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PopulationDelta {
    ops: Vec<DeltaOp>,
}

impl PopulationDelta {
    /// An empty delta.
    pub fn new() -> PopulationDelta {
        PopulationDelta::default()
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append one op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Append every op of `other`, in order.
    pub fn merge(&mut self, other: PopulationDelta) {
        self.ops.extend(other.ops);
    }

    /// Drop the first `n` ops (clamped to the length) — the consumer side
    /// of `Ppdb`'s peek/ack protocol, called once those ops are safely
    /// applied downstream.
    pub fn drain_front(&mut self, n: usize) {
        self.ops.drain(..n.min(self.ops.len()));
    }

    /// Builder-style [`DeltaOp::Upsert`].
    pub fn upsert(mut self, profile: ProviderProfile) -> PopulationDelta {
        self.ops.push(DeltaOp::Upsert(profile));
        self
    }

    /// Builder-style [`DeltaOp::Remove`].
    pub fn remove(mut self, id: ProviderId) -> PopulationDelta {
        self.ops.push(DeltaOp::Remove(id));
        self
    }

    /// Builder-style [`DeltaOp::SetAttributePrefs`].
    pub fn set_attribute_prefs(
        mut self,
        id: ProviderId,
        attribute: impl Into<String>,
        tuples: Vec<qpv_taxonomy::PrivacyTuple>,
    ) -> PopulationDelta {
        self.ops.push(DeltaOp::SetAttributePrefs {
            id,
            attribute: attribute.into(),
            tuples,
        });
        self
    }

    /// Builder-style [`DeltaOp::SetSensitivity`].
    pub fn set_sensitivity(
        mut self,
        id: ProviderId,
        attribute: impl Into<String>,
        sensitivity: DatumSensitivity,
    ) -> PopulationDelta {
        self.ops.push(DeltaOp::SetSensitivity {
            id,
            attribute: attribute.into(),
            sensitivity,
        });
        self
    }

    /// Builder-style [`DeltaOp::SetThreshold`].
    pub fn set_threshold(mut self, id: ProviderId, threshold: u64) -> PopulationDelta {
        self.ops.push(DeltaOp::SetThreshold { id, threshold });
        self
    }

    /// Apply the same mutations to a plain profile list — the model-side
    /// mirror of [`CompiledPopulation::apply_delta`], including the
    /// `swap_remove` ordering, so
    /// `CompiledPopulation::from_profiles(&mutated)` audits byte-identical
    /// to the delta-applied population. Assumes unique provider ids, like
    /// the compiled path (ops bind to the first matching profile).
    pub fn apply_to_profiles(&self, profiles: &mut Vec<ProviderProfile>) {
        for op in &self.ops {
            match op {
                DeltaOp::Upsert(p) => match profiles.iter().position(|q| q.id() == p.id()) {
                    Some(i) => profiles[i] = p.clone(),
                    None => profiles.push(p.clone()),
                },
                DeltaOp::Remove(id) => {
                    if let Some(i) = profiles.iter().position(|q| q.id() == *id) {
                        profiles.swap_remove(i);
                    }
                }
                DeltaOp::SetAttributePrefs {
                    id,
                    attribute,
                    tuples,
                } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        let mut prefs = qpv_policy::ProviderPreferences::new(*id);
                        for t in q.preferences.tuples() {
                            if t.attribute != *attribute {
                                prefs.add(t.attribute.clone(), t.tuple.clone());
                            }
                        }
                        for t in tuples {
                            prefs.add(attribute.clone(), t.clone());
                        }
                        q.preferences = prefs;
                    }
                }
                DeltaOp::SetSensitivity {
                    id,
                    attribute,
                    sensitivity,
                } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        q.sensitivities.insert(attribute.clone(), *sensitivity);
                    }
                }
                DeltaOp::SetThreshold { id, threshold } => {
                    if let Some(q) = profiles.iter_mut().find(|q| q.id() == *id) {
                        q.threshold = *threshold;
                    }
                }
            }
        }
    }
}

/// Why [`CompiledPopulation::apply_delta`] refused a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The population interned this provider id more than once, so
    /// id-based delta addressing is ambiguous. Rebuild duplicate-free
    /// (or keep auditing it batch-style — audits are unaffected).
    DuplicateOccurrences(ProviderId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DuplicateOccurrences(id) => write!(
                f,
                "provider id {} occurs more than once; deltas address providers by id",
                id.0
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// One occurrence-level effect of an applied delta, in application
/// order. Indices are positions *at the time the event fired* — replay
/// them in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeltaEvent {
    /// Occurrence `i` changed in place: re-score it.
    Touched(u32),
    /// A fresh occurrence appeared at index `i` (the then-end).
    Appended(u32),
    /// Occurrence `i` was removed; the then-last occurrence (if any)
    /// moved into slot `i` (`swap_remove`).
    Removed(u32),
}

/// The event log of one [`CompiledPopulation::apply_delta`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The population epoch after application.
    pub epoch: u64,
    events: Vec<DeltaEvent>,
    /// Ops that named an unknown provider id and therefore bound to
    /// nothing. The mutation semantics match
    /// [`PopulationDelta::apply_to_profiles`] either way (unknown-id
    /// edits are no-ops on both paths); the count exists so callers can
    /// detect a delta that partially missed — e.g. one replayed against
    /// the wrong snapshot — instead of the misses vanishing silently.
    pub skipped: u64,
}

impl DeltaOutcome {
    pub(crate) fn events(&self) -> &[DeltaEvent] {
        &self.events
    }

    /// Number of per-occurrence events the delta produced (an upper
    /// bound on distinct touched providers).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the delta touched nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Population → plan symbol-id translation arrays. `u32::MAX` marks a
/// population symbol the plan never interned (no policy row can match it).
#[derive(Debug, Clone)]
pub(crate) struct PlanBinding {
    attr_to_plan: Vec<u32>,
    purpose_to_plan: Vec<u32>,
    /// Plan attribute id → population attribute id, for datum loads.
    /// `None` means no provider ever stated a preference or sensitivity
    /// for that attribute, so its datum is neutral for everyone.
    plan_attr_to_pop: Vec<Option<u32>>,
}

/// Incrementally interns providers into a [`CompiledPopulation`].
///
/// Two entry styles:
/// * [`PopulationBuilder::push_profile`] — from materialized
///   [`ProviderProfile`]s;
/// * the scan-oriented [`PopulationBuilder::push_occurrence`] /
///   [`PopulationBuilder::set_sensitivity`] /
///   [`PopulationBuilder::set_threshold`] trio — used by
///   `Ppdb::compiled_population` to build straight off batched table
///   scans without materializing profiles.
#[derive(Debug, Default)]
pub struct PopulationBuilder {
    attrs: SymbolTable,
    purposes: SymbolTable,
    ids: Vec<ProviderId>,
    pref_ranges: Vec<(u32, u32)>,
    pref_rows: Vec<PrefRow>,
    row_of: Vec<u32>,
    id_rows: HashMap<ProviderId, u32>,
    /// Sparse per-id-row sensitivity entries; densified in `finish` (the
    /// attribute table is still growing while profiles stream in).
    sens: Vec<Vec<(u32, DatumSensitivity)>>,
    thresholds: Vec<u64>,
}

impl PopulationBuilder {
    /// An empty builder.
    pub fn new() -> PopulationBuilder {
        PopulationBuilder::default()
    }

    /// Number of occurrences pushed so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Intern one profile: its preferences as a fresh occurrence, its
    /// sensitivities and threshold merged into the id's row (overwrite
    /// per attribute, threshold last-wins — [`crate::profile::assemble`]
    /// semantics).
    pub fn push_profile(&mut self, p: &ProviderProfile) {
        let start = self.pref_rows.len() as u32;
        for t in p.preferences.tuples() {
            let attr = self.attrs.intern(&t.attribute);
            let purpose = self.purposes.intern(t.tuple.purpose.name());
            self.pref_rows.push(PrefRow {
                attr,
                purpose,
                point: t.tuple.point,
            });
        }
        let end = self.pref_rows.len() as u32;
        self.ids.push(p.id());
        self.pref_ranges.push((start, end));
        let row = self.id_row(p.id());
        self.row_of.push(row);
        for (attr, s) in &p.sensitivities {
            let a = self.attrs.intern(attr);
            set_entry(&mut self.sens[row as usize], a, *s);
        }
        self.thresholds[row as usize] = p.threshold;
    }

    /// Intern an attribute name (scan path).
    pub fn intern_attr(&mut self, name: &str) -> u32 {
        self.attrs.intern(name)
    }

    /// Intern a purpose name (scan path).
    pub fn intern_purpose(&mut self, name: &str) -> u32 {
        self.purposes.intern(name)
    }

    /// Append one provider occurrence whose preference rows are already
    /// interned `(attr_id, purpose_id, point)` triples (scan path).
    pub fn push_occurrence(&mut self, id: ProviderId, rows: &[(u32, u32, PrivacyPoint)]) {
        let start = self.pref_rows.len() as u32;
        self.pref_rows
            .extend(rows.iter().map(|&(attr, purpose, point)| PrefRow {
                attr,
                purpose,
                point,
            }));
        let end = self.pref_rows.len() as u32;
        self.ids.push(id);
        self.pref_ranges.push((start, end));
        let row = self.id_row(id);
        self.row_of.push(row);
    }

    /// Set (overwrite) one datum sensitivity for an already-pushed id.
    /// Unknown ids are ignored — matching the table scans, where
    /// sensitivity rows for providers absent from the data table are
    /// dropped.
    pub fn set_sensitivity(&mut self, id: ProviderId, attr: u32, s: DatumSensitivity) {
        if let Some(&row) = self.id_rows.get(&id) {
            set_entry(&mut self.sens[row as usize], attr, s);
        }
    }

    /// Set (overwrite) the threshold for an already-pushed id. Unknown
    /// ids are ignored, as in [`PopulationBuilder::set_sensitivity`].
    pub fn set_threshold(&mut self, id: ProviderId, threshold: u64) {
        if let Some(&row) = self.id_rows.get(&id) {
            self.thresholds[row as usize] = threshold;
        }
    }

    /// Densify and freeze.
    pub fn finish(self) -> CompiledPopulation {
        let na = self.attrs.len();
        let mut datums = vec![DatumSensitivity::neutral(); self.sens.len() * na];
        for (row, entries) in self.sens.iter().enumerate() {
            for &(a, s) in entries {
                datums[row * na + a as usize] = s;
            }
        }
        // Unique-id populations (the common case, and the paper's
        // Assumption 5) get a delta-addressing map; duplicate-occurrence
        // populations stay audit-only.
        let index = if self.ids.len() == self.id_rows.len() {
            Some(
                self.ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, i as u32))
                    .collect(),
            )
        } else {
            None
        };
        CompiledPopulation {
            attrs: self.attrs,
            purposes: self.purposes,
            ids: self.ids,
            pref_ranges: self.pref_ranges,
            pref_rows: self.pref_rows,
            row_of: self.row_of,
            datums,
            thresholds: self.thresholds,
            epoch: 0,
            index,
            free_pref: Vec::new(),
            free_rows: Vec::new(),
        }
    }

    fn id_row(&mut self, id: ProviderId) -> u32 {
        match self.id_rows.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let row = self.sens.len() as u32;
                e.insert(row);
                self.sens.push(Vec::new());
                self.thresholds.push(0);
                row
            }
        }
    }
}

/// Overwrite-or-append into a sparse per-row entry list. Rows hold a
/// handful of attributes, so a linear scan beats hashing.
fn set_entry(entries: &mut Vec<(u32, DatumSensitivity)>, attr: u32, s: DatumSensitivity) {
    if let Some(e) = entries.iter_mut().find(|e| e.0 == attr) {
        e.1 = s;
    } else {
        entries.push((attr, s));
    }
}

/// Counts-only aggregate of auditing one policy against a compiled
/// population: everything Eq. 31's expansion economics and the what-if
/// search read, with no per-provider allocations behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Equation 16's `Violations`.
    pub total_violations: u128,
    /// Providers with `w_i = 1`.
    pub violated: usize,
    /// Providers with `default_i = 1`.
    pub defaulted: usize,
    /// Population size `N` (occurrences).
    pub population: usize,
}

impl PolicyOutcome {
    /// Definition 2's `P(W)` (census form).
    pub fn p_violation(&self) -> f64 {
        census_fraction(self.violated, self.population)
    }

    /// Definition 5's `P(Default)` (census form).
    pub fn p_default(&self) -> f64 {
        census_fraction(self.defaulted, self.population)
    }

    /// `N_future`: providers remaining after defaults (Eq. 26).
    pub fn remaining(&self) -> usize {
        self.population - self.defaulted
    }

    /// Definition 3: `P(W) ≤ α`.
    pub fn is_alpha_ppdb(&self, alpha: f64) -> bool {
        self.p_violation() <= alpha
    }
}

impl AuditEngine {
    /// Audit a compiled population, producing the same full
    /// [`AuditReport`] as [`AuditEngine::run`] — bitwise-identical, in
    /// fact: `run` routes through this.
    pub fn audit_compiled(&self, pop: &CompiledPopulation) -> AuditReport {
        let plan = self.compile_house();
        let binding = pop.bind(&plan);
        let mut scratch = PlanScratch::new();
        let mut providers = Vec::with_capacity(pop.len());
        let mut total: u128 = 0;
        for i in 0..pop.len() {
            let audit = pop.audit_provider(&plan, &binding, i, &mut scratch);
            total += audit.score as u128;
            providers.push(audit);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// Counts-only audit of the engine's own policy: aggregates identical
    /// to `self.audit_compiled(pop)`'s, with zero heap allocated per
    /// provider.
    pub fn counts(&self, pop: &CompiledPopulation) -> PolicyOutcome {
        let plan = self.compile_house();
        let mut scratch = PlanScratch::new();
        self.counts_pass(pop, &plan, &mut scratch)
    }

    /// Counts-only audit of a *different* policy — the cheap what-if
    /// primitive (compile the population once, call this K times).
    pub fn counts_with_policy(
        &self,
        pop: &CompiledPopulation,
        policy: &HousePolicy,
    ) -> PolicyOutcome {
        let plan = self.compile_policy(policy);
        let mut scratch = PlanScratch::new();
        self.counts_pass(pop, &plan, &mut scratch)
    }

    /// Evaluate K candidate policies against one compiled population:
    /// Eq. 31's search as one population compile + K string-free passes,
    /// sharing a single scratch across passes. Outcomes are in `policies`
    /// order, each equal to what a full re-audit would aggregate to.
    pub fn audit_many_policies(
        &self,
        pop: &CompiledPopulation,
        policies: &[HousePolicy],
    ) -> Vec<PolicyOutcome> {
        let mut scratch = PlanScratch::new();
        policies
            .iter()
            .map(|policy| {
                let plan = self.compile_policy(policy);
                self.counts_pass(pop, &plan, &mut scratch)
            })
            .collect()
    }

    fn counts_pass(
        &self,
        pop: &CompiledPopulation,
        plan: &CompiledAuditPlan,
        scratch: &mut PlanScratch,
    ) -> PolicyOutcome {
        let binding = pop.bind(plan);
        let mut total: u128 = 0;
        let mut violated = 0usize;
        let mut defaulted = 0usize;
        for i in 0..pop.len() {
            let (score, v, d) = pop.count_provider(plan, &binding, i, scratch);
            total += score as u128;
            violated += v as usize;
            defaulted += d as usize;
        }
        PolicyOutcome {
            total_violations: total,
            violated,
            defaulted,
            population: pop.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec (crate-internal, used by `crate::deltalog`)
// ---------------------------------------------------------------------------

fn snap_corrupt(what: &str) -> DbError {
    DbError::Corruption(format!("population snapshot: {what}"))
}

fn put_symbols(buf: &mut Vec<u8>, table: &SymbolTable) {
    let names = table.names();
    put_varint(buf, names.len() as u64);
    for name in names {
        let bytes = name.as_bytes();
        put_varint(buf, bytes.len() as u64);
        buf.extend_from_slice(bytes);
    }
}

fn get_symbols(buf: &mut &[u8]) -> DbResult<SymbolTable> {
    let n = get_varint(buf)?;
    let mut table = SymbolTable::new();
    for _ in 0..n {
        let len = get_varint(buf)? as usize;
        let bytes = take(buf, len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| snap_corrupt("non-utf8 symbol"))?;
        table.intern(name);
    }
    if table.len() as u64 != n {
        return Err(snap_corrupt("duplicate interned symbol"));
    }
    Ok(table)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> DbResult<&'a [u8]> {
    if buf.len() < n {
        return Err(snap_corrupt("truncated"));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn le_u32(c: &[u8]) -> u32 {
    u32::from_le_bytes([c[0], c[1], c[2], c[3]])
}

fn le_u64(c: &[u8]) -> u64 {
    u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
}

/// Binary snapshot codec for the delta log ([`crate::deltalog`]): the SoA
/// arrays serialized almost verbatim — bulk fixed-width little-endian rows
/// behind varint counts — so a 100k-provider population decodes in tens of
/// milliseconds. Re-assembling the same population from profile structs
/// (strings, per-provider hash maps) is orders of magnitude slower, and
/// recovery time is the whole point of snapshotting. The id → occurrence
/// index is rebuilt on decode, not stored.
impl CompiledPopulation {
    pub(crate) fn encode_snapshot(&self, buf: &mut Vec<u8>) {
        put_symbols(buf, &self.attrs);
        put_symbols(buf, &self.purposes);
        put_varint(buf, self.ids.len() as u64);
        for id in &self.ids {
            buf.extend_from_slice(&id.0.to_le_bytes());
        }
        for &(start, end) in &self.pref_ranges {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for &row in &self.row_of {
            buf.extend_from_slice(&row.to_le_bytes());
        }
        put_varint(buf, self.pref_rows.len() as u64);
        for row in &self.pref_rows {
            buf.extend_from_slice(&row.attr.to_le_bytes());
            buf.extend_from_slice(&row.purpose.to_le_bytes());
            buf.extend_from_slice(&row.point.get(Dim::Visibility).to_le_bytes());
            buf.extend_from_slice(&row.point.get(Dim::Granularity).to_le_bytes());
            buf.extend_from_slice(&row.point.get(Dim::Retention).to_le_bytes());
        }
        put_varint(buf, self.thresholds.len() as u64);
        for &t in &self.thresholds {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        for d in &self.datums {
            buf.extend_from_slice(&d.value.to_le_bytes());
            buf.extend_from_slice(&d.visibility.to_le_bytes());
            buf.extend_from_slice(&d.granularity.to_le_bytes());
            buf.extend_from_slice(&d.retention.to_le_bytes());
        }
        put_varint(buf, self.epoch);
        put_varint(buf, self.free_pref.len() as u64);
        for &(start, end) in &self.free_pref {
            buf.extend_from_slice(&start.to_le_bytes());
            buf.extend_from_slice(&end.to_le_bytes());
        }
        put_varint(buf, self.free_rows.len() as u64);
        for &row in &self.free_rows {
            buf.extend_from_slice(&row.to_le_bytes());
        }
    }

    pub(crate) fn decode_snapshot(buf: &mut &[u8]) -> DbResult<CompiledPopulation> {
        let attrs = get_symbols(buf)?;
        let purposes = get_symbols(buf)?;
        let n = get_varint(buf)? as usize;
        let ids: Vec<ProviderId> = take(buf, n * 8)?
            .chunks_exact(8)
            .map(|c| ProviderId(le_u64(c)))
            .collect();
        let pref_ranges: Vec<(u32, u32)> = take(buf, n * 8)?
            .chunks_exact(8)
            .map(|c| (le_u32(&c[0..4]), le_u32(&c[4..8])))
            .collect();
        let row_of: Vec<u32> = take(buf, n * 4)?.chunks_exact(4).map(le_u32).collect();
        let n_rows = get_varint(buf)? as usize;
        let pref_rows: Vec<PrefRow> = take(buf, n_rows * 20)?
            .chunks_exact(20)
            .map(|c| PrefRow {
                attr: le_u32(&c[0..4]),
                purpose: le_u32(&c[4..8]),
                point: PrivacyPoint::from_raw(
                    le_u32(&c[8..12]),
                    le_u32(&c[12..16]),
                    le_u32(&c[16..20]),
                ),
            })
            .collect();
        let id_rows = get_varint(buf)? as usize;
        let thresholds: Vec<u64> = take(buf, id_rows * 8)?
            .chunks_exact(8)
            .map(le_u64)
            .collect();
        let datums: Vec<DatumSensitivity> = take(buf, id_rows * attrs.len() * 16)?
            .chunks_exact(16)
            .map(|c| {
                DatumSensitivity::new(
                    le_u32(&c[0..4]),
                    le_u32(&c[4..8]),
                    le_u32(&c[8..12]),
                    le_u32(&c[12..16]),
                )
            })
            .collect();
        let epoch = get_varint(buf)?;
        let n_free = get_varint(buf)? as usize;
        let free_pref: Vec<(u32, u32)> = take(buf, n_free * 8)?
            .chunks_exact(8)
            .map(|c| (le_u32(&c[0..4]), le_u32(&c[4..8])))
            .collect();
        let n_free_rows = get_varint(buf)? as usize;
        let free_rows: Vec<u32> = take(buf, n_free_rows * 4)?
            .chunks_exact(4)
            .map(le_u32)
            .collect();

        // Cheap structural sanity on the CRC-validated payload, so a codec
        // bug surfaces as `Err`, never as a panic in the audit hot loop.
        if pref_ranges
            .iter()
            .chain(&free_pref)
            .any(|&(s, e)| s > e || e as usize > n_rows)
            || row_of.iter().any(|&r| r as usize >= id_rows.max(1))
            || free_rows.iter().any(|&r| r as usize >= id_rows.max(1))
        {
            return Err(snap_corrupt("inconsistent row references"));
        }

        // Rebuild the delta-addressing index; duplicate-occurrence
        // populations stay audit-only, exactly as in `finish()`.
        let mut index = HashMap::with_capacity(n);
        let mut unique = true;
        for (i, &id) in ids.iter().enumerate() {
            if index.insert(id, i as u32).is_some() {
                unique = false;
                break;
            }
        }
        Ok(CompiledPopulation {
            attrs,
            purposes,
            ids,
            pref_ranges,
            pref_rows,
            row_of,
            datums,
            thresholds,
            epoch,
            index: unique.then_some(index),
            free_pref,
            free_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::AttributeSensitivities;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn worked_example() -> (AuditEngine, Vec<ProviderProfile>) {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        (engine, profiles)
    }

    #[test]
    fn compiled_population_reproduces_table_1() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 3);
        assert_eq!(pop.pref_row_count(), 3);
        let report = engine.audit_compiled(&pop);
        let scores: Vec<u64> = report.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80]);
        assert_eq!(report.total_violations, 140);
        assert_eq!(report, engine.run_reference(&profiles));
    }

    #[test]
    fn counts_aggregates_match_the_full_report() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let report = engine.audit_compiled(&pop);
        let counts = engine.counts(&pop);
        assert_eq!(counts.total_violations, report.total_violations);
        assert_eq!(counts.population, report.population());
        assert_eq!(counts.p_violation(), report.p_violation());
        assert_eq!(counts.p_default(), report.p_default());
        assert_eq!(counts.remaining(), report.remaining());
        assert_eq!(counts.violated, 2);
        assert_eq!(counts.defaulted, 1);
        assert!(counts.is_alpha_ppdb(2.0 / 3.0));
        assert!(!counts.is_alpha_ppdb(0.5));
    }

    #[test]
    fn audit_many_policies_equals_one_audit_per_policy() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let policies: Vec<HousePolicy> = (0..4).map(|k| engine.policy.widened_uniform(k)).collect();
        let outcomes = engine.audit_many_policies(&pop, &policies);
        assert_eq!(outcomes.len(), policies.len());
        for (policy, outcome) in policies.iter().zip(&outcomes) {
            let report = engine.run_with_policy(&profiles, policy);
            assert_eq!(outcome.total_violations, report.total_violations);
            assert_eq!(outcome.p_violation(), report.p_violation());
            assert_eq!(outcome.p_default(), report.p_default());
            assert_eq!(outcome.remaining(), report.remaining());
        }
    }

    #[test]
    fn duplicate_ids_merge_datums_but_keep_per_occurrence_preferences() {
        let (_, mut profiles) = worked_example();
        // Re-register Ted (id 1) with different preferences, sensitivity,
        // and threshold. Preferences stay per-occurrence; the datum map
        // and threshold merge last-wins across occurrences.
        let mut dup = ProviderProfile::new(ProviderId(1), 7);
        dup.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        dup.sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 2, 2, 2));
        profiles.push(dup);
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 4, "one occurrence each");
        assert_ne!(
            pop.pref_rows_of(1)[0].point,
            pop.pref_rows_of(3)[0].point,
            "each occurrence audits its own stated preferences"
        );
        // Merged view: the duplicate's sensitivity and threshold win for
        // both occurrences.
        assert_eq!(pop.threshold_of(1), 7);
        assert_eq!(pop.threshold_of(3), 7);
        let a = pop.attrs.get("weight").unwrap();
        assert_eq!(pop.datum(1, a), DatumSensitivity::new(2, 2, 2, 2));
        assert_eq!(pop.datum(3, a), DatumSensitivity::new(2, 2, 2, 2));
    }

    #[test]
    fn scan_path_builder_matches_push_profile() {
        let (_, profiles) = worked_example();
        let via_profiles = CompiledPopulation::from_profiles(&profiles);
        let mut b = PopulationBuilder::new();
        for p in &profiles {
            let rows: Vec<(u32, u32, PrivacyPoint)> = p
                .preferences
                .tuples()
                .iter()
                .map(|t| {
                    (
                        b.intern_attr(&t.attribute),
                        b.intern_purpose(t.tuple.purpose.name()),
                        t.tuple.point,
                    )
                })
                .collect();
            b.push_occurrence(p.id(), &rows);
        }
        for p in &profiles {
            for (attr, s) in &p.sensitivities {
                let a = b.intern_attr(attr);
                b.set_sensitivity(p.id(), a, *s);
            }
            b.set_threshold(p.id(), p.threshold);
        }
        // Unknown ids are silently dropped, like the table scans do.
        b.set_threshold(ProviderId(999), 1);
        b.set_sensitivity(ProviderId(999), 0, DatumSensitivity::neutral());
        let via_scans = b.finish();
        assert_eq!(via_scans.len(), via_profiles.len());
        let (engine, _) = worked_example();
        assert_eq!(
            engine.audit_compiled(&via_scans),
            engine.audit_compiled(&via_profiles)
        );
    }

    /// Delta application audits identically to a fresh compile of the
    /// mutated profile list, across every op kind.
    #[test]
    fn apply_delta_matches_fresh_compile_of_mutated_profiles() {
        let (engine, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.epoch(), 0);

        let mut newcomer = ProviderProfile::new(ProviderId(9), 30);
        newcomer
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(6, 6, 6)));
        newcomer
            .sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 1, 1, 1));
        let mut replacement = ProviderProfile::new(ProviderId(0), 5);
        replacement
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));

        let delta = PopulationDelta::new()
            .upsert(newcomer)
            .upsert(replacement)
            .remove(ProviderId(1))
            .set_attribute_prefs(
                ProviderId(2),
                "weight",
                vec![PrivacyTuple::from_point("pr", pt(3, 3, 3))],
            )
            .set_sensitivity(ProviderId(2), "weight", DatumSensitivity::new(5, 5, 5, 5))
            .set_threshold(ProviderId(2), 1)
            .remove(ProviderId(777)); // unknown id: no-op

        let mut mutated = profiles.clone();
        delta.apply_to_profiles(&mut mutated);
        let outcome = pop.apply_delta(&delta).expect("unique ids");
        assert_eq!(pop.epoch(), 1);
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.len(), 6, "the unknown-id op produced no event");
        assert_eq!(outcome.skipped, 1, "the unknown-id op was counted");

        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(
            engine.audit_compiled(&pop),
            engine.audit_compiled(&fresh),
            "delta-applied population audits byte-identical to a rebuild"
        );
    }

    /// Removal + re-insert cycles reuse freed preference rows and id-rows
    /// instead of growing the flat arrays.
    #[test]
    fn delta_freelists_recycle_rows() {
        let (engine, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let rows_before = pop.pref_rows.len();
        let id_rows_before = pop.thresholds.len();
        let mut mutated = profiles.clone();
        for round in 0u64..8 {
            let mut p = ProviderProfile::new(ProviderId(1), 10 + round);
            p.preferences
                .add("weight", PrivacyTuple::from_point("pr", pt(4, 4, 4)));
            p.sensitivities
                .insert("weight".into(), DatumSensitivity::new(1, 2, 3, 4));
            let delta = PopulationDelta::new().remove(ProviderId(1)).upsert(p);
            delta.apply_to_profiles(&mut mutated);
            pop.apply_delta(&delta).expect("unique ids");
        }
        assert_eq!(pop.pref_rows.len(), rows_before, "pref rows recycled");
        assert_eq!(pop.thresholds.len(), id_rows_before, "id-rows recycled");
        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(engine.audit_compiled(&pop), engine.audit_compiled(&fresh));
    }

    /// A delta introducing a brand-new attribute re-strides the datum
    /// table without disturbing existing sensitivities.
    #[test]
    fn delta_with_new_attribute_restrides_datums() {
        let (_, profiles) = worked_example();
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let delta = PopulationDelta::new()
            .set_sensitivity(ProviderId(0), "height", DatumSensitivity::new(9, 9, 9, 9))
            .set_attribute_prefs(
                ProviderId(1),
                "height",
                vec![PrivacyTuple::from_point("pr", pt(2, 2, 2))],
            );
        let mut mutated = profiles.clone();
        delta.apply_to_profiles(&mut mutated);
        pop.apply_delta(&delta).expect("unique ids");
        let h = pop.attrs.get("height").expect("interned by the delta");
        let w = pop.attrs.get("weight").expect("still interned");
        assert_eq!(pop.datum(0, h), DatumSensitivity::new(9, 9, 9, 9));
        assert_eq!(pop.datum(1, h), DatumSensitivity::neutral());
        assert_eq!(pop.datum(1, w), DatumSensitivity::new(3, 1, 5, 2));
        // Audit with an engine that covers the new attribute.
        let policy = HousePolicy::builder("h2")
            .tuple("height", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
            .build();
        let engine = AuditEngine::new(policy, ["weight", "height"], {
            let mut w = AttributeSensitivities::new();
            w.set("weight", 4);
            w.set("height", 2);
            w
        });
        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(engine.audit_compiled(&pop), engine.audit_compiled(&fresh));
    }

    /// Duplicate-occurrence populations stay audit-only: deltas are
    /// refused with the offending id.
    #[test]
    fn duplicate_occurrences_refuse_deltas() {
        let (_, mut profiles) = worked_example();
        profiles.push(profiles[1].clone());
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let delta = PopulationDelta::new().set_threshold(ProviderId(0), 3);
        assert_eq!(
            pop.apply_delta(&delta),
            Err(DeltaError::DuplicateOccurrences(ProviderId(1)))
        );
        assert_eq!(pop.epoch(), 0, "refused deltas do not bump the epoch");
    }

    #[test]
    fn empty_population_and_empty_policy() {
        let (engine, profiles) = worked_example();
        let empty = CompiledPopulation::from_profiles(&[]);
        assert!(empty.is_empty());
        let counts = engine.counts(&empty);
        assert_eq!(counts.population, 0);
        assert_eq!(counts.p_violation(), 0.0);
        assert_eq!(counts.remaining(), 0);
        // A policy whose tuples are all filtered out still audits.
        let ghost = HousePolicy::builder("g")
            .tuple("ghost", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .build();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let outcome = engine.counts_with_policy(&pop, &ghost);
        assert_eq!(outcome.total_violations, 0);
        assert_eq!(outcome.violated, 0);
    }
}
