//! The compiled population: structure-of-arrays provider storage.
//!
//! [`crate::plan::CompiledAuditPlan`] (PR 2) compiled the *house* side of
//! the audit — policy tuples to dense rows, lattice coverage to id lists.
//! The provider side stayed an array-of-structs: every audit re-hashes
//! every stated preference string of every [`ProviderProfile`], and §9's
//! policy-expansion economics (Eq. 31) repeats that work for every
//! candidate policy. A [`CompiledPopulation`] interns the whole population
//! **once**:
//!
//! * every stated preference becomes a dense `(attr_id, purpose_id,
//!   point)` [`PrefRow`], with per-provider offset ranges into one flat
//!   row array;
//! * datum sensitivities densify into one flat `providers × attributes`
//!   table (merged last-wins per provider id, exactly like
//!   [`crate::profile::assemble`] — so duplicate-id populations resolve
//!   identically to the reference path);
//! * thresholds flatten into one array per distinct id.
//!
//! Auditing against a plan then needs no string hashing at all: a
//! [`PlanBinding`] translates population symbol ids to plan symbol ids
//! through two plain arrays, built once per (population, plan) pair. The
//! counts-only path ([`AuditEngine::counts`],
//! [`AuditEngine::audit_many_policies`]) allocates **zero heap per
//! provider** — witness strings are resolved from the symbol tables only
//! when a full report is requested.
//!
//! Everything here is pinned bitwise-equal to
//! [`AuditEngine::run_reference`] by `tests/pop_equivalence.rs`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::PrivacyPoint;

use crate::audit::{AuditEngine, AuditReport, ProviderAudit};
use crate::default_model::defaults;
use crate::intern::SymbolTable;
use crate::plan::{CompiledAuditPlan, PlanScratch};
use crate::probability::census_fraction;
use crate::profile::ProviderProfile;
use crate::sensitivity::DatumSensitivity;

/// One interned stated preference: the SoA row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefRow {
    /// Population attribute id.
    pub(crate) attr: u32,
    /// Population purpose id.
    pub(crate) purpose: u32,
    /// The stated point.
    pub(crate) point: PrivacyPoint,
}

/// A whole population interned into flat structure-of-arrays storage.
/// Build once ([`CompiledPopulation::from_profiles`], a
/// [`PopulationBuilder`], or `Ppdb::compiled_population`), audit many
/// times — see the module docs.
#[derive(Debug, Clone)]
pub struct CompiledPopulation {
    /// Every attribute name stated in a preference or carrying a datum
    /// sensitivity, interned once for the whole population.
    attrs: SymbolTable,
    /// Every stated purpose name, interned once.
    purposes: SymbolTable,
    /// Provider ids, one per *occurrence*, in input order.
    ids: Vec<ProviderId>,
    /// Per-occurrence `[start, end)` ranges into `pref_rows`. Preferences
    /// are per-occurrence: when an id occurs twice with different stated
    /// preferences, each occurrence audits its own — exactly what the
    /// reference path does.
    pref_ranges: Vec<(u32, u32)>,
    /// All interned preference rows, statement order within each range.
    pref_rows: Vec<PrefRow>,
    /// Occurrence index → merged id-row index (`datums` / `thresholds`).
    /// Datums and thresholds are per-*id*, merged last-wins across
    /// occurrences, matching [`crate::profile::assemble`].
    row_of: Vec<u32>,
    /// `id_rows × attrs.len()` datum sensitivities, row-major, neutral
    /// where never set.
    datums: Vec<DatumSensitivity>,
    /// Per id-row default threshold `v_i` (last occurrence wins).
    thresholds: Vec<u64>,
}

impl CompiledPopulation {
    /// Intern a whole population in one pass.
    pub fn from_profiles(profiles: &[ProviderProfile]) -> CompiledPopulation {
        let mut b = PopulationBuilder::new();
        for p in profiles {
            b.push_profile(p);
        }
        b.finish()
    }

    /// Number of provider occurrences (the audit's `N`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of occurrence `i`.
    pub fn id(&self, i: usize) -> ProviderId {
        self.ids[i]
    }

    /// The resolved (merged, last-wins) threshold for occurrence `i`.
    pub fn threshold_of(&self, i: usize) -> u64 {
        self.thresholds[self.row_of[i] as usize]
    }

    /// Total interned preference rows across the population.
    pub fn pref_row_count(&self) -> usize {
        self.pref_rows.len()
    }

    /// Number of distinct interned attribute / purpose names.
    pub fn symbol_counts(&self) -> (usize, usize) {
        (self.attrs.len(), self.purposes.len())
    }

    /// The interned preference rows of occurrence `i`.
    pub(crate) fn pref_rows_of(&self, i: usize) -> &[PrefRow] {
        let (start, end) = self.pref_ranges[i];
        &self.pref_rows[start as usize..end as usize]
    }

    /// The merged datum sensitivity of occurrence `i` for a population
    /// attribute id.
    pub(crate) fn datum(&self, i: usize, attr: u32) -> DatumSensitivity {
        self.datums[self.row_of[i] as usize * self.attrs.len() + attr as usize]
    }

    /// The population-side symbol tables (attributes, purposes).
    pub(crate) fn symbols(&self) -> (&SymbolTable, &SymbolTable) {
        (&self.attrs, &self.purposes)
    }

    /// Translate this population's symbol ids to a plan's. Two array
    /// probes replace two hash lookups per preference row in the hot
    /// loop; build once per (population, plan) pair.
    pub(crate) fn bind(&self, plan: &CompiledAuditPlan) -> PlanBinding {
        PlanBinding {
            attr_to_plan: self
                .attrs
                .names()
                .iter()
                .map(|n| plan.attrs.get(n).unwrap_or(u32::MAX))
                .collect(),
            purpose_to_plan: self
                .purposes
                .names()
                .iter()
                .map(|n| plan.purposes.get(n).unwrap_or(u32::MAX))
                .collect(),
            plan_attr_to_pop: plan
                .attrs
                .names()
                .iter()
                .map(|n| self.attrs.get(n))
                .collect(),
        }
    }

    /// Index occurrence `i` into the plan-shaped scratch: the SoA
    /// equivalent of `CompiledAuditPlan::index_profile`, with the string
    /// hashing replaced by binding-array probes. Semantics are identical:
    /// flat mode keeps the first stated tuple per `(attr, purpose)`,
    /// lattice mode joins all of them, rows naming symbols the plan never
    /// interned are skipped, and datum slots for plan attributes the
    /// population never saw stay neutral (no provider can have set them).
    fn index_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) {
        let np = plan.purposes.len();
        let epoch = plan.prepare_scratch(scratch);
        for row in self.pref_rows_of(i) {
            let a = binding.attr_to_plan[row.attr as usize];
            if a == u32::MAX {
                continue;
            }
            let p = binding.purpose_to_plan[row.purpose as usize];
            if p == u32::MAX {
                continue;
            }
            let slot = &mut scratch.slots[a as usize * np + p as usize];
            if slot.epoch != epoch {
                slot.epoch = epoch;
                slot.point = row.point;
            } else if plan.lattice_mode {
                slot.point = slot.point.join(&row.point);
            }
        }
        for (a, pop_attr) in binding.plan_attr_to_pop.iter().enumerate() {
            scratch.datums[a] = match pop_attr {
                Some(pa) => self.datum(i, *pa),
                None => DatumSensitivity::neutral(),
            };
        }
    }

    /// Fully audit occurrence `i` (witnesses resolved from the symbol
    /// tables).
    pub(crate) fn audit_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) -> ProviderAudit {
        self.index_provider(plan, binding, i, scratch);
        let mut wit = Vec::new();
        let (score, _) = plan.eval_scratch(scratch, Some(&mut wit));
        let threshold = self.threshold_of(i);
        ProviderAudit {
            provider: self.ids[i],
            violated: !wit.is_empty(),
            score,
            threshold,
            defaulted: defaults(score, threshold),
            witnesses: wit,
        }
    }

    /// Counts-only audit of occurrence `i`: `(score, violated,
    /// defaulted)`. Touches no strings, allocates nothing.
    fn count_provider(
        &self,
        plan: &CompiledAuditPlan,
        binding: &PlanBinding,
        i: usize,
        scratch: &mut PlanScratch,
    ) -> (u64, bool, bool) {
        self.index_provider(plan, binding, i, scratch);
        let (score, violations) = plan.eval_scratch(scratch, None);
        let threshold = self.threshold_of(i);
        (score, violations > 0, defaults(score, threshold))
    }
}

/// Population → plan symbol-id translation arrays. `u32::MAX` marks a
/// population symbol the plan never interned (no policy row can match it).
#[derive(Debug, Clone)]
pub(crate) struct PlanBinding {
    attr_to_plan: Vec<u32>,
    purpose_to_plan: Vec<u32>,
    /// Plan attribute id → population attribute id, for datum loads.
    /// `None` means no provider ever stated a preference or sensitivity
    /// for that attribute, so its datum is neutral for everyone.
    plan_attr_to_pop: Vec<Option<u32>>,
}

/// Incrementally interns providers into a [`CompiledPopulation`].
///
/// Two entry styles:
/// * [`PopulationBuilder::push_profile`] — from materialized
///   [`ProviderProfile`]s;
/// * the scan-oriented [`PopulationBuilder::push_occurrence`] /
///   [`PopulationBuilder::set_sensitivity`] /
///   [`PopulationBuilder::set_threshold`] trio — used by
///   `Ppdb::compiled_population` to build straight off batched table
///   scans without materializing profiles.
#[derive(Debug, Default)]
pub struct PopulationBuilder {
    attrs: SymbolTable,
    purposes: SymbolTable,
    ids: Vec<ProviderId>,
    pref_ranges: Vec<(u32, u32)>,
    pref_rows: Vec<PrefRow>,
    row_of: Vec<u32>,
    id_rows: HashMap<ProviderId, u32>,
    /// Sparse per-id-row sensitivity entries; densified in `finish` (the
    /// attribute table is still growing while profiles stream in).
    sens: Vec<Vec<(u32, DatumSensitivity)>>,
    thresholds: Vec<u64>,
}

impl PopulationBuilder {
    /// An empty builder.
    pub fn new() -> PopulationBuilder {
        PopulationBuilder::default()
    }

    /// Number of occurrences pushed so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Intern one profile: its preferences as a fresh occurrence, its
    /// sensitivities and threshold merged into the id's row (overwrite
    /// per attribute, threshold last-wins — [`crate::profile::assemble`]
    /// semantics).
    pub fn push_profile(&mut self, p: &ProviderProfile) {
        let start = self.pref_rows.len() as u32;
        for t in p.preferences.tuples() {
            let attr = self.attrs.intern(&t.attribute);
            let purpose = self.purposes.intern(t.tuple.purpose.name());
            self.pref_rows.push(PrefRow {
                attr,
                purpose,
                point: t.tuple.point,
            });
        }
        let end = self.pref_rows.len() as u32;
        self.ids.push(p.id());
        self.pref_ranges.push((start, end));
        let row = self.id_row(p.id());
        self.row_of.push(row);
        for (attr, s) in &p.sensitivities {
            let a = self.attrs.intern(attr);
            set_entry(&mut self.sens[row as usize], a, *s);
        }
        self.thresholds[row as usize] = p.threshold;
    }

    /// Intern an attribute name (scan path).
    pub fn intern_attr(&mut self, name: &str) -> u32 {
        self.attrs.intern(name)
    }

    /// Intern a purpose name (scan path).
    pub fn intern_purpose(&mut self, name: &str) -> u32 {
        self.purposes.intern(name)
    }

    /// Append one provider occurrence whose preference rows are already
    /// interned `(attr_id, purpose_id, point)` triples (scan path).
    pub fn push_occurrence(&mut self, id: ProviderId, rows: &[(u32, u32, PrivacyPoint)]) {
        let start = self.pref_rows.len() as u32;
        self.pref_rows
            .extend(rows.iter().map(|&(attr, purpose, point)| PrefRow {
                attr,
                purpose,
                point,
            }));
        let end = self.pref_rows.len() as u32;
        self.ids.push(id);
        self.pref_ranges.push((start, end));
        let row = self.id_row(id);
        self.row_of.push(row);
    }

    /// Set (overwrite) one datum sensitivity for an already-pushed id.
    /// Unknown ids are ignored — matching the table scans, where
    /// sensitivity rows for providers absent from the data table are
    /// dropped.
    pub fn set_sensitivity(&mut self, id: ProviderId, attr: u32, s: DatumSensitivity) {
        if let Some(&row) = self.id_rows.get(&id) {
            set_entry(&mut self.sens[row as usize], attr, s);
        }
    }

    /// Set (overwrite) the threshold for an already-pushed id. Unknown
    /// ids are ignored, as in [`PopulationBuilder::set_sensitivity`].
    pub fn set_threshold(&mut self, id: ProviderId, threshold: u64) {
        if let Some(&row) = self.id_rows.get(&id) {
            self.thresholds[row as usize] = threshold;
        }
    }

    /// Densify and freeze.
    pub fn finish(self) -> CompiledPopulation {
        let na = self.attrs.len();
        let mut datums = vec![DatumSensitivity::neutral(); self.sens.len() * na];
        for (row, entries) in self.sens.iter().enumerate() {
            for &(a, s) in entries {
                datums[row * na + a as usize] = s;
            }
        }
        CompiledPopulation {
            attrs: self.attrs,
            purposes: self.purposes,
            ids: self.ids,
            pref_ranges: self.pref_ranges,
            pref_rows: self.pref_rows,
            row_of: self.row_of,
            datums,
            thresholds: self.thresholds,
        }
    }

    fn id_row(&mut self, id: ProviderId) -> u32 {
        match self.id_rows.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let row = self.sens.len() as u32;
                e.insert(row);
                self.sens.push(Vec::new());
                self.thresholds.push(0);
                row
            }
        }
    }
}

/// Overwrite-or-append into a sparse per-row entry list. Rows hold a
/// handful of attributes, so a linear scan beats hashing.
fn set_entry(entries: &mut Vec<(u32, DatumSensitivity)>, attr: u32, s: DatumSensitivity) {
    if let Some(e) = entries.iter_mut().find(|e| e.0 == attr) {
        e.1 = s;
    } else {
        entries.push((attr, s));
    }
}

/// Counts-only aggregate of auditing one policy against a compiled
/// population: everything Eq. 31's expansion economics and the what-if
/// search read, with no per-provider allocations behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Equation 16's `Violations`.
    pub total_violations: u128,
    /// Providers with `w_i = 1`.
    pub violated: usize,
    /// Providers with `default_i = 1`.
    pub defaulted: usize,
    /// Population size `N` (occurrences).
    pub population: usize,
}

impl PolicyOutcome {
    /// Definition 2's `P(W)` (census form).
    pub fn p_violation(&self) -> f64 {
        census_fraction(self.violated, self.population)
    }

    /// Definition 5's `P(Default)` (census form).
    pub fn p_default(&self) -> f64 {
        census_fraction(self.defaulted, self.population)
    }

    /// `N_future`: providers remaining after defaults (Eq. 26).
    pub fn remaining(&self) -> usize {
        self.population - self.defaulted
    }

    /// Definition 3: `P(W) ≤ α`.
    pub fn is_alpha_ppdb(&self, alpha: f64) -> bool {
        self.p_violation() <= alpha
    }
}

impl AuditEngine {
    /// Audit a compiled population, producing the same full
    /// [`AuditReport`] as [`AuditEngine::run`] — bitwise-identical, in
    /// fact: `run` routes through this.
    pub fn audit_compiled(&self, pop: &CompiledPopulation) -> AuditReport {
        let plan = self.compile_house();
        let binding = pop.bind(&plan);
        let mut scratch = PlanScratch::new();
        let mut providers = Vec::with_capacity(pop.len());
        let mut total: u128 = 0;
        for i in 0..pop.len() {
            let audit = pop.audit_provider(&plan, &binding, i, &mut scratch);
            total += audit.score as u128;
            providers.push(audit);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// Counts-only audit of the engine's own policy: aggregates identical
    /// to `self.audit_compiled(pop)`'s, with zero heap allocated per
    /// provider.
    pub fn counts(&self, pop: &CompiledPopulation) -> PolicyOutcome {
        let plan = self.compile_house();
        let mut scratch = PlanScratch::new();
        self.counts_pass(pop, &plan, &mut scratch)
    }

    /// Counts-only audit of a *different* policy — the cheap what-if
    /// primitive (compile the population once, call this K times).
    pub fn counts_with_policy(
        &self,
        pop: &CompiledPopulation,
        policy: &HousePolicy,
    ) -> PolicyOutcome {
        let plan = self.compile_policy(policy);
        let mut scratch = PlanScratch::new();
        self.counts_pass(pop, &plan, &mut scratch)
    }

    /// Evaluate K candidate policies against one compiled population:
    /// Eq. 31's search as one population compile + K string-free passes,
    /// sharing a single scratch across passes. Outcomes are in `policies`
    /// order, each equal to what a full re-audit would aggregate to.
    pub fn audit_many_policies(
        &self,
        pop: &CompiledPopulation,
        policies: &[HousePolicy],
    ) -> Vec<PolicyOutcome> {
        let mut scratch = PlanScratch::new();
        policies
            .iter()
            .map(|policy| {
                let plan = self.compile_policy(policy);
                self.counts_pass(pop, &plan, &mut scratch)
            })
            .collect()
    }

    fn counts_pass(
        &self,
        pop: &CompiledPopulation,
        plan: &CompiledAuditPlan,
        scratch: &mut PlanScratch,
    ) -> PolicyOutcome {
        let binding = pop.bind(plan);
        let mut total: u128 = 0;
        let mut violated = 0usize;
        let mut defaulted = 0usize;
        for i in 0..pop.len() {
            let (score, v, d) = pop.count_provider(plan, &binding, i, scratch);
            total += score as u128;
            violated += v as usize;
            defaulted += d as usize;
        }
        PolicyOutcome {
            total_violations: total,
            violated,
            defaulted,
            population: pop.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::AttributeSensitivities;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn worked_example() -> (AuditEngine, Vec<ProviderProfile>) {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        (engine, profiles)
    }

    #[test]
    fn compiled_population_reproduces_table_1() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 3);
        assert_eq!(pop.pref_row_count(), 3);
        let report = engine.audit_compiled(&pop);
        let scores: Vec<u64> = report.providers.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0, 60, 80]);
        assert_eq!(report.total_violations, 140);
        assert_eq!(report, engine.run_reference(&profiles));
    }

    #[test]
    fn counts_aggregates_match_the_full_report() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let report = engine.audit_compiled(&pop);
        let counts = engine.counts(&pop);
        assert_eq!(counts.total_violations, report.total_violations);
        assert_eq!(counts.population, report.population());
        assert_eq!(counts.p_violation(), report.p_violation());
        assert_eq!(counts.p_default(), report.p_default());
        assert_eq!(counts.remaining(), report.remaining());
        assert_eq!(counts.violated, 2);
        assert_eq!(counts.defaulted, 1);
        assert!(counts.is_alpha_ppdb(2.0 / 3.0));
        assert!(!counts.is_alpha_ppdb(0.5));
    }

    #[test]
    fn audit_many_policies_equals_one_audit_per_policy() {
        let (engine, profiles) = worked_example();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let policies: Vec<HousePolicy> = (0..4).map(|k| engine.policy.widened_uniform(k)).collect();
        let outcomes = engine.audit_many_policies(&pop, &policies);
        assert_eq!(outcomes.len(), policies.len());
        for (policy, outcome) in policies.iter().zip(&outcomes) {
            let report = engine.run_with_policy(&profiles, policy);
            assert_eq!(outcome.total_violations, report.total_violations);
            assert_eq!(outcome.p_violation(), report.p_violation());
            assert_eq!(outcome.p_default(), report.p_default());
            assert_eq!(outcome.remaining(), report.remaining());
        }
    }

    #[test]
    fn duplicate_ids_merge_datums_but_keep_per_occurrence_preferences() {
        let (_, mut profiles) = worked_example();
        // Re-register Ted (id 1) with different preferences, sensitivity,
        // and threshold. Preferences stay per-occurrence; the datum map
        // and threshold merge last-wins across occurrences.
        let mut dup = ProviderProfile::new(ProviderId(1), 7);
        dup.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        dup.sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 2, 2, 2));
        profiles.push(dup);
        let pop = CompiledPopulation::from_profiles(&profiles);
        assert_eq!(pop.len(), 4, "one occurrence each");
        assert_ne!(
            pop.pref_rows_of(1)[0].point,
            pop.pref_rows_of(3)[0].point,
            "each occurrence audits its own stated preferences"
        );
        // Merged view: the duplicate's sensitivity and threshold win for
        // both occurrences.
        assert_eq!(pop.threshold_of(1), 7);
        assert_eq!(pop.threshold_of(3), 7);
        let a = pop.attrs.get("weight").unwrap();
        assert_eq!(pop.datum(1, a), DatumSensitivity::new(2, 2, 2, 2));
        assert_eq!(pop.datum(3, a), DatumSensitivity::new(2, 2, 2, 2));
    }

    #[test]
    fn scan_path_builder_matches_push_profile() {
        let (_, profiles) = worked_example();
        let via_profiles = CompiledPopulation::from_profiles(&profiles);
        let mut b = PopulationBuilder::new();
        for p in &profiles {
            let rows: Vec<(u32, u32, PrivacyPoint)> = p
                .preferences
                .tuples()
                .iter()
                .map(|t| {
                    (
                        b.intern_attr(&t.attribute),
                        b.intern_purpose(t.tuple.purpose.name()),
                        t.tuple.point,
                    )
                })
                .collect();
            b.push_occurrence(p.id(), &rows);
        }
        for p in &profiles {
            for (attr, s) in &p.sensitivities {
                let a = b.intern_attr(attr);
                b.set_sensitivity(p.id(), a, *s);
            }
            b.set_threshold(p.id(), p.threshold);
        }
        // Unknown ids are silently dropped, like the table scans do.
        b.set_threshold(ProviderId(999), 1);
        b.set_sensitivity(ProviderId(999), 0, DatumSensitivity::neutral());
        let via_scans = b.finish();
        assert_eq!(via_scans.len(), via_profiles.len());
        let (engine, _) = worked_example();
        assert_eq!(
            engine.audit_compiled(&via_scans),
            engine.audit_compiled(&via_profiles)
        );
    }

    #[test]
    fn empty_population_and_empty_policy() {
        let (engine, profiles) = worked_example();
        let empty = CompiledPopulation::from_profiles(&[]);
        assert!(empty.is_empty());
        let counts = engine.counts(&empty);
        assert_eq!(counts.population, 0);
        assert_eq!(counts.p_violation(), 0.0);
        assert_eq!(counts.remaining(), 0);
        // A policy whose tuples are all filtered out still audits.
        let ghost = HousePolicy::builder("g")
            .tuple("ghost", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .build();
        let pop = CompiledPopulation::from_profiles(&profiles);
        let outcome = engine.counts_with_policy(&pop, &ghost);
        assert_eq!(outcome.total_violations, 0);
        assert_eq!(outcome.violated, 0);
    }
}
