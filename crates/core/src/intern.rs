//! Symbol interning for the compiled audit path.
//!
//! The model's hot loops compare attribute and purpose *names* — strings —
//! once per provider per policy tuple. A [`SymbolTable`] maps each distinct
//! name to a dense `u32` id exactly once, so everything downstream
//! ([`crate::plan::CompiledAuditPlan`], the incremental auditor's
//! preference index) runs on integer ids: array indexing instead of string
//! hashing, and `u32` equality instead of byte comparison.

use std::collections::HashMap;

/// A dense string → `u32` interner. Ids are assigned in first-intern order
/// starting at 0, so a table of `n` symbols indexes a `Vec` of length `n`
/// directly.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern a name, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// The id of an already-interned name. `None` means the name was never
    /// seen at compile time — for the audit plan that means no policy row
    /// can possibly match it.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// If the id was not produced by this table.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names, in id order (index = id).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("weight"), 0);
        assert_eq!(t.intern("age"), 1);
        assert_eq!(t.intern("weight"), 0, "re-interning is idempotent");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(0), "weight");
        assert_eq!(t.resolve(1), "age");
        assert_eq!(t.names(), &["weight".to_string(), "age".to_string()]);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        t.intern("a");
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get("anything"), None);
    }
}
