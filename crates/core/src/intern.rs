//! Symbol interning for the compiled audit path.
//!
//! The model's hot loops compare attribute and purpose *names* — strings —
//! once per provider per policy tuple. A [`SymbolTable`] maps each distinct
//! name to a dense `u32` id exactly once, so everything downstream
//! ([`crate::plan::CompiledAuditPlan`], [`crate::pop::CompiledPopulation`],
//! the incremental auditor's preference index) runs on integer ids: array
//! indexing instead of string hashing, and `u32` equality instead of byte
//! comparison.
//!
//! Names are stored behind `Arc<str>`, so resolving an id back to a name
//! for witness construction ([`SymbolTable::resolve_shared`]) is a
//! reference-count bump, never a string copy.

use std::collections::HashMap;
use std::sync::Arc;

/// A dense string → `u32` interner. Ids are assigned in first-intern order
/// starting at 0, so a table of `n` symbols indexes a `Vec` of length `n`
/// directly.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern a name, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        let shared: Arc<str> = Arc::from(name);
        self.ids.insert(shared.clone(), id);
        self.names.push(shared);
        id
    }

    /// The id of an already-interned name. `None` means the name was never
    /// seen at compile time — for the audit plan that means no policy row
    /// can possibly match it.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// If the id was not produced by this table.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// The shared handle behind an id — a reference-count bump, no copy.
    ///
    /// # Panics
    /// If the id was not produced by this table.
    pub fn resolve_shared(&self, id: u32) -> Arc<str> {
        self.names[id as usize].clone()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names, in id order (index = id).
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }
}

/// A deterministic streaming hasher over `u32` words (splitmix64-style
/// mixing), used to fingerprint unique preference/datum rows for the
/// row-intern table in [`crate::pop`]. Deliberately not `RandomState`:
/// rebuilding the same population must produce the same fingerprints so
/// snapshots decode into bit-identical lookup structures.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SigHasher(u64);

impl SigHasher {
    /// A fresh hasher.
    pub(crate) fn new() -> SigHasher {
        SigHasher(0x9E37_79B9_7F4A_7C15)
    }

    /// Absorb one word.
    pub(crate) fn push(&mut self, w: u32) {
        let mut x = self
            .0
            .wrapping_add(w as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }

    /// The fingerprint of everything pushed so far.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A hash → slot multimap: the lookup side of the row-intern table.
/// Collisions chain into a short per-hash bucket; the caller supplies the
/// full equality check, so a collision only costs an extra compare.
#[derive(Debug, Clone, Default)]
pub(crate) struct HashIndex {
    buckets: HashMap<u64, Vec<u32>>,
}

impl HashIndex {
    /// The first slot under `hash` for which `eq` holds.
    pub(crate) fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.buckets.get(&hash)?.iter().copied().find(|&s| eq(s))
    }

    /// Register `slot` under `hash`.
    pub(crate) fn insert(&mut self, hash: u64, slot: u32) {
        self.buckets.entry(hash).or_default().push(slot);
    }

    /// Unregister `slot` from `hash`'s bucket (no-op if absent).
    pub(crate) fn remove(&mut self, hash: u64, slot: u32) {
        if let Some(bucket) = self.buckets.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|&s| s == slot) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.buckets.remove(&hash);
            }
        }
    }

    /// Drop every registration.
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Whether `slot` is registered under `hash` (test/validation support).
    pub(crate) fn contains(&self, hash: u64, slot: u32) -> bool {
        self.buckets.get(&hash).is_some_and(|b| b.contains(&slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_hasher_is_deterministic_and_order_sensitive() {
        let mut a = SigHasher::new();
        let mut b = SigHasher::new();
        for w in [3u32, 1, 4, 1, 5] {
            a.push(w);
        }
        for w in [3u32, 1, 4, 1, 5] {
            b.push(w);
        }
        assert_eq!(a.finish(), b.finish());
        let mut c = SigHasher::new();
        for w in [5u32, 1, 4, 1, 3] {
            c.push(w);
        }
        assert_ne!(a.finish(), c.finish(), "order matters");
    }

    #[test]
    fn hash_index_find_insert_remove() {
        let mut ix = HashIndex::default();
        ix.insert(7, 0);
        ix.insert(7, 1); // collision chain
        ix.insert(9, 2);
        assert_eq!(ix.find(7, |s| s == 1), Some(1));
        assert_eq!(ix.find(7, |_| false), None);
        assert!(ix.contains(7, 0));
        ix.remove(7, 0);
        assert!(!ix.contains(7, 0));
        assert_eq!(ix.find(7, |_| true), Some(1));
        ix.remove(7, 1);
        assert_eq!(ix.find(7, |_| true), None);
        assert_eq!(ix.find(9, |_| true), Some(2));
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("weight"), 0);
        assert_eq!(t.intern("age"), 1);
        assert_eq!(t.intern("weight"), 0, "re-interning is idempotent");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(0), "weight");
        assert_eq!(t.resolve(1), "age");
        let names: Vec<&str> = t.names().iter().map(|n| &**n).collect();
        assert_eq!(names, ["weight", "age"]);
    }

    #[test]
    fn resolve_shared_shares_the_interned_allocation() {
        let mut t = SymbolTable::new();
        let id = t.intern("weight");
        let a = t.resolve_shared(id);
        let b = t.resolve_shared(id);
        assert!(Arc::ptr_eq(&a, &b), "one interned allocation per symbol");
        assert_eq!(&*a, "weight");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        t.intern("a");
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get("anything"), None);
    }
}
