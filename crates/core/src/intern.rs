//! Symbol interning for the compiled audit path.
//!
//! The model's hot loops compare attribute and purpose *names* — strings —
//! once per provider per policy tuple. A [`SymbolTable`] maps each distinct
//! name to a dense `u32` id exactly once, so everything downstream
//! ([`crate::plan::CompiledAuditPlan`], [`crate::pop::CompiledPopulation`],
//! the incremental auditor's preference index) runs on integer ids: array
//! indexing instead of string hashing, and `u32` equality instead of byte
//! comparison.
//!
//! Names are stored behind `Arc<str>`, so resolving an id back to a name
//! for witness construction ([`SymbolTable::resolve_shared`]) is a
//! reference-count bump, never a string copy.

use std::collections::HashMap;
use std::sync::Arc;

/// A dense string → `u32` interner. Ids are assigned in first-intern order
/// starting at 0, so a table of `n` symbols indexes a `Vec` of length `n`
/// directly.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern a name, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        let shared: Arc<str> = Arc::from(name);
        self.ids.insert(shared.clone(), id);
        self.names.push(shared);
        id
    }

    /// The id of an already-interned name. `None` means the name was never
    /// seen at compile time — for the audit plan that means no policy row
    /// can possibly match it.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// If the id was not produced by this table.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// The shared handle behind an id — a reference-count bump, no copy.
    ///
    /// # Panics
    /// If the id was not produced by this table.
    pub fn resolve_shared(&self, id: u32) -> Arc<str> {
        self.names[id as usize].clone()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names, in id order (index = id).
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("weight"), 0);
        assert_eq!(t.intern("age"), 1);
        assert_eq!(t.intern("weight"), 0, "re-interning is idempotent");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(0), "weight");
        assert_eq!(t.resolve(1), "age");
        let names: Vec<&str> = t.names().iter().map(|n| &**n).collect();
        assert_eq!(names, ["weight", "age"]);
    }

    #[test]
    fn resolve_shared_shares_the_interned_allocation() {
        let mut t = SymbolTable::new();
        let id = t.intern("weight");
        let a = t.resolve_shared(id);
        let b = t.resolve_shared(id);
        assert!(Arc::ptr_eq(&a, &b), "one interned allocation per symbol");
        assert_eq!(&*a, "weight");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        t.intern("a");
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get("anything"), None);
    }
}
