//! The audit engine: run the whole model over a population.
//!
//! An [`AuditEngine`] fixes the house side (policy, the attributes the data
//! table stores, the social attribute weights `Σ`) and audits populations of
//! [`ProviderProfile`]s against it, producing [`AuditReport`]s with every
//! quantity the paper defines: per-provider `w_i` and `Violation_i`,
//! `Violations`, `P(W)`, `P(Default)`, and the α-PPDB check (Definition 3).
//!
//! The compiled entry points ([`AuditEngine::audit_compiled`] and the
//! counts-only paths, defined alongside [`crate::pop::CompiledPopulation`])
//! read providers through the population's per-provider row *ranges*, never
//! the raw row array — so they audit delta-mutated populations (which may
//! carry freelist holes between live ranges) byte-identically to a fresh
//! compile of the same logical population.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::{HousePolicy, ProviderId};

use crate::default_model::DefaultThresholds;
use crate::plan::{CompiledAuditPlan, PlanScratch};
use crate::probability::census_fraction;
use crate::profile::{assemble, ProviderProfile};
use crate::sensitivity::{AttributeSensitivities, DatumSensitivity, SensitivityModel};
use crate::violation::{witnesses, ViolationWitness};

/// The audit outcome for one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderAudit {
    /// Who was audited.
    pub provider: ProviderId,
    /// Definition 1's `w_i`.
    pub violated: bool,
    /// Equation 15's `Violation_i`.
    pub score: u64,
    /// The provider's threshold `v_i`.
    pub threshold: u64,
    /// Definition 4's `default_i`.
    pub defaulted: bool,
    /// The comparable pairs that witnessed the violation.
    pub witnesses: Vec<ViolationWitness>,
}

/// The audit outcome for a whole population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Per-provider results, in input order.
    pub providers: Vec<ProviderAudit>,
    /// Equation 16's `Violations`.
    pub total_violations: u128,
}

impl AuditReport {
    /// Population size `N`.
    pub fn population(&self) -> usize {
        self.providers.len()
    }

    /// Definition 2's `P(W)` (census form). Counts in one pass; no
    /// intermediate outcome vector is allocated.
    pub fn p_violation(&self) -> f64 {
        census_fraction(
            self.providers.iter().filter(|p| p.violated).count(),
            self.providers.len(),
        )
    }

    /// Definition 5's `P(Default)` (census form). Counts in one pass; no
    /// intermediate outcome vector is allocated.
    pub fn p_default(&self) -> f64 {
        census_fraction(
            self.providers.iter().filter(|p| p.defaulted).count(),
            self.providers.len(),
        )
    }

    /// Definition 3: is this an α-PPDB, i.e. `P(W) ≤ α`?
    pub fn is_alpha_ppdb(&self, alpha: f64) -> bool {
        self.p_violation() <= alpha
    }

    /// `w_i` per provider, for the probability estimators.
    pub fn violation_outcomes(&self) -> Vec<bool> {
        self.providers.iter().map(|p| p.violated).collect()
    }

    /// `default_i` per provider.
    pub fn default_outcomes(&self) -> Vec<bool> {
        self.providers.iter().map(|p| p.defaulted).collect()
    }

    /// Providers who defaulted.
    pub fn defaulters(&self) -> impl Iterator<Item = &ProviderAudit> {
        self.providers.iter().filter(|p| p.defaulted)
    }

    /// `N_future`: providers remaining after defaults (§9, Equation 26).
    pub fn remaining(&self) -> usize {
        self.providers.iter().filter(|p| !p.defaulted).count()
    }
}

/// Audits populations against a fixed house configuration.
#[derive(Debug, Clone)]
pub struct AuditEngine {
    /// The house policy under audit.
    pub policy: HousePolicy,
    /// The attributes the data table stores (what providers supply).
    pub attributes: Vec<String>,
    /// Social attribute weights `Σ`.
    pub attribute_weights: AttributeSensitivities,
    /// Optional purpose lattice: when set, a consent for a broad purpose
    /// covers narrower policy purposes (the §3 extension). `None` = the
    /// base model's flat purpose matching.
    pub lattice: Option<qpv_taxonomy::PurposeLattice>,
}

impl AuditEngine {
    /// Create an engine for a policy over the given stored attributes
    /// (flat purpose matching, as in the base model).
    pub fn new(
        policy: HousePolicy,
        attributes: impl IntoIterator<Item = impl Into<String>>,
        attribute_weights: AttributeSensitivities,
    ) -> AuditEngine {
        AuditEngine {
            policy,
            attributes: attributes.into_iter().map(Into::into).collect(),
            attribute_weights,
            lattice: None,
        }
    }

    /// Switch the engine to lattice purpose semantics.
    pub fn with_lattice(mut self, lattice: qpv_taxonomy::PurposeLattice) -> AuditEngine {
        self.lattice = Some(lattice);
        self
    }

    /// Audit a population. Interns the whole population into a
    /// [`crate::pop::CompiledPopulation`] (SoA preference rows, dense
    /// datum/threshold tables) and audits it against the compiled plan —
    /// the hot loop touches no strings and no per-provider hash maps.
    /// Results are bitwise-identical to [`Self::run_reference`], pinned by
    /// the property suites in `tests/plan_equivalence.rs` and
    /// `tests/pop_equivalence.rs`.
    pub fn run(&self, profiles: &[ProviderProfile]) -> AuditReport {
        self.audit_compiled(&crate::pop::CompiledPopulation::from_profiles(profiles))
    }

    /// The PR 2 audit path: one [`CompiledAuditPlan`], but providers
    /// re-indexed from their array-of-structs profiles per audit, with
    /// datums and thresholds resolved through [`PopulationIndex`]. Kept
    /// as the baseline leg of `benches/compiled_population.rs` (what the
    /// SoA population is measured against) and as the host of the
    /// duplicate-id fallback contract. Output is bitwise-identical to
    /// [`Self::run`].
    pub fn run_per_profile(&self, profiles: &[ProviderProfile]) -> AuditReport {
        let plan = self.compile_house();
        let index = PopulationIndex::build(profiles, &self.attribute_weights);
        let mut scratch = PlanScratch::new();
        let mut providers = Vec::with_capacity(profiles.len());
        let mut total: u128 = 0;
        for profile in profiles {
            let (datums, threshold) = index.resolve(profile);
            let audit = plan.audit_profile(profile, datums, threshold, &mut scratch);
            total += audit.score as u128;
            providers.push(audit);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// Audit a population through the original string-resolving path —
    /// the direct transcription of the paper's definitions. Kept as the
    /// oracle the compiled plan is property-tested against, and as the
    /// baseline leg of `benches/audit_plan.rs`.
    pub fn run_reference(&self, profiles: &[ProviderProfile]) -> AuditReport {
        let (sensitivity, thresholds) = assemble(profiles, &self.attribute_weights);
        let attrs: Vec<&str> = self.attributes.iter().map(String::as_str).collect();
        let mut providers = Vec::with_capacity(profiles.len());
        let mut total: u128 = 0;
        for profile in profiles {
            let audit = self.audit_profile(profile, &attrs, &sensitivity, &thresholds);
            total += audit.score as u128;
            providers.push(audit);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// Compile this engine's configuration against a sensitivity model.
    /// The parallel path compiles once and shares the plan across workers.
    pub fn compile(&self, sensitivity: &SensitivityModel) -> CompiledAuditPlan {
        CompiledAuditPlan::compile(
            &self.policy,
            &self.attributes,
            sensitivity,
            self.lattice.as_ref(),
        )
    }

    /// [`Self::compile`] against the engine's own attribute weights —
    /// plan compilation only reads `Σ^a`, so no per-provider assembly is
    /// needed to build the plan.
    pub(crate) fn compile_house(&self) -> CompiledAuditPlan {
        self.compile_policy(&self.policy)
    }

    /// Compile an arbitrary candidate policy against this engine's
    /// attributes, weights, and lattice — the per-policy half of the
    /// what-if fast path ([`crate::pop`]).
    pub(crate) fn compile_policy(&self, policy: &HousePolicy) -> CompiledAuditPlan {
        CompiledAuditPlan::compile(
            policy,
            &self.attributes,
            &SensitivityModel::from_attribute_weights(&self.attribute_weights),
            self.lattice.as_ref(),
        )
    }

    /// Audit one provider by resolving strings directly (the reference
    /// path). The production sequential and parallel paths now go through
    /// [`CompiledAuditPlan::audit_profile`]; this stays as the oracle.
    pub(crate) fn audit_profile(
        &self,
        profile: &ProviderProfile,
        attrs: &[&str],
        sensitivity: &crate::sensitivity::SensitivityModel,
        thresholds: &crate::default_model::DefaultThresholds,
    ) -> ProviderAudit {
        let (wit, score) = match &self.lattice {
            None => (
                witnesses(&profile.preferences, &self.policy, attrs),
                crate::severity::violation_score(
                    &profile.preferences,
                    &self.policy,
                    attrs,
                    sensitivity,
                ),
            ),
            Some(lattice) => (
                crate::violation::witnesses_lattice(
                    &profile.preferences,
                    &self.policy,
                    attrs,
                    lattice,
                ),
                crate::severity::violation_score_lattice(
                    &profile.preferences,
                    &self.policy,
                    attrs,
                    sensitivity,
                    lattice,
                ),
            ),
        };
        let threshold = thresholds.get(profile.id());
        ProviderAudit {
            provider: profile.id(),
            violated: !wit.is_empty(),
            score,
            threshold,
            defaulted: crate::default_model::defaults(score, threshold),
            witnesses: wit,
        }
    }

    /// Audit the same population under a *different* policy (the what-if
    /// primitive).
    pub fn run_with_policy(
        &self,
        profiles: &[ProviderProfile],
        policy: &HousePolicy,
    ) -> AuditReport {
        let alt = AuditEngine {
            policy: policy.clone(),
            attributes: self.attributes.clone(),
            attribute_weights: self.attribute_weights.clone(),
            lattice: self.lattice.clone(),
        };
        alt.run(profiles)
    }
}

/// Resolves per-provider datum sensitivities and thresholds for the
/// compiled audit path.
///
/// The reference path routes every datum lookup through the structures
/// [`assemble`] builds, whose semantics for a provider id occurring more
/// than once are *merge with last-wins* — so every occurrence of the id
/// sees the same merged view. When ids are unique (checked in one cheap
/// pass), each profile's own `sensitivities`/`threshold` ARE that view, so
/// the expensive population-wide assembly (cloning every provider's
/// sensitivity map) is skipped entirely. Duplicate ids fall back to the
/// real assembly, keeping results bitwise-identical either way.
pub(crate) enum PopulationIndex {
    /// Unique provider ids: read straight off each profile.
    Direct,
    /// Duplicate ids present: resolve through the assembled structures.
    Assembled(SensitivityModel, DefaultThresholds),
}

impl PopulationIndex {
    pub(crate) fn build(
        profiles: &[ProviderProfile],
        attribute_weights: &AttributeSensitivities,
    ) -> PopulationIndex {
        let mut seen = std::collections::HashSet::with_capacity(profiles.len());
        if profiles.iter().all(|p| seen.insert(p.id())) {
            PopulationIndex::Direct
        } else {
            let (sensitivity, thresholds) = assemble(profiles, attribute_weights);
            PopulationIndex::Assembled(sensitivity, thresholds)
        }
    }

    /// The profile's resolved `(datum map, threshold)` pair.
    pub(crate) fn resolve<'a>(
        &'a self,
        profile: &'a ProviderProfile,
    ) -> (Option<&'a HashMap<String, DatumSensitivity>>, u64) {
        match self {
            PopulationIndex::Direct => (Some(&profile.sensitivities), profile.threshold),
            PopulationIndex::Assembled(sensitivity, thresholds) => (
                sensitivity.provider_datums(profile.id()),
                thresholds.get(profile.id()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::DatumSensitivity;
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    /// The paper's §8 example as a full audit.
    fn worked_example() -> (AuditEngine, Vec<ProviderProfile>) {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);

        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ), // Alice
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ), // Ted
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ), // Bob
        ];
        (engine, profiles)
    }

    #[test]
    fn reproduces_table_1_exactly() {
        let (engine, profiles) = worked_example();
        let report = engine.run(&profiles);
        assert_eq!(report.population(), 3);
        let [alice, ted, bob] = &report.providers[..] else {
            panic!("expected three providers");
        };
        // Table 1 w_i column.
        assert!(!alice.violated);
        assert!(ted.violated);
        assert!(bob.violated);
        // Equation 20 conf values.
        assert_eq!(alice.score, 0);
        assert_eq!(ted.score, 60);
        assert_eq!(bob.score, 80);
        // Equations 21–23 defaults.
        assert!(!alice.defaulted);
        assert!(ted.defaulted);
        assert!(!bob.defaulted);
        // Equation 24: P(Default) = 1/3.
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
        // P(W) = 2/3.
        assert!((report.p_violation() - 2.0 / 3.0).abs() < 1e-12);
        // Violations total.
        assert_eq!(report.total_violations, 140);
        // N_future.
        assert_eq!(report.remaining(), 2);
        assert_eq!(report.defaulters().count(), 1);
    }

    #[test]
    fn alpha_ppdb_check() {
        let (engine, profiles) = worked_example();
        let report = engine.run(&profiles);
        // P(W) = 2/3 ≈ 0.667.
        assert!(report.is_alpha_ppdb(0.7));
        assert!(report.is_alpha_ppdb(2.0 / 3.0));
        assert!(!report.is_alpha_ppdb(0.5));
    }

    #[test]
    fn empty_population() {
        let (engine, _) = worked_example();
        let report = engine.run(&[]);
        assert_eq!(report.population(), 0);
        assert_eq!(report.p_violation(), 0.0);
        assert_eq!(report.total_violations, 0);
        assert!(report.is_alpha_ppdb(0.0));
    }

    #[test]
    fn ted_violation_is_on_granularity() {
        let (engine, profiles) = worked_example();
        let report = engine.run(&profiles);
        let ted = &report.providers[1];
        assert_eq!(ted.witnesses.len(), 1);
        assert_eq!(
            ted.witnesses[0]
                .geometry
                .along(qpv_taxonomy::Dim::Granularity),
            1
        );
        // Bob violated on granularity and retention (Figure-1c-style).
        let bob = &report.providers[2];
        assert_eq!(bob.witnesses[0].geometry.escaped_dims().count(), 2);
    }

    #[test]
    fn what_if_does_not_mutate_engine() {
        let (engine, profiles) = worked_example();
        let wider = engine.policy.widened_uniform(3);
        let base = engine.run(&profiles);
        let what_if = engine.run_with_policy(&profiles, &wider);
        assert!(what_if.total_violations > base.total_violations);
        // Engine still audits with the original policy.
        let again = engine.run(&profiles);
        assert_eq!(again.total_violations, base.total_violations);
    }

    #[test]
    fn lattice_engine_reduces_violations_for_broad_consent() {
        use qpv_taxonomy::PurposeLattice;
        // Policy uses the narrow purpose "billing"; provider consented to
        // the broader "operations".
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(2, 2, 2)))
            .build();
        let mut profile = ProviderProfile::new(ProviderId(0), 100);
        profile.preferences.add(
            "weight",
            PrivacyTuple::from_point("operations", pt(3, 3, 3)),
        );
        let flat = AuditEngine::new(policy.clone(), ["weight"], AttributeSensitivities::new());
        let flat_report = flat.run(std::slice::from_ref(&profile));
        assert!(flat_report.providers[0].violated, "flat: implicit deny-all");
        assert!(flat_report.providers[0].score > 0);

        let mut lattice = PurposeLattice::new();
        lattice.add_edge("billing", "operations").unwrap();
        let latticed = flat.clone().with_lattice(lattice);
        let lattice_report = latticed.run(std::slice::from_ref(&profile));
        assert!(!lattice_report.providers[0].violated, "lattice: covered");
        assert_eq!(lattice_report.providers[0].score, 0);
        // run_with_policy keeps the lattice.
        let wider = policy.widened_uniform(5);
        let wide_report = latticed.run_with_policy(std::slice::from_ref(&profile), &wider);
        assert!(
            wide_report.providers[0].violated,
            "exceeding consent still violates"
        );
    }

    #[test]
    fn population_index_unique_ids_take_the_direct_path() {
        let (_, profiles) = worked_example();
        let index = PopulationIndex::build(&profiles, &AttributeSensitivities::new());
        assert!(matches!(index, PopulationIndex::Direct));
        let (datums, threshold) = index.resolve(&profiles[1]);
        assert_eq!(threshold, profiles[1].threshold);
        assert_eq!(
            datums.unwrap().get("weight"),
            profiles[1].sensitivities.get("weight")
        );
    }

    #[test]
    fn population_index_duplicate_ids_fall_back_to_merged_assembly() {
        let (engine, mut profiles) = worked_example();
        // Re-register Ted (id 1) with a different sensitivity map and
        // threshold: the fallback must give *both* occurrences the merged
        // (last-wins) view, not their own fields.
        let mut dup = ProviderProfile::new(ProviderId(1), 7);
        dup.preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        dup.sensitivities
            .insert("weight".into(), DatumSensitivity::new(2, 2, 2, 2));
        dup.sensitivities
            .insert("age".into(), DatumSensitivity::new(5, 1, 1, 4));
        profiles.push(dup);

        let index = PopulationIndex::build(&profiles, &engine.attribute_weights);
        assert!(matches!(index, PopulationIndex::Assembled(..)));
        for occurrence in [&profiles[1], &profiles[3]] {
            let (datums, threshold) = index.resolve(occurrence);
            assert_eq!(threshold, 7, "last-registered threshold wins");
            let datums = datums.expect("id 1 has datum entries");
            assert_eq!(
                datums.get("weight"),
                Some(&DatumSensitivity::new(2, 2, 2, 2)),
                "last-registered sensitivity wins for both occurrences"
            );
            assert_eq!(datums.get("age"), Some(&DatumSensitivity::new(5, 1, 1, 4)));
        }

        // End to end: the fallback path agrees with the reference audit,
        // and with the unique-id fast path on the same population made
        // unique (distinct ids, identical contents).
        assert_eq!(
            engine.run_per_profile(&profiles),
            engine.run_reference(&profiles)
        );
        let mut unique = profiles.clone();
        unique[3].preferences.provider = ProviderId(99);
        assert!(matches!(
            PopulationIndex::build(&unique, &engine.attribute_weights),
            PopulationIndex::Direct
        ));
        // Provider 3's own fields now apply: its merged view above (7,
        // ⟨2,2,2,2⟩) equals its own fields, so scores at index 3 match.
        let direct = engine.run_per_profile(&unique);
        let merged = engine.run_per_profile(&profiles);
        assert_eq!(direct.providers[3].score, merged.providers[3].score);
        assert_eq!(direct.providers[3].threshold, merged.providers[3].threshold);
        // But occurrence 1 (old Ted) diverges: merged resolution replaced
        // its sensitivities with the duplicate's.
        assert_ne!(direct.providers[1].score, merged.providers[1].score);
    }

    #[test]
    fn report_serde_round_trip() {
        let (engine, profiles) = worked_example();
        let report = engine.run(&profiles);
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
