//! Compiled audit plans: the string-free hot path.
//!
//! The reference implementation re-resolves attribute and purpose strings
//! for every `(provider, policy tuple)` pair: `attributes.contains(..)` per
//! tuple, linear `effective_point` scans over the provider's stated
//! preferences, a `dominated_by` DFS per lattice comparison, and two hash
//! lookups per pair for the sensitivity weights. All of that is invariant
//! across providers, so a [`CompiledAuditPlan`] hoists it out:
//!
//! * attributes and purposes are interned to dense `u32` ids once
//!   ([`crate::intern::SymbolTable`]);
//! * every policy tuple becomes a [`PlanRow`] `(attr_id, purpose_id,
//!   point, weight)` with the attribute filter applied and the per-purpose
//!   `Σ^a` weight pre-resolved;
//! * under lattice semantics, each policy purpose's *coverage set* (every
//!   purpose whose stated consent dominates it — the ancestor closure) is
//!   precomputed to a list of purpose ids, so `effective_point_lattice`
//!   becomes a few array probes instead of repeated DFS walks;
//! * each provider's preferences are indexed once per audit into an
//!   id-keyed dense table (the [`PlanScratch`], epoch-stamped so it is
//!   reused across providers without clearing).
//!
//! The inner loop then touches no strings at all: per provider it hashes
//! each stated preference once to index it, and every policy row after
//! that is integer arithmetic. The property suite
//! (`crates/core/tests/plan_equivalence.rs`) pins the compiled results
//! bitwise-equal to the reference path — same witnesses in the same order,
//! same saturating score accumulation order, same totals.
//!
//! Plans stay valid across population deltas: a
//! [`crate::pop::CompiledPopulation`] interns symbols append-only, so
//! `apply_delta` never renumbers an id a plan already references — new
//! attributes simply get fresh ids the plan ignores. Only a *policy* change
//! requires recompiling the plan, which is why the incremental auditor
//! re-resolves policy rows per policy edit but not per population delta.

use std::collections::HashMap;

use qpv_policy::{HousePolicy, ProviderPreferences};
use qpv_taxonomy::{AttrName, PrivacyPoint, Purpose, PurposeLattice, ViolationGeometry};

use crate::audit::ProviderAudit;
use crate::default_model::defaults;
use crate::intern::SymbolTable;
use crate::profile::ProviderProfile;
use crate::sensitivity::{DatumSensitivity, SensitivityModel};
use crate::severity::conf;
use crate::violation::ViolationWitness;

/// One pre-resolved policy tuple. Rows keep the policy's insertion order
/// (filtered to stored attributes), which is what makes compiled witness
/// lists and saturating score sums identical to the reference path.
///
/// Rows carry only symbol ids — witness construction resolves names back
/// through the plan's `SymbolTable`s (a reference-count bump per witness,
/// no string copies).
#[derive(Debug, Clone)]
pub(crate) struct PlanRow {
    /// Dense attribute id.
    pub(crate) attr: u32,
    /// Dense purpose id (flat matching key).
    pub(crate) purpose: u32,
    /// The policy point.
    pub(crate) point: PrivacyPoint,
    /// Pre-resolved `Σ^a` honouring any per-purpose override.
    pub(crate) weight: u32,
    /// Index into [`CompiledAuditPlan::covers`] (lattice mode only).
    pub(crate) covers: u32,
}

/// A [`HousePolicy`] × attribute list × [`SensitivityModel`] × optional
/// [`PurposeLattice`], compiled once and then applied to any number of
/// providers. See the module docs for what is pre-resolved.
#[derive(Debug, Clone)]
pub struct CompiledAuditPlan {
    pub(crate) attrs: SymbolTable,
    pub(crate) purposes: SymbolTable,
    pub(crate) rows: Vec<PlanRow>,
    /// Per-distinct-policy-purpose coverage sets: the purpose ids whose
    /// stated consent covers that policy purpose (ancestor closure,
    /// including the purpose itself). Empty in flat mode.
    pub(crate) covers: Vec<Vec<u32>>,
    pub(crate) lattice_mode: bool,
}

/// Reusable per-worker working memory for [`CompiledAuditPlan`] audits:
/// the id-keyed dense preference table and per-attribute datum
/// sensitivities for the provider currently being audited. Epoch-stamped,
/// so moving to the next provider is one counter increment, not a clear.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    pub(crate) epoch: u64,
    /// `attrs.len() × purposes.len()` slots, row-major by attribute.
    pub(crate) slots: Vec<PrefSlot>,
    /// One datum sensitivity per interned attribute.
    pub(crate) datums: Vec<DatumSensitivity>,
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrefSlot {
    /// Slot is live iff this equals the scratch epoch.
    pub(crate) epoch: u64,
    pub(crate) point: PrivacyPoint,
}

impl PlanScratch {
    /// Fresh, empty scratch (sized lazily by the first audit).
    pub fn new() -> PlanScratch {
        PlanScratch::default()
    }
}

impl CompiledAuditPlan {
    /// Compile a plan. `attributes` is the data table's attribute list
    /// (what providers supply); policy tuples outside it are dropped at
    /// compile time instead of being re-filtered per provider. Pass the
    /// lattice to compile for lattice purpose semantics.
    pub fn compile(
        policy: &HousePolicy,
        attributes: &[String],
        sensitivity: &SensitivityModel,
        lattice: Option<&PurposeLattice>,
    ) -> CompiledAuditPlan {
        let mut attrs = SymbolTable::new();
        let mut purposes = SymbolTable::new();
        let mut rows = Vec::new();
        let mut covers: Vec<Vec<u32>> = Vec::new();
        let mut cover_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for pt in policy.tuples() {
            if !attributes.contains(&pt.attribute) {
                continue;
            }
            let attr = attrs.intern(&pt.attribute);
            let purpose = purposes.intern(pt.tuple.purpose.name());
            let covers_idx = match lattice {
                None => 0,
                Some(l) => *cover_of.entry(purpose).or_insert_with(|| {
                    let mut ids: Vec<u32> = l
                        .covering_set(&pt.tuple.purpose)
                        .iter()
                        .map(|p| purposes.intern(p.name()))
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    covers.push(ids);
                    (covers.len() - 1) as u32
                }),
            };
            rows.push(PlanRow {
                attr,
                purpose,
                point: pt.tuple.point,
                weight: sensitivity.attribute_weight(&pt.attribute, pt.tuple.purpose.name()),
                covers: covers_idx,
            });
        }
        CompiledAuditPlan {
            attrs,
            purposes,
            rows,
            covers,
            lattice_mode: lattice.is_some(),
        }
    }

    /// Number of compiled policy rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of interned attributes / purposes.
    pub fn symbol_counts(&self) -> (usize, usize) {
        (self.attrs.len(), self.purposes.len())
    }

    /// Whether the plan was compiled for lattice purpose semantics.
    pub fn is_lattice(&self) -> bool {
        self.lattice_mode
    }

    /// Index one provider's preferences and datum sensitivities into the
    /// scratch's dense tables. Preference tuples naming attributes or
    /// purposes the plan never interned are skipped — by construction no
    /// policy row can match them (in lattice mode every covering purpose
    /// of every policy purpose *is* interned, so an unknown purpose covers
    /// nothing).
    fn index_profile(
        &self,
        prefs: &ProviderPreferences,
        datums: Option<&HashMap<String, DatumSensitivity>>,
        scratch: &mut PlanScratch,
    ) {
        let np = self.purposes.len();
        let epoch = self.prepare_scratch(scratch);
        for t in prefs.tuples() {
            let Some(a) = self.attrs.get(&t.attribute) else {
                continue;
            };
            let Some(p) = self.purposes.get(t.tuple.purpose.name()) else {
                continue;
            };
            let slot = &mut scratch.slots[a as usize * np + p as usize];
            if slot.epoch != epoch {
                slot.epoch = epoch;
                slot.point = t.tuple.point;
            } else if self.lattice_mode {
                // Lattice semantics join *all* stated points for a
                // purpose; flat semantics keep the first stated tuple
                // (matching `effective_point`'s find-first contract).
                slot.point = slot.point.join(&t.tuple.point);
            }
        }
        for (a, name) in self.attrs.names().iter().enumerate() {
            scratch.datums[a] = datums
                .and_then(|m| m.get(&**name))
                .copied()
                .unwrap_or_default();
        }
    }

    /// Size the scratch for this plan's shape (resizing resets the epoch)
    /// and open a fresh epoch, returning it. Every indexing path —
    /// per-profile here, SoA in [`crate::pop`] — starts with this.
    pub(crate) fn prepare_scratch(&self, scratch: &mut PlanScratch) -> u64 {
        let need = self.attrs.len() * self.purposes.len();
        if scratch.slots.len() != need || scratch.datums.len() != self.attrs.len() {
            scratch.slots = vec![PrefSlot::default(); need];
            scratch.datums = vec![DatumSensitivity::neutral(); self.attrs.len()];
            scratch.epoch = 0;
        }
        scratch.epoch += 1;
        scratch.epoch
    }

    /// Audit one provider through the compiled plan. Produces exactly what
    /// the reference path produces for the same inputs (witness order =
    /// policy insertion order, identical saturating accumulation order).
    ///
    /// `datums` and `threshold` are the provider's resolved sensitivity map
    /// and default threshold. Callers with unique provider ids pass the
    /// profile's own fields directly (no population-wide assembly needed);
    /// [`crate::audit::PopulationIndex`] handles the duplicate-id fallback.
    pub fn audit_profile(
        &self,
        profile: &ProviderProfile,
        datums: Option<&HashMap<String, DatumSensitivity>>,
        threshold: u64,
        scratch: &mut PlanScratch,
    ) -> ProviderAudit {
        self.index_profile(&profile.preferences, datums, scratch);
        let mut wit = Vec::new();
        let (score, _) = self.eval_scratch(scratch, Some(&mut wit));
        ProviderAudit {
            provider: profile.id(),
            violated: !wit.is_empty(),
            score,
            threshold,
            defaulted: defaults(score, threshold),
            witnesses: wit,
        }
    }

    /// Run every compiled row against an indexed scratch, returning the
    /// saturating violation score and the number of violating rows. With
    /// `witnesses: None` this is the counts-only fast path: it touches no
    /// strings and allocates nothing. With `Some`, each violating row
    /// pushes a witness whose attribute/purpose are resolved from the
    /// symbol tables (reference-count bumps, not copies) — identical,
    /// field for field, to what the reference path produces.
    pub(crate) fn eval_scratch(
        &self,
        scratch: &PlanScratch,
        mut witnesses: Option<&mut Vec<ViolationWitness>>,
    ) -> (u64, u32) {
        let epoch = scratch.epoch;
        let np = self.purposes.len();
        let mut score: u64 = 0;
        let mut violations: u32 = 0;
        for row in &self.rows {
            let (preference, implicit) = if self.lattice_mode {
                let mut point = PrivacyPoint::ZERO;
                let mut covered = false;
                for &p in &self.covers[row.covers as usize] {
                    let slot = &scratch.slots[row.attr as usize * np + p as usize];
                    if slot.epoch == epoch {
                        point = point.join(&slot.point);
                        covered = true;
                    }
                }
                (point, !covered)
            } else {
                let slot = &scratch.slots[row.attr as usize * np + row.purpose as usize];
                if slot.epoch == epoch {
                    (slot.point, false)
                } else {
                    (PrivacyPoint::ZERO, true)
                }
            };
            let geometry = ViolationGeometry::compare(&preference, &row.point);
            if geometry.is_violation() {
                violations += 1;
                if let Some(wit) = witnesses.as_deref_mut() {
                    wit.push(ViolationWitness {
                        attribute: AttrName::from(self.attrs.resolve_shared(row.attr)),
                        purpose: Purpose::from(self.purposes.resolve_shared(row.purpose)),
                        preference,
                        implicit_preference: implicit,
                        policy: row.point,
                        geometry,
                    });
                }
            }
            score = score.saturating_add(conf(
                &preference,
                &row.point,
                row.weight,
                scratch.datums[row.attr as usize],
            ));
        }
        (score, violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use crate::profile::assemble;
    use crate::sensitivity::AttributeSensitivities;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn worked_example() -> (AuditEngine, Vec<ProviderProfile>) {
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        (engine, profiles)
    }

    #[test]
    fn compiled_plan_reproduces_table_1() {
        let (engine, profiles) = worked_example();
        let (sensitivity, _) = assemble(&profiles, &engine.attribute_weights);
        let plan =
            CompiledAuditPlan::compile(&engine.policy, &engine.attributes, &sensitivity, None);
        assert_eq!(plan.row_count(), 1);
        assert_eq!(plan.symbol_counts(), (1, 1));
        let mut scratch = PlanScratch::new();
        let scores: Vec<u64> = profiles
            .iter()
            .map(|p| {
                plan.audit_profile(p, Some(&p.sensitivities), p.threshold, &mut scratch)
                    .score
            })
            .collect();
        assert_eq!(scores, vec![0, 60, 80]);
    }

    #[test]
    fn compiled_equals_reference_per_provider() {
        let (engine, profiles) = worked_example();
        let compiled = engine.run(&profiles);
        let reference = engine.run_reference(&profiles);
        assert_eq!(compiled, reference);
    }

    #[test]
    fn flat_duplicate_preferences_keep_first_stated_tuple() {
        // `effective_point` is find-first; the dense table must not let a
        // later duplicate overwrite the first stated point.
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(3, 3, 3)))
            .build();
        let mut profile = ProviderProfile::new(ProviderId(0), 100);
        profile
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
        profile
            .preferences
            .add("weight", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        let engine = AuditEngine::new(policy, ["weight"], AttributeSensitivities::new());
        let compiled = engine.run(std::slice::from_ref(&profile));
        let reference = engine.run_reference(std::slice::from_ref(&profile));
        assert_eq!(compiled, reference);
        assert_eq!(compiled.providers[0].witnesses[0].preference, pt(1, 1, 1));
    }

    #[test]
    fn lattice_duplicate_preferences_join_all_stated_points() {
        // Under the lattice, *all* stated tuples for a covering purpose
        // join — including duplicates of the same purpose.
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("billing", "operations").unwrap();
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("billing", pt(3, 3, 3)))
            .build();
        let mut profile = ProviderProfile::new(ProviderId(0), 100);
        profile.preferences.add(
            "weight",
            PrivacyTuple::from_point("operations", pt(3, 1, 1)),
        );
        profile.preferences.add(
            "weight",
            PrivacyTuple::from_point("operations", pt(1, 3, 3)),
        );
        let engine = AuditEngine::new(policy, ["weight"], AttributeSensitivities::new())
            .with_lattice(lattice);
        let compiled = engine.run(std::slice::from_ref(&profile));
        let reference = engine.run_reference(std::slice::from_ref(&profile));
        assert_eq!(compiled, reference);
        assert!(
            !compiled.providers[0].violated,
            "joined point (3,3,3) bounds"
        );
    }

    #[test]
    fn unknown_purposes_and_attributes_are_skipped() {
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(2, 2, 2)))
            .tuple("ghost", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        let mut profile = ProviderProfile::new(ProviderId(0), 100);
        profile
            .preferences
            .add("weight", PrivacyTuple::from_point("mystery", pt(9, 9, 9)));
        profile
            .preferences
            .add("other", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
        let engine = AuditEngine::new(policy, ["weight"], AttributeSensitivities::new());
        let compiled = engine.run(std::slice::from_ref(&profile));
        let reference = engine.run_reference(std::slice::from_ref(&profile));
        assert_eq!(compiled, reference);
        // The ghost policy row was dropped at compile time; "mystery" and
        // "other" never matched anything: implicit deny-all violation.
        assert!(compiled.providers[0].witnesses[0].implicit_preference);
    }

    #[test]
    fn scratch_is_reusable_across_plans() {
        let (engine, profiles) = worked_example();
        let (sensitivity, _) = assemble(&profiles, &engine.attribute_weights);
        let plan =
            CompiledAuditPlan::compile(&engine.policy, &engine.attributes, &sensitivity, None);
        let ted = &profiles[1];
        let mut scratch = PlanScratch::new();
        let a = plan.audit_profile(ted, Some(&ted.sensitivities), ted.threshold, &mut scratch);
        // A differently-shaped plan resizes the scratch transparently.
        let wider = engine.policy.widened_uniform(1);
        let plan2 = CompiledAuditPlan::compile(&wider, &engine.attributes, &sensitivity, None);
        let _ = plan2.audit_profile(ted, Some(&ted.sensitivities), ted.threshold, &mut scratch);
        let b = plan.audit_profile(ted, Some(&ted.sensitivities), ted.threshold, &mut scratch);
        assert_eq!(a, b, "scratch reuse must not leak state");
    }
}
