//! Sharded, multi-threaded audit execution.
//!
//! Equation 15's `Violation_i` is a sum of independent per-provider terms,
//! and Definition 1's `w_i` and Definition 4's `default_i` are pure
//! functions of one provider's profile against the fixed house side — so an
//! audit partitions perfectly: split the population into contiguous shards,
//! audit each shard on its own worker thread, and stitch shard results back
//! together in shard order.
//!
//! Because every provider goes through the same
//! [`AuditEngine::audit_profile`] code path as the sequential audit, and
//! `u128` addition of per-shard subtotals in shard order regroups the exact
//! integer sum, [`AuditEngine::par_audit`] returns an [`AuditReport`] that
//! compares **equal** to [`AuditEngine::run`]'s — same scores, same
//! witnesses, same totals, same derived probabilities — for every thread
//! count. Tests and a property suite pin this.
//!
//! Threading uses `std::thread::scope`, so there is no dependency beyond
//! std and no lifetime gymnastics: borrowed profiles flow straight into
//! workers.

use std::num::NonZeroUsize;

use crate::audit::{AuditEngine, AuditReport, ProviderAudit};
use crate::profile::{assemble, ProviderProfile};

/// Below this population size the parallel entry points fall back to the
/// sequential path: thread spawn overhead would dominate.
pub const PAR_THRESHOLD: usize = 256;

/// The number of worker threads to use when the caller has no opinion:
/// the machine's available parallelism, with a fallback of 1.
pub fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Split `len` items into at most `shards` contiguous `(start, end)`
/// ranges of near-equal size (the first `len % shards` ranges get one
/// extra item). Empty ranges are never produced.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// One shard's worth of audit output, tagged for in-order reassembly.
struct ShardResult {
    audits: Vec<ProviderAudit>,
    subtotal: u128,
}

impl AuditEngine {
    /// Audit a population across `threads` worker threads.
    ///
    /// Produces a report equal to [`AuditEngine::run`]'s for any thread
    /// count. Small populations (below [`PAR_THRESHOLD`]) and
    /// single-thread requests run sequentially.
    pub fn par_audit(&self, profiles: &[ProviderProfile], threads: NonZeroUsize) -> AuditReport {
        if threads.get() == 1 || profiles.len() < PAR_THRESHOLD {
            return self.run(profiles);
        }
        // The house-side assembly (sensitivity model, thresholds) is one
        // cheap pass; workers share it read-only.
        let (sensitivity, thresholds) = assemble(profiles, &self.attribute_weights);
        let attrs: Vec<&str> = self.attributes.iter().map(String::as_str).collect();
        let bounds = shard_bounds(profiles.len(), threads.get());

        let shard_results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .map(|&(start, end)| {
                    let (sensitivity, thresholds, attrs) = (&sensitivity, &thresholds, &attrs);
                    let shard = &profiles[start..end];
                    scope.spawn(move || {
                        let mut subtotal: u128 = 0;
                        let audits = shard
                            .iter()
                            .map(|profile| {
                                let audit =
                                    self.audit_profile(profile, attrs, sensitivity, thresholds);
                                subtotal += audit.score as u128;
                                audit
                            })
                            .collect();
                        ShardResult { audits, subtotal }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("audit worker panicked"))
                .collect()
        });

        // Merge in shard order: provider order and the u128 total regroup
        // exactly as the sequential pass computes them.
        let mut providers = Vec::with_capacity(profiles.len());
        let mut total: u128 = 0;
        for shard in shard_results {
            total += shard.subtotal;
            providers.extend(shard.audits);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// [`AuditEngine::run_with_policy`], sharded across `threads`.
    pub fn par_audit_with_policy(
        &self,
        profiles: &[ProviderProfile],
        policy: &qpv_policy::HousePolicy,
        threads: NonZeroUsize,
    ) -> AuditReport {
        let alt = AuditEngine {
            policy: policy.clone(),
            attributes: self.attributes.clone(),
            attribute_weights: self.attribute_weights.clone(),
            lattice: self.lattice.clone(),
        };
        alt.par_audit(profiles, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};
    use qpv_policy::{HousePolicy, ProviderId};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 9) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 4) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("research", pt(3, 1 + (i % 3) as u32, 45)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 5) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn engine() -> AuditEngine {
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(4, 3, 40)))
            .tuple("age", PrivacyTuple::from_point("research", pt(4, 2, 60)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        weights.set("age", 2);
        AuditEngine::new(policy, ["weight", "age"], weights)
    }

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn shard_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 255, 256, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 8, 17, 2000] {
                let bounds = shard_bounds(len, shards);
                let mut expect = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expect, "len {len} shards {shards}");
                    assert!(end > start, "empty shard: len {len} shards {shards}");
                    expect = end;
                }
                assert_eq!(expect, len, "len {len} shards {shards}");
                assert!(bounds.len() <= shards.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    bounds.iter().map(|(s, e)| e - s).min(),
                    bounds.iter().map(|(s, e)| e - s).max(),
                ) {
                    assert!(max - min <= 1, "len {len} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn parallel_report_equals_sequential_for_all_thread_counts() {
        let profiles = population(997); // prime: uneven shards
        let engine = engine();
        let sequential = engine.run(&profiles);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = engine.par_audit(&profiles, nz(threads));
            assert_eq!(parallel, sequential, "{threads} threads");
            assert_eq!(parallel.p_violation(), sequential.p_violation());
            assert_eq!(parallel.p_default(), sequential.p_default());
        }
    }

    #[test]
    fn parallel_lattice_audit_matches_sequential() {
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("pr", "research").unwrap();
        let engine = engine().with_lattice(lattice);
        let profiles = population(600);
        let sequential = engine.run(&profiles);
        let parallel = engine.par_audit(&profiles, nz(4));
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn small_populations_fall_back_to_sequential() {
        let engine = engine();
        let profiles = population(PAR_THRESHOLD as u64 - 1);
        let report = engine.par_audit(&profiles, nz(8));
        assert_eq!(report, engine.run(&profiles));
        let empty = engine.par_audit(&[], nz(4));
        assert_eq!(empty.population(), 0);
    }

    #[test]
    fn par_audit_with_policy_matches_run_with_policy() {
        let engine = engine();
        let profiles = population(500);
        let wider = engine.policy.widened_uniform(2);
        assert_eq!(
            engine.par_audit_with_policy(&profiles, &wider, nz(4)),
            engine.run_with_policy(&profiles, &wider),
        );
    }

    #[test]
    fn worked_example_is_stable_under_par_audit() {
        // Table 1 must come out identically through the parallel entry
        // point (it falls back to sequential below the threshold, which is
        // itself part of the contract).
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        let report = engine.par_audit(&profiles, default_threads());
        assert_eq!(
            report.providers.iter().map(|p| p.score).collect::<Vec<_>>(),
            vec![0, 60, 80]
        );
        assert_eq!(report.total_violations, 140);
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
    }
}
