//! Sharded, multi-threaded audit execution with work-stealing chunks.
//!
//! Equation 15's `Violation_i` is a sum of independent per-provider terms,
//! and Definition 1's `w_i` and Definition 4's `default_i` are pure
//! functions of one provider's profile against the fixed house side — so an
//! audit partitions perfectly across worker threads.
//!
//! Scheduling is **dynamic**: the population is cut into fixed index
//! chunks ([`chunk_size`]) and workers pull the next unclaimed chunk off a
//! shared atomic counter ([`par_map_chunks`]). Unlike the PR-1 contiguous
//! [`shard_bounds`] split (one pre-assigned range per worker), a provider
//! with 100× the average preference tuples only delays its *chunk*, not a
//! whole shard — the other workers keep stealing the remaining chunks.
//! Chunks are merged back in index order, every provider goes through the
//! same [`crate::plan::CompiledAuditPlan::audit_profile`] hot loop as the
//! sequential audit, and `u128` addition of per-chunk subtotals in index
//! order regroups the exact integer sum — so [`AuditEngine::par_audit`]
//! returns an [`AuditReport`] that compares **equal** to
//! [`AuditEngine::run`]'s (same scores, same witnesses, same totals, same
//! derived probabilities) for every thread count and any skew. Tests and a
//! property suite pin this, including a serialized byte-identity check.
//!
//! Threading uses `std::thread::scope`, so there is no dependency beyond
//! std and no lifetime gymnastics: borrowed profiles flow straight into
//! workers. [`shard_bounds`] remains for callers that want a static
//! contiguous split (stable generation uses it for seed bookkeeping).

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::audit::{AuditEngine, AuditReport, ProviderAudit};
use crate::plan::PlanScratch;
use crate::pop::CompiledPopulation;
use crate::profile::ProviderProfile;

/// Structured failure from the audit machinery: the process survives a
/// poisoned worker and the caller learns exactly which slice of the
/// population is implicated.
#[derive(Debug)]
pub enum AuditError {
    /// A worker closure panicked on a chunk — twice, since every chunk
    /// gets one deterministic in-place retry before being declared
    /// poisoned.
    WorkerPanicked {
        /// Index of the poisoned chunk.
        chunk: usize,
        /// First provider index of the chunk.
        start: usize,
        /// One-past-last provider index of the chunk.
        end: usize,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// The storage layer failed while assembling or persisting audit
    /// state (`Ppdb`-backed audits).
    Storage(qpv_reldb::DbError),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::WorkerPanicked {
                chunk,
                start,
                end,
                message,
            } => write!(
                f,
                "audit worker panicked on chunk {chunk} (providers {start}..{end}), \
                 twice after one retry: {message}"
            ),
            AuditError::Storage(e) => write!(f, "audit storage error: {e}"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qpv_reldb::DbError> for AuditError {
    fn from(e: qpv_reldb::DbError) -> AuditError {
        AuditError::Storage(e)
    }
}

/// Deterministic panic injection for the parallel audit machinery, used
/// by the fault-tolerance regression tests. Not part of the public API
/// contract.
#[doc(hidden)]
pub mod failpoint {
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard};

    static CHUNK: AtomicUsize = AtomicUsize::new(usize::MAX);
    static REMAINING: AtomicI64 = AtomicI64::new(0);
    static SERIAL: Mutex<()> = Mutex::new(());

    /// Serialize failpoint-arming tests: `cargo test` runs tests in one
    /// process, and the failpoint is global state.
    pub fn serialize() -> MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Arm the failpoint: the next `times` executions of `chunk` panic.
    /// `times = 1` makes the in-place retry succeed; `i64::MAX` makes the
    /// chunk permanently poisoned.
    pub fn arm(chunk: usize, times: i64) {
        REMAINING.store(times, Ordering::SeqCst);
        CHUNK.store(chunk, Ordering::SeqCst);
    }

    /// Disarm the failpoint.
    pub fn disarm() {
        CHUNK.store(usize::MAX, Ordering::SeqCst);
        REMAINING.store(0, Ordering::SeqCst);
    }

    pub(crate) fn maybe_panic(chunk: usize) {
        if CHUNK.load(Ordering::SeqCst) == chunk && REMAINING.fetch_sub(1, Ordering::SeqCst) > 0 {
            panic!("injected audit worker fault in chunk {chunk}");
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Below this population size the parallel entry points fall back to the
/// sequential path: thread spawn overhead would dominate.
pub const PAR_THRESHOLD: usize = 256;

/// The number of worker threads to use when the caller has no opinion:
/// the machine's available parallelism, with a fallback of 1.
pub fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Split `len` items into at most `shards` contiguous `(start, end)`
/// ranges of near-equal size (the first `len % shards` ranges get one
/// extra item). Empty ranges are never produced.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// The chunk granularity for dynamic assignment: aim for ~8 chunks per
/// worker (enough slack to absorb skewed providers) while keeping chunks
/// large enough (≥64) that counter traffic is negligible and small enough
/// (≤4096) that one pathological chunk cannot recreate a shard-sized
/// stall.
pub fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 8)).clamp(64, 4096)
}

/// Run one chunk under `catch_unwind` with one deterministic in-place
/// retry: a panic from `f` (a poisoned provider record, a bug tripped by
/// one slice of the population) is confined to its chunk, retried once
/// immediately on the same thread, and only then reported as a structured
/// [`AuditError::WorkerPanicked`] naming the chunk and its index range.
fn run_chunk<T, F>(f: &F, i: usize, chunk: usize, len: usize) -> Result<T, AuditError>
where
    F: Fn(usize, usize) -> T + Sync,
{
    let start = i * chunk;
    let end = ((i + 1) * chunk).min(len);
    let attempt = || {
        failpoint::maybe_panic(i);
        f(start, end)
    };
    match catch_unwind(AssertUnwindSafe(attempt)) {
        Ok(value) => Ok(value),
        Err(_first) => match catch_unwind(AssertUnwindSafe(attempt)) {
            Ok(value) => Ok(value),
            Err(payload) => Err(AuditError::WorkerPanicked {
                chunk: i,
                start,
                end,
                message: panic_message(payload.as_ref()),
            }),
        },
    }
}

/// Run `f(start, end)` over `len` items cut into `chunk`-sized index
/// ranges, with `threads` workers claiming chunks dynamically off a shared
/// atomic counter (work-stealing by competitive claiming). Results come
/// back **in chunk index order** regardless of which worker computed what
/// or when — the scheduling is invisible in the output, which is what lets
/// the audit report stay byte-identical under skew.
///
/// Falls back to a plain sequential loop for one worker (or one chunk) —
/// with the same panic-confinement semantics as the threaded path.
///
/// A chunk whose closure panics is retried once in place ([`run_chunk`]);
/// if it panics again the whole call returns the lowest-index failure as
/// [`AuditError::WorkerPanicked`] and the remaining workers stop claiming
/// new chunks. The process itself never unwinds past this function.
pub fn par_map_chunks<T, F>(
    len: usize,
    threads: usize,
    chunk: usize,
    f: F,
) -> Result<Vec<T>, AuditError>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks == 0 {
        return Ok(Vec::new());
    }
    let workers = threads.max(1).min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks)
            .map(|i| run_chunk(&f, i, chunk, len))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let outcome: Result<Vec<Option<T>>, Vec<AuditError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, poisoned, f) = (&next, &poisoned, &f);
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    let mut failures = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        match run_chunk(f, i, chunk, len) {
                            Ok(value) => produced.push((i, value)),
                            Err(e) => {
                                // Confirmed failure (already retried once):
                                // tell the other workers to stop claiming.
                                poisoned.store(true, Ordering::Relaxed);
                                failures.push((i, e));
                                break;
                            }
                        }
                    }
                    (produced, failures)
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        let mut failures: Vec<(usize, AuditError)> = Vec::new();
        for handle in handles {
            // Workers catch panics internally, so a join failure would mean
            // the thread itself died — fold it into the same error shape
            // rather than unwinding the caller.
            match handle.join() {
                Ok((produced, worker_failures)) => {
                    for (i, value) in produced {
                        slots[i] = Some(value);
                    }
                    failures.extend(worker_failures);
                }
                Err(payload) => failures.push((
                    usize::MAX,
                    AuditError::WorkerPanicked {
                        chunk: usize::MAX,
                        start: 0,
                        end: len,
                        message: panic_message(payload.as_ref()),
                    },
                )),
            }
        }
        if failures.is_empty() {
            Ok(slots)
        } else {
            // Deterministic report: the lowest-index failed chunk wins, no
            // matter which worker hit it or in which order threads joined.
            failures.sort_by_key(|(i, _)| *i);
            Err(failures.into_iter().map(|(_, e)| e).collect())
        }
    });
    match outcome {
        Ok(slots) => Ok(slots
            .into_iter()
            .map(|s| s.expect("every chunk is claimed exactly once"))
            .collect()),
        Err(mut failures) => Err(failures.remove(0)),
    }
}

/// One chunk's worth of audit output.
struct ChunkResult {
    audits: Vec<ProviderAudit>,
    subtotal: u128,
}

/// A lock-guarded free list of [`PlanScratch`]es shared by the chunk
/// workers: a worker pops one (or starts fresh) per chunk and returns it
/// afterwards, so a run allocates at most one scratch per *worker* instead
/// of one per chunk. The lock is held only for the pop/push, never while
/// auditing.
struct ScratchPool(Mutex<Vec<PlanScratch>>);

impl ScratchPool {
    fn new() -> ScratchPool {
        ScratchPool(Mutex::new(Vec::new()))
    }

    fn take(&self) -> PlanScratch {
        self.lock().pop().unwrap_or_default()
    }

    fn put(&self, scratch: PlanScratch) {
        self.lock().push(scratch);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<PlanScratch>> {
        // The lock is only ever held across a Vec pop/push, which cannot
        // panic meaningfully; if a poisoned worker still managed to poison
        // it, the free list itself is always valid to reuse.
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl AuditEngine {
    /// Audit a population across `threads` worker threads.
    ///
    /// Compiles the audit plan *and* the SoA population
    /// ([`CompiledPopulation`]) once; workers claim fixed index chunks
    /// dynamically ([`par_map_chunks`]) and audit string-free, drawing
    /// reusable [`PlanScratch`]es from a shared pool (one allocation per
    /// worker, not per chunk). Produces a report equal to
    /// [`AuditEngine::run`]'s for any thread count and any per-provider
    /// cost skew. Small populations (below [`PAR_THRESHOLD`]) and
    /// single-thread requests run sequentially.
    ///
    /// A worker panic (after one in-place retry of the offending chunk) is
    /// returned as [`AuditError::WorkerPanicked`] identifying the poisoned
    /// chunk instead of aborting the process; a fault-free run produces a
    /// report equal to the sequential one.
    pub fn par_audit(
        &self,
        profiles: &[ProviderProfile],
        threads: NonZeroUsize,
    ) -> Result<AuditReport, AuditError> {
        if threads.get() == 1 || profiles.len() < PAR_THRESHOLD {
            return Ok(self.run(profiles));
        }
        let pop = CompiledPopulation::from_profiles(profiles);
        self.par_audit_compiled(&pop, threads)
    }

    /// [`AuditEngine::par_audit`] over an already-compiled population.
    pub fn par_audit_compiled(
        &self,
        pop: &CompiledPopulation,
        threads: NonZeroUsize,
    ) -> Result<AuditReport, AuditError> {
        if threads.get() == 1 || pop.len() < PAR_THRESHOLD {
            return Ok(self.audit_compiled(pop));
        }
        // Plan compilation and the population→plan binding are one pass
        // each; workers share both read-only.
        let plan = self.compile_house();
        let binding = pop.bind(&plan);
        let pool = ScratchPool::new();
        let chunk = chunk_size(pop.len(), threads.get());
        let chunks = par_map_chunks(pop.len(), threads.get(), chunk, |start, end| {
            let mut scratch = pool.take();
            let mut subtotal: u128 = 0;
            let audits = (start..end)
                .map(|i| {
                    let audit = pop.audit_provider(&plan, &binding, i, &mut scratch);
                    subtotal += audit.score as u128;
                    audit
                })
                .collect();
            pool.put(scratch);
            ChunkResult { audits, subtotal }
        })?;

        // Merge in chunk index order: provider order and the u128 total
        // regroup exactly as the sequential pass computes them.
        let mut providers = Vec::with_capacity(pop.len());
        let mut total: u128 = 0;
        for chunk in chunks {
            total += chunk.subtotal;
            providers.extend(chunk.audits);
        }
        Ok(AuditReport {
            providers,
            total_violations: total,
        })
    }

    /// [`AuditEngine::run_with_policy`], sharded across `threads`.
    pub fn par_audit_with_policy(
        &self,
        profiles: &[ProviderProfile],
        policy: &qpv_policy::HousePolicy,
        threads: NonZeroUsize,
    ) -> Result<AuditReport, AuditError> {
        let alt = AuditEngine {
            policy: policy.clone(),
            attributes: self.attributes.clone(),
            attribute_weights: self.attribute_weights.clone(),
            lattice: self.lattice.clone(),
        };
        alt.par_audit(profiles, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};
    use qpv_policy::{HousePolicy, ProviderId};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 9) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 4) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("research", pt(3, 1 + (i % 3) as u32, 45)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 5) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn engine() -> AuditEngine {
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(4, 3, 40)))
            .tuple("age", PrivacyTuple::from_point("research", pt(4, 2, 60)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        weights.set("age", 2);
        AuditEngine::new(policy, ["weight", "age"], weights)
    }

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn shard_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 255, 256, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 8, 17, 2000] {
                let bounds = shard_bounds(len, shards);
                let mut expect = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expect, "len {len} shards {shards}");
                    assert!(end > start, "empty shard: len {len} shards {shards}");
                    expect = end;
                }
                assert_eq!(expect, len, "len {len} shards {shards}");
                assert!(bounds.len() <= shards.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    bounds.iter().map(|(s, e)| e - s).min(),
                    bounds.iter().map(|(s, e)| e - s).max(),
                ) {
                    assert!(max - min <= 1, "len {len} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn par_map_chunks_covers_in_order() {
        for len in [0usize, 1, 63, 64, 65, 997, 4096, 5000] {
            for threads in [1usize, 2, 3, 8] {
                for chunk in [1usize, 7, 64, 4096] {
                    let got: Vec<(usize, usize)> =
                        par_map_chunks(len, threads, chunk, |s, e| (s, e)).unwrap();
                    let mut expect = 0;
                    for &(s, e) in &got {
                        assert_eq!(s, expect, "len {len} threads {threads} chunk {chunk}");
                        assert!(e > s && e <= len);
                        expect = e;
                    }
                    assert_eq!(expect, len, "len {len} threads {threads} chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn chunk_size_stays_in_bounds() {
        assert_eq!(chunk_size(0, 4), 64);
        assert_eq!(chunk_size(1000, 0), 125, "zero threads treated as one");
        assert_eq!(chunk_size(100_000, 4), 3125);
        assert_eq!(chunk_size(10_000_000, 4), 4096, "upper clamp");
        assert_eq!(chunk_size(100, 8), 64, "lower clamp");
    }

    #[test]
    fn skewed_population_report_is_byte_identical() {
        // One provider with ~100× the average preference tuples: the
        // dynamic scheduler must absorb the skew without the report
        // changing a byte relative to the sequential pass.
        let mut profiles = population(600);
        for i in 0..600 {
            profiles[300].preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(2 + (i % 3), 2, 30)),
            );
        }
        let engine = engine();
        let sequential = engine.run(&profiles);
        for threads in [2, 3, 8] {
            let parallel = engine.par_audit(&profiles, nz(threads)).unwrap();
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serde_json::to_string(&sequential).unwrap(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_report_equals_sequential_for_all_thread_counts() {
        let profiles = population(997); // prime: uneven shards
        let engine = engine();
        let sequential = engine.run(&profiles);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = engine.par_audit(&profiles, nz(threads)).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
            assert_eq!(parallel.p_violation(), sequential.p_violation());
            assert_eq!(parallel.p_default(), sequential.p_default());
        }
    }

    #[test]
    fn parallel_lattice_audit_matches_sequential() {
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("pr", "research").unwrap();
        let engine = engine().with_lattice(lattice);
        let profiles = population(600);
        let sequential = engine.run(&profiles);
        let parallel = engine.par_audit(&profiles, nz(4)).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn small_populations_fall_back_to_sequential() {
        let engine = engine();
        let profiles = population(PAR_THRESHOLD as u64 - 1);
        let report = engine.par_audit(&profiles, nz(8)).unwrap();
        assert_eq!(report, engine.run(&profiles));
        let empty = engine.par_audit(&[], nz(4)).unwrap();
        assert_eq!(empty.population(), 0);
    }

    #[test]
    fn par_audit_with_policy_matches_run_with_policy() {
        let engine = engine();
        let profiles = population(500);
        let wider = engine.policy.widened_uniform(2);
        assert_eq!(
            engine
                .par_audit_with_policy(&profiles, &wider, nz(4))
                .unwrap(),
            engine.run_with_policy(&profiles, &wider),
        );
    }

    #[test]
    fn single_worker_panic_is_retried_once_and_absorbed() {
        let _guard = failpoint::serialize();
        failpoint::arm(2, 1); // chunk 2 panics exactly once
        let got = par_map_chunks(100, 4, 10, |s, e| e - s);
        failpoint::disarm();
        assert_eq!(got.unwrap(), vec![10; 10]);
    }

    #[test]
    fn permanently_poisoned_chunk_is_reported_not_propagated() {
        let _guard = failpoint::serialize();
        failpoint::arm(3, i64::MAX); // chunk 3 panics every time
        let got = par_map_chunks(100, 4, 10, |s, e| e - s);
        failpoint::disarm();
        match got {
            Err(AuditError::WorkerPanicked {
                chunk,
                start,
                end,
                ref message,
            }) => {
                assert_eq!((chunk, start, end), (3, 30, 40));
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn sequential_fallback_confines_panics_identically() {
        let _guard = failpoint::serialize();
        failpoint::arm(0, i64::MAX);
        let got = par_map_chunks(10, 1, 10, |s, e| e - s); // workers <= 1 path
        failpoint::disarm();
        match got {
            Err(AuditError::WorkerPanicked { chunk, .. }) => assert_eq!(chunk, 0),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_par_audit_returns_err_and_engine_stays_usable() {
        let _guard = failpoint::serialize();
        let engine = engine();
        let profiles = population(600);
        failpoint::arm(1, i64::MAX);
        let err = engine.par_audit(&profiles, nz(4)).unwrap_err();
        failpoint::disarm();
        assert!(
            matches!(err, AuditError::WorkerPanicked { chunk: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("chunk 1"), "{err}");
        // The engine is not consumed or corrupted by the failure: the next
        // audit (no faults) matches the sequential report exactly.
        let clean = engine.par_audit(&profiles, nz(4)).unwrap();
        assert_eq!(clean, engine.run(&profiles));
    }

    #[test]
    fn worked_example_is_stable_under_par_audit() {
        // Table 1 must come out identically through the parallel entry
        // point (it falls back to sequential below the threshold, which is
        // itself part of the contract).
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        let report = engine.par_audit(&profiles, default_threads()).unwrap();
        assert_eq!(
            report.providers.iter().map(|p| p.score).collect::<Vec<_>>(),
            vec![0, 60, 80]
        );
        assert_eq!(report.total_violations, 140);
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
    }
}
