//! Sharded, multi-threaded audit execution with work-stealing chunks.
//!
//! Equation 15's `Violation_i` is a sum of independent per-provider terms,
//! and Definition 1's `w_i` and Definition 4's `default_i` are pure
//! functions of one provider's profile against the fixed house side — so an
//! audit partitions perfectly across worker threads.
//!
//! Scheduling is **dynamic**: the population is cut into fixed index
//! chunks ([`chunk_size`]) and workers pull the next unclaimed chunk off a
//! shared atomic counter ([`par_map_chunks`]). Unlike the PR-1 contiguous
//! [`shard_bounds`] split (one pre-assigned range per worker), a provider
//! with 100× the average preference tuples only delays its *chunk*, not a
//! whole shard — the other workers keep stealing the remaining chunks.
//! Chunks are merged back in index order, every provider goes through the
//! same [`crate::plan::CompiledAuditPlan::audit_profile`] hot loop as the
//! sequential audit, and `u128` addition of per-chunk subtotals in index
//! order regroups the exact integer sum — so [`AuditEngine::par_audit`]
//! returns an [`AuditReport`] that compares **equal** to
//! [`AuditEngine::run`]'s (same scores, same witnesses, same totals, same
//! derived probabilities) for every thread count and any skew. Tests and a
//! property suite pin this, including a serialized byte-identity check.
//!
//! Threading uses `std::thread::scope`, so there is no dependency beyond
//! std and no lifetime gymnastics: borrowed profiles flow straight into
//! workers. [`shard_bounds`] remains for callers that want a static
//! contiguous split (stable generation uses it for seed bookkeeping).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::audit::{AuditEngine, AuditReport, PopulationIndex, ProviderAudit};
use crate::plan::PlanScratch;
use crate::profile::ProviderProfile;

/// Below this population size the parallel entry points fall back to the
/// sequential path: thread spawn overhead would dominate.
pub const PAR_THRESHOLD: usize = 256;

/// The number of worker threads to use when the caller has no opinion:
/// the machine's available parallelism, with a fallback of 1.
pub fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Split `len` items into at most `shards` contiguous `(start, end)`
/// ranges of near-equal size (the first `len % shards` ranges get one
/// extra item). Empty ranges are never produced.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// The chunk granularity for dynamic assignment: aim for ~8 chunks per
/// worker (enough slack to absorb skewed providers) while keeping chunks
/// large enough (≥64) that counter traffic is negligible and small enough
/// (≤4096) that one pathological chunk cannot recreate a shard-sized
/// stall.
pub fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 8)).clamp(64, 4096)
}

/// Run `f(start, end)` over `len` items cut into `chunk`-sized index
/// ranges, with `threads` workers claiming chunks dynamically off a shared
/// atomic counter (work-stealing by competitive claiming). Results come
/// back **in chunk index order** regardless of which worker computed what
/// or when — the scheduling is invisible in the output, which is what lets
/// the audit report stay byte-identical under skew.
///
/// Falls back to a plain sequential loop for one worker (or one chunk).
pub fn par_map_chunks<T, F>(len: usize, threads: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks)
            .map(|i| f(i * chunk, ((i + 1) * chunk).min(len)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Option<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        produced.push((i, f(i * chunk, ((i + 1) * chunk).min(len))));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        for handle in handles {
            for (i, value) in handle.join().expect("chunk worker panicked") {
                slots[i] = Some(value);
            }
        }
        slots
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk is claimed exactly once"))
        .collect()
}

/// One chunk's worth of audit output.
struct ChunkResult {
    audits: Vec<ProviderAudit>,
    subtotal: u128,
}

impl AuditEngine {
    /// Audit a population across `threads` worker threads.
    ///
    /// Compiles the audit plan once, then workers claim fixed index chunks
    /// dynamically ([`par_map_chunks`]), each with its own reusable
    /// [`PlanScratch`]. Produces a report equal to [`AuditEngine::run`]'s
    /// for any thread count and any per-provider cost skew. Small
    /// populations (below [`PAR_THRESHOLD`]) and single-thread requests
    /// run sequentially.
    pub fn par_audit(&self, profiles: &[ProviderProfile], threads: NonZeroUsize) -> AuditReport {
        if threads.get() == 1 || profiles.len() < PAR_THRESHOLD {
            return self.run(profiles);
        }
        // Plan compilation and the population index are one pass each;
        // workers share both read-only.
        let plan = self.compile_house();
        let index = PopulationIndex::build(profiles, &self.attribute_weights);
        let chunk = chunk_size(profiles.len(), threads.get());
        let chunks = par_map_chunks(profiles.len(), threads.get(), chunk, |start, end| {
            let mut scratch = PlanScratch::new();
            let mut subtotal: u128 = 0;
            let audits = profiles[start..end]
                .iter()
                .map(|profile| {
                    let (datums, threshold) = index.resolve(profile);
                    let audit = plan.audit_profile(profile, datums, threshold, &mut scratch);
                    subtotal += audit.score as u128;
                    audit
                })
                .collect();
            ChunkResult { audits, subtotal }
        });

        // Merge in chunk index order: provider order and the u128 total
        // regroup exactly as the sequential pass computes them.
        let mut providers = Vec::with_capacity(profiles.len());
        let mut total: u128 = 0;
        for chunk in chunks {
            total += chunk.subtotal;
            providers.extend(chunk.audits);
        }
        AuditReport {
            providers,
            total_violations: total,
        }
    }

    /// [`AuditEngine::run_with_policy`], sharded across `threads`.
    pub fn par_audit_with_policy(
        &self,
        profiles: &[ProviderProfile],
        policy: &qpv_policy::HousePolicy,
        threads: NonZeroUsize,
    ) -> AuditReport {
        let alt = AuditEngine {
            policy: policy.clone(),
            attributes: self.attributes.clone(),
            attribute_weights: self.attribute_weights.clone(),
            lattice: self.lattice.clone(),
        };
        alt.par_audit(profiles, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};
    use qpv_policy::{HousePolicy, ProviderId};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    fn population(n: u64) -> Vec<ProviderProfile> {
        (0..n)
            .map(|i| {
                let mut p = ProviderProfile::new(ProviderId(i), 20 + (i % 9) * 10);
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(2 + (i % 4) as u32, 2, 30)),
                );
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point("research", pt(3, 1 + (i % 3) as u32, 45)),
                );
                p.sensitivities.insert(
                    "weight".into(),
                    DatumSensitivity::new(1 + (i % 5) as u32, 1, 2, 1),
                );
                p
            })
            .collect()
    }

    fn engine() -> AuditEngine {
        let policy = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(4, 3, 40)))
            .tuple("age", PrivacyTuple::from_point("research", pt(4, 2, 60)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        weights.set("age", 2);
        AuditEngine::new(policy, ["weight", "age"], weights)
    }

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn shard_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 255, 256, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 8, 17, 2000] {
                let bounds = shard_bounds(len, shards);
                let mut expect = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expect, "len {len} shards {shards}");
                    assert!(end > start, "empty shard: len {len} shards {shards}");
                    expect = end;
                }
                assert_eq!(expect, len, "len {len} shards {shards}");
                assert!(bounds.len() <= shards.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    bounds.iter().map(|(s, e)| e - s).min(),
                    bounds.iter().map(|(s, e)| e - s).max(),
                ) {
                    assert!(max - min <= 1, "len {len} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn par_map_chunks_covers_in_order() {
        for len in [0usize, 1, 63, 64, 65, 997, 4096, 5000] {
            for threads in [1usize, 2, 3, 8] {
                for chunk in [1usize, 7, 64, 4096] {
                    let got: Vec<(usize, usize)> =
                        par_map_chunks(len, threads, chunk, |s, e| (s, e));
                    let mut expect = 0;
                    for &(s, e) in &got {
                        assert_eq!(s, expect, "len {len} threads {threads} chunk {chunk}");
                        assert!(e > s && e <= len);
                        expect = e;
                    }
                    assert_eq!(expect, len, "len {len} threads {threads} chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn chunk_size_stays_in_bounds() {
        assert_eq!(chunk_size(0, 4), 64);
        assert_eq!(chunk_size(1000, 0), 125, "zero threads treated as one");
        assert_eq!(chunk_size(100_000, 4), 3125);
        assert_eq!(chunk_size(10_000_000, 4), 4096, "upper clamp");
        assert_eq!(chunk_size(100, 8), 64, "lower clamp");
    }

    #[test]
    fn skewed_population_report_is_byte_identical() {
        // One provider with ~100× the average preference tuples: the
        // dynamic scheduler must absorb the skew without the report
        // changing a byte relative to the sequential pass.
        let mut profiles = population(600);
        for i in 0..600 {
            profiles[300].preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(2 + (i % 3), 2, 30)),
            );
        }
        let engine = engine();
        let sequential = engine.run(&profiles);
        for threads in [2, 3, 8] {
            let parallel = engine.par_audit(&profiles, nz(threads));
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serde_json::to_string(&sequential).unwrap(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_report_equals_sequential_for_all_thread_counts() {
        let profiles = population(997); // prime: uneven shards
        let engine = engine();
        let sequential = engine.run(&profiles);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = engine.par_audit(&profiles, nz(threads));
            assert_eq!(parallel, sequential, "{threads} threads");
            assert_eq!(parallel.p_violation(), sequential.p_violation());
            assert_eq!(parallel.p_default(), sequential.p_default());
        }
    }

    #[test]
    fn parallel_lattice_audit_matches_sequential() {
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("pr", "research").unwrap();
        let engine = engine().with_lattice(lattice);
        let profiles = population(600);
        let sequential = engine.run(&profiles);
        let parallel = engine.par_audit(&profiles, nz(4));
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn small_populations_fall_back_to_sequential() {
        let engine = engine();
        let profiles = population(PAR_THRESHOLD as u64 - 1);
        let report = engine.par_audit(&profiles, nz(8));
        assert_eq!(report, engine.run(&profiles));
        let empty = engine.par_audit(&[], nz(4));
        assert_eq!(empty.population(), 0);
    }

    #[test]
    fn par_audit_with_policy_matches_run_with_policy() {
        let engine = engine();
        let profiles = population(500);
        let wider = engine.policy.widened_uniform(2);
        assert_eq!(
            engine.par_audit_with_policy(&profiles, &wider, nz(4)),
            engine.run_with_policy(&profiles, &wider),
        );
    }

    #[test]
    fn worked_example_is_stable_under_par_audit() {
        // Table 1 must come out identically through the parallel entry
        // point (it falls back to sequential below the threshold, which is
        // itself part of the contract).
        let (v, g, r) = (5u32, 5u32, 5u32);
        let policy = HousePolicy::builder("house")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(v, g, r)))
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mk = |id: u64, pref: PrivacyPoint, sens: DatumSensitivity, threshold: u64| {
            let mut profile = ProviderProfile::new(ProviderId(id), threshold);
            profile
                .preferences
                .add("weight", PrivacyTuple::from_point("pr", pref));
            profile.sensitivities.insert("weight".into(), sens);
            profile
        };
        let profiles = vec![
            mk(
                0,
                pt(v + 2, g + 1, r + 3),
                DatumSensitivity::new(1, 1, 2, 1),
                10,
            ),
            mk(
                1,
                pt(v + 2, g - 1, r + 2),
                DatumSensitivity::new(3, 1, 5, 2),
                50,
            ),
            mk(
                2,
                pt(v, g - 1, r - 1),
                DatumSensitivity::new(4, 1, 3, 2),
                100,
            ),
        ];
        let report = engine.par_audit(&profiles, default_threads());
        assert_eq!(
            report.providers.iter().map(|p| p.score).collect::<Vec<_>>(),
            vec![0, 60, 80]
        );
        assert_eq!(report.total_violations, 140);
        assert!((report.p_default() - 1.0 / 3.0).abs() < 1e-12);
    }
}
