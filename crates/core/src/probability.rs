//! Probabilities of violation and default (paper §5 Definition 2, §7
//! Definition 5).
//!
//! The paper defines both probabilities by relative frequency: draw a
//! random provider, check the property, repeat. For a finite database the
//! limit is simply the census fraction `Σ_i x_i / N`; both are provided —
//! the estimator mirrors the paper's definition (and is what one would run
//! against a database too large to census), the census is its limit.

use rand::Rng;

/// The exact probability `Σ_i x_i / N` (Definitions 2 and 5's limit).
/// Returns 0 for an empty population (no trial can select a provider).
pub fn census_probability(outcomes: &[bool]) -> f64 {
    census_fraction(outcomes.iter().filter(|&&b| b).count(), outcomes.len())
}

/// [`census_probability`] from pre-counted hits, for callers that can
/// count in a single pass instead of materialising an outcome vector.
/// Identical float math: `hits / population`, 0 for an empty population.
pub fn census_fraction(hits: usize, population: usize) -> f64 {
    if population == 0 {
        return 0.0;
    }
    hits as f64 / population as f64
}

/// The relative-frequency estimator `τ(A)/τ`: `trials` independent uniform
/// draws of a provider, counting how often the property holds.
///
/// Converges to [`census_probability`] as `trials → ∞` (law of large
/// numbers); the tests verify the convergence empirically.
pub fn estimate_probability(outcomes: &[bool], trials: u32, rng: &mut impl Rng) -> f64 {
    if outcomes.is_empty() || trials == 0 {
        return 0.0;
    }
    let mut hits = 0u32;
    for _ in 0..trials {
        let pick = rng.gen_range(0..outcomes.len());
        if outcomes[pick] {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn census_fractions() {
        assert_eq!(census_probability(&[]), 0.0);
        assert_eq!(census_probability(&[false, false]), 0.0);
        assert_eq!(census_probability(&[true, true]), 1.0);
        // The worked example: P(Default) = 1/3.
        let outcomes = [false, true, false];
        assert!((census_probability(&outcomes) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_agrees_with_census_bitwise() {
        for (hits, n) in [(0usize, 0usize), (0, 3), (1, 3), (2, 3), (7, 11)] {
            let outcomes: Vec<bool> = (0..n).map(|i| i < hits).collect();
            assert_eq!(census_fraction(hits, n), census_probability(&outcomes));
        }
    }

    #[test]
    fn estimator_converges_to_census() {
        let mut rng = SmallRng::seed_from_u64(42);
        let outcomes: Vec<bool> = (0..1000).map(|i| i % 4 == 0).collect(); // p = 0.25
        let p = census_probability(&outcomes);
        let est = estimate_probability(&outcomes, 200_000, &mut rng);
        assert!(
            (est - p).abs() < 0.01,
            "estimate {est} too far from census {p}"
        );
    }

    #[test]
    fn estimator_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(estimate_probability(&[], 100, &mut rng), 0.0);
        assert_eq!(estimate_probability(&[true], 0, &mut rng), 0.0);
        assert_eq!(estimate_probability(&[true], 100, &mut rng), 1.0);
        assert_eq!(estimate_probability(&[false], 100, &mut rng), 0.0);
    }

    #[test]
    fn estimator_is_deterministic_under_a_seed() {
        let outcomes: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let a = estimate_probability(&outcomes, 1000, &mut SmallRng::seed_from_u64(7));
        let b = estimate_probability(&outcomes, 1000, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
