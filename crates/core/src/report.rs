//! Plain-text rendering of audit results.
//!
//! Produces the report a data-protection officer (or the experiment
//! harness) reads: a per-provider table in the style of the paper's
//! Table 1, followed by the population-level quantities.

use std::fmt::Write as _;

use crate::audit::AuditReport;

/// Render an audit report as aligned plain text.
pub fn render(report: &AuditReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>4} {:>12} {:>12} {:>9}  witnesses",
        "provider", "w_i", "Violation_i", "v_i", "default_i"
    );
    for p in &report.providers {
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>12} {:>12} {:>9}  {}",
            format!("#{}", p.provider.0),
            p.violated as u8,
            p.score,
            p.threshold,
            p.defaulted as u8,
            summarise_witnesses(p),
        );
    }
    let _ = writeln!(out, "---");
    let _ = writeln!(out, "N                = {}", report.population());
    let _ = writeln!(out, "Violations       = {}", report.total_violations);
    let _ = writeln!(out, "P(W)             = {:.4}", report.p_violation());
    let _ = writeln!(out, "P(Default)       = {:.4}", report.p_default());
    let _ = writeln!(out, "N_future         = {}", report.remaining());
    out
}

fn summarise_witnesses(p: &crate::audit::ProviderAudit) -> String {
    if p.witnesses.is_empty() {
        return "-".to_string();
    }
    p.witnesses
        .iter()
        .map(|w| {
            let dims: Vec<String> = w
                .geometry
                .escaped_dims()
                .map(|d| d.short_name().to_string())
                .collect();
            format!(
                "{}/{}[{}]{}",
                w.attribute,
                w.purpose,
                dims.join(","),
                if w.implicit_preference { "*" } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render a one-line summary (for sweep output).
pub fn render_summary(label: &str, report: &AuditReport) -> String {
    format!(
        "{label}: N={} Violations={} P(W)={:.3} P(Default)={:.3} N_future={}",
        report.population(),
        report.total_violations,
        report.p_violation(),
        report.p_default(),
        report.remaining()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use crate::profile::ProviderProfile;
    use crate::sensitivity::{AttributeSensitivities, DatumSensitivity};
    use qpv_policy::{HousePolicy, ProviderId};
    use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

    fn sample_report() -> AuditReport {
        let policy = HousePolicy::builder("h")
            .tuple(
                "weight",
                PrivacyTuple::from_point("pr", PrivacyPoint::from_raw(5, 5, 5)),
            )
            .build();
        let mut weights = AttributeSensitivities::new();
        weights.set("weight", 4);
        let engine = AuditEngine::new(policy, ["weight"], weights);
        let mut ted = ProviderProfile::new(ProviderId(1), 50);
        ted.preferences.add(
            "weight",
            PrivacyTuple::from_point("pr", PrivacyPoint::from_raw(7, 4, 7)),
        );
        ted.sensitivities
            .insert("weight".into(), DatumSensitivity::new(3, 1, 5, 2));
        engine.run(&[ted])
    }

    #[test]
    fn render_contains_model_quantities() {
        let text = render(&sample_report());
        assert!(text.contains("Violation_i"), "{text}");
        assert!(text.contains("P(Default)"), "{text}");
        assert!(text.contains("60"), "Ted's score missing: {text}");
        assert!(text.contains("weight/pr[gran]"), "witness missing: {text}");
    }

    #[test]
    fn summary_is_one_line() {
        let line = render_summary("base", &sample_report());
        assert!(!line.contains('\n'));
        assert!(line.starts_with("base:"));
        assert!(line.contains("P(Default)=1.000"));
    }

    #[test]
    fn implicit_witnesses_are_starred() {
        let policy = HousePolicy::builder("h")
            .tuple(
                "weight",
                PrivacyTuple::from_point("ads", PrivacyPoint::from_raw(1, 1, 1)),
            )
            .build();
        let engine = AuditEngine::new(policy, ["weight"], AttributeSensitivities::new());
        let profile = ProviderProfile::new(ProviderId(0), 1000);
        let report = engine.run(&[profile]);
        let text = render(&report);
        assert!(text.contains("]*"), "implicit marker missing: {text}");
    }
}
