//! # qpv-core
//!
//! The privacy-violation model of *Quantifying Privacy Violations*
//! (Banerjee, Karimi Adl, Wu, Barker; SDM @ VLDB 2011), implemented end to
//! end:
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Definition 1 (violation `w_i`) | [`violation::is_violated`], [`violation::witnesses`] |
//! | Definition 2 (`P(W)`) | [`probability::census_probability`], [`probability::estimate_probability`] |
//! | Definition 3 (α-PPDB) | [`audit::AuditReport::is_alpha_ppdb`] |
//! | Equations 10–11 (sensitivity `⟨σ, Σ⟩`) | [`sensitivity::SensitivityModel`] |
//! | Equations 12–14 (`diff`, `comp`, `conf`) | [`severity::conf`] |
//! | Equations 15–16 (`Violation_i`, `Violations`) | [`severity::violation_score`], [`severity::total_violations`] |
//! | Definitions 4–5 (default, `P(Default)`) | [`default_model`], [`probability`] |
//!
//! On top of the pure model sit the systems pieces:
//!
//! * [`profile`] — a provider's complete privacy posture (preferences,
//!   sensitivities, default threshold): the unit the synthetic-population
//!   generator produces and the audit consumes.
//! * [`ppdb`] — the **privacy-preserving database**: provider data, stated
//!   preferences, sensitivities, thresholds, and the house policy all live
//!   in `qpv-reldb` tables, making violations auditable against actual
//!   storage (the paper's §10 "initial prototype of the α-PPDB").
//! * [`audit`] — the audit engine producing [`audit::AuditReport`]s.
//! * [`incremental`] — delta-maintained violation scores under policy
//!   changes (ablation A1 compares this with full recomputation).
//! * [`intern`] / [`plan`] — the compiled audit path: attributes and
//!   purposes interned to dense ids, policy tuples pre-resolved to
//!   [`plan::CompiledAuditPlan`] rows, lattice coverage precomputed — the
//!   hot loop runs with zero string hashing. [`audit::AuditEngine::run`],
//!   the parallel path, and the incremental auditor all route through it;
//!   [`audit::AuditEngine::run_reference`] keeps the direct string path as
//!   the property-tested oracle.
//! * [`pop`] — the population compiled once into flat structure-of-arrays
//!   storage ([`pop::CompiledPopulation`]): dense interned preference rows,
//!   a flat datum-sensitivity table, and a flat threshold array. Build once,
//!   audit many policies ([`audit::AuditEngine::audit_many_policies`]) with
//!   a counts-only fast path that allocates nothing per provider.
//! * [`whatif`] — §10's "what-if scenarios that modify a house's privacy
//!   policies", evaluated without touching the stored policy.
//! * [`report`] — plain-text rendering of audit results.

pub mod audit;
pub mod default_model;
pub mod deltalog;
pub mod incremental;
pub mod intern;
mod packed;
pub mod par;
pub mod plan;
pub mod pop;
pub mod ppdb;
pub mod probability;
pub mod profile;
pub mod report;
pub mod sensitivity;
pub mod severity;
pub mod violation;
pub mod whatif;

pub use audit::{AuditEngine, AuditReport, ProviderAudit};
pub use default_model::{defaults, DefaultThresholds};
pub use deltalog::{
    DeltaLog, Monitor, MonitorAlert, MonitorConfig, MonitorView, Recovery, SharedMonitor,
};
pub use incremental::IncrementalAuditor;
pub use intern::SymbolTable;
pub use par::{
    chunk_size, default_threads, par_map_chunks, shard_bounds, AuditError, PAR_THRESHOLD,
};
pub use plan::{CompiledAuditPlan, PlanScratch};
pub use pop::{
    CompiledPopulation, DeltaError, DeltaOp, DeltaOutcome, PolicyOutcome, PopulationBuilder,
    PopulationDelta,
};
pub use ppdb::{AuditLogEntry, DeltaQueue, Ppdb, PpdbConfig, DEFAULT_DELTA_CAPACITY};
pub use probability::{census_fraction, census_probability, estimate_probability};
pub use profile::ProviderProfile;
pub use sensitivity::{AttributeSensitivities, DatumSensitivity, SensitivityModel};
pub use severity::{conf, total_violations, violation_score};
pub use violation::{is_violated, witnesses, ViolationWitness};
