//! Branch-free counts evaluation over the packed unique-row lanes.
//!
//! [`PackedScratch::pass`] is the counts hot path behind
//! [`crate::pop::AuditEngine::counts`] /
//! `AuditEngine::audit_many_policies`: it scores each *unique* row of a
//! [`CompiledPopulation`] exactly once against a
//! [`CompiledAuditPlan`], then aggregates by the row's refcount
//! (multiplicity). On segment-clustered populations the unique-row table
//! is orders of magnitude smaller than the population, so the whole
//! working set stays cache-resident for millions of providers.
//!
//! The evaluation itself replaces the per-provider scalar walk
//! (`index_provider` + `eval_scratch`'s branchy per-row `if` chains)
//! with straight-line lane arithmetic over fixed-size blocks of unique
//! rows:
//!
//! 1. **fill** — scatter each row's stated preference lanes into
//!    per-plan-row effective-preference lanes (`ev`/`eg`/`er`,
//!    `plan_rows × BLOCK`), honoring the plan's semantics exactly: flat
//!    mode keeps the first stated tuple per `(attr, purpose)` cell,
//!    lattice mode max-joins every covering tuple, unstated cells stay
//!    at the implicit deny-all `PrivacyPoint::ZERO`. Stated-ness is a
//!    per-block *generation stamp* (`stamp` lanes vs `gen`), so no lane
//!    is ever cleared between blocks, and a preference row's cell routes
//!    through a CSR map indexed directly by the population's interned
//!    `(attr, purpose)` ids — one lookup, no translation sentinels in
//!    the inner loop;
//! 2. **sweep** — per plan *attribute*: every plan row on the attribute
//!    contributes `diff = policy.saturating_sub(effective_pref)` per
//!    dimension (branch-free `u32` ops, unstamped cells masked to ZERO)
//!    into weighted per-dimension accumulator lanes (`sv`/`sg`/`sr`),
//!    OR-folding the violation *predicate* into a mask lane; then one
//!    fused multiply by the attribute's datum products
//!    (`value × along(dim)`, neutral = 1 where the population never saw
//!    the attribute) lands the Eq. 14 severity sum in the score lane.
//!    The factoring `Σ_r (diff_r·w_r)·(value·along) =
//!    (Σ_r diff_r·w_r)·(value·along)` holds exactly because every plan
//!    row of an attribute shares the same datum product — *provided
//!    nothing saturates*. A conservative `u128` bound over the plan's
//!    maximal diffs and the table's maximal datum products is checked
//!    once per pass; if it cannot rule saturation out, the pass runs a
//!    fallback sweep that replays `crate::severity::conf`'s exact
//!    `saturating_mul`/`saturating_add` chain in plan-row order;
//! 3. **aggregate** — violation masks reduce through packed `u64` words
//!    (popcount-style bit iteration) weighted by refcounts; scores
//!    weigh into the `u128` total by refcount; the defaulted count reads
//!    per-occurrence thresholds against the shared per-unique-row score.
//!
//! The regrouped arithmetic is identical to [`crate::severity::conf`]'s
//! chain — all factors are non-negative, `u32 × u32` is exact in `u64`,
//! saturating ops over non-negatives compute `min(true value, MAX)`, and
//! the factored path only runs when the precheck proves the true value
//! stays below every saturation point — and `tests/pop_equivalence.rs`
//! pins the whole pass byte-identical to `AuditEngine::run_reference`,
//! including saturating magnitudes that force the fallback sweep.

use crate::default_model::defaults;
use crate::plan::CompiledAuditPlan;
use crate::pop::{CompiledPopulation, PolicyOutcome};
use qpv_taxonomy::Dim;

/// Unique rows evaluated per tile. Sized so the block working set —
/// 4 lane arrays (`ev`/`eg`/`er`/`stamp`) × plan rows × 4 bytes — stays
/// inside L1 for realistic plans (≈24 KB at 6 plan rows); 1024 spilled
/// to L2 and measured ~2× slower on the 100k counts path.
const BLOCK: usize = 256;

/// One compiled plan row's policy-side constants, hoisted out of the
/// sweep loop.
struct RowParam {
    pv: u32,
    pg: u32,
    pr: u32,
    w: u32,
    attr: usize,
}

/// Reusable lane buffers for the packed counts pass. Allocation happens
/// on first use and is amortized across passes (`audit_many_policies`
/// shares one scratch over all K policies).
#[derive(Debug, Default)]
pub(crate) struct PackedScratch {
    /// `(plan attr, plan purpose)` cell → plan-row indices whose
    /// effective preference that cell feeds (flat: its own cell; lattice:
    /// every covered purpose's cell). Plan-space staging for `csr_*`.
    cell_rows: Vec<Vec<u32>>,
    /// CSR offsets over population-symbol cells: entry
    /// `pop_attr * pop_purposes + pop_purpose` spans the plan rows that
    /// cell feeds in `csr_rows`. Rebuilt per pass, O(symbols × plan).
    csr_off: Vec<u32>,
    csr_rows: Vec<u32>,
    /// CSR of plan rows grouped by plan attribute (`arow_off[a]..
    /// arow_off[a+1]` spans `arow_idx`), driving the factored sweep.
    arow_off: Vec<u32>,
    arow_idx: Vec<u32>,
    // Effective-preference lanes, `plan_rows × BLOCK`.
    ev: Vec<u32>,
    eg: Vec<u32>,
    er: Vec<u32>,
    /// Stated-ness stamps, `plan_rows × BLOCK`: `stamp[idx] == gen` marks
    /// a cell the current block's fill stage wrote. Never cleared —
    /// flat first-wins and lattice join-init both key off the stamp, and
    /// the sweep masks unstamped (stale) lanes to ZERO.
    stamp: Vec<u32>,
    /// Current stamp generation; advances monotonically across blocks
    /// and passes, with a lane wipe on the (never in practice) wrap.
    gen: u32,
    // Per-dimension weighted-diff accumulators for the factored sweep,
    // `BLOCK` each.
    sv: Vec<u64>,
    sg: Vec<u64>,
    sr: Vec<u64>,
    /// Per-unique-row violation predicate accumulator for the block
    /// (nonzero = at least one dimension exceeded on some plan row).
    vmask: Vec<u32>,
    /// Per-unique-row saturating score, full table length.
    score: Vec<u64>,
}

impl PackedScratch {
    pub(crate) fn new() -> PackedScratch {
        PackedScratch::default()
    }

    /// Score every unique row once, aggregate by multiplicity. Aggregates
    /// equal `AuditEngine::audit_compiled`'s, bit for bit.
    pub(crate) fn pass(
        &mut self,
        pop: &CompiledPopulation,
        plan: &CompiledAuditPlan,
    ) -> PolicyOutcome {
        let binding = pop.bind(plan);
        let table = pop.table();
        let (p_attr, p_purpose, p_vis, p_gran, p_ret) = table.pref_lanes();
        let (d_value, d_vis, d_gran, d_ret) = table.datum_lanes();
        let refs = table.refs_slice();
        let ranges = table.ranges_slice();
        let stride = table.stride();
        let slots = table.slot_count();
        let nrows = plan.rows.len();
        let na = plan.attrs.len();
        let np = plan.purposes.len();
        let (pop_na, pop_np) = pop.symbol_counts();

        // Map each plan (attr, purpose) cell to the plan rows it feeds,
        // then project down to population-symbol space as a CSR so the
        // fill loop resolves a preference row's cell with one multiply
        // and two offset loads. Built once per pass; O(plan + symbols).
        for cell in self.cell_rows.iter_mut() {
            cell.clear();
        }
        self.cell_rows.resize_with(na * np, Vec::new);
        for (r, row) in plan.rows.iter().enumerate() {
            if plan.lattice_mode {
                for &p in &plan.covers[row.covers as usize] {
                    self.cell_rows[row.attr as usize * np + p as usize].push(r as u32);
                }
            } else {
                self.cell_rows[row.attr as usize * np + row.purpose as usize].push(r as u32);
            }
        }
        self.csr_off.clear();
        self.csr_rows.clear();
        for pa in 0..pop_na {
            for pp in 0..pop_np {
                self.csr_off.push(self.csr_rows.len() as u32);
                let a = binding.attr_to_plan[pa];
                let p = binding.purpose_to_plan[pp];
                if a != u32::MAX && p != u32::MAX {
                    self.csr_rows
                        .extend_from_slice(&self.cell_rows[a as usize * np + p as usize]);
                }
            }
        }
        self.csr_off.push(self.csr_rows.len() as u32);
        // In the overwhelmingly common shape — no duplicate policy
        // tuples per (attr, purpose), flat mode — every cell feeds at
        // most one plan row, and the fill loop collapses to a single
        // table lookup per preference row.
        let single_target = (0..pop_na * pop_np)
            .all(|c| self.csr_off[c + 1] - self.csr_off[c] <= 1)
            .then(|| {
                (0..pop_na * pop_np)
                    .map(|c| {
                        if self.csr_off[c + 1] > self.csr_off[c] {
                            self.csr_rows[self.csr_off[c] as usize]
                        } else {
                            u32::MAX
                        }
                    })
                    .collect::<Vec<u32>>()
            });

        let rp: Vec<RowParam> = plan
            .rows
            .iter()
            .map(|row| RowParam {
                pv: row.point.get(Dim::Visibility),
                pg: row.point.get(Dim::Granularity),
                pr: row.point.get(Dim::Retention),
                w: row.weight,
                attr: row.attr as usize,
            })
            .collect();

        // Plan rows grouped by attribute for the factored sweep.
        self.arow_off.clear();
        self.arow_idx.clear();
        for a in 0..na {
            self.arow_off.push(self.arow_idx.len() as u32);
            for (r, row) in rp.iter().enumerate() {
                if row.attr == a {
                    self.arow_idx.push(r as u32);
                }
            }
        }
        self.arow_off.push(self.arow_idx.len() as u32);

        // Saturation precheck: an upper bound on the exact Eq. 14 sum —
        // every diff bounded by its policy point, every datum product by
        // the table-wide lane maxima. Below u64::MAX, no saturating op
        // anywhere in the reference chain can clip, so the factored
        // arithmetic is exact and byte-identical; otherwise fall back to
        // the reference-ordered saturating sweep.
        let max_val = d_value.iter().copied().max().unwrap_or(0) as u128;
        let max_along = d_vis
            .iter()
            .chain(d_gran)
            .chain(d_ret)
            .copied()
            .max()
            .unwrap_or(0) as u128;
        let max_prod = (max_val * max_along).max(1);
        let bound: u128 = rp
            .iter()
            .map(|row| (row.pv as u128 + row.pg as u128 + row.pr as u128) * row.w as u128)
            .sum::<u128>()
            .saturating_mul(max_prod);
        let exact = bound < u64::MAX as u128;

        self.ev.resize(nrows * BLOCK, 0);
        self.eg.resize(nrows * BLOCK, 0);
        self.er.resize(nrows * BLOCK, 0);
        // Lane growth stamps at 0, i.e. stale for every live generation.
        self.stamp.resize(nrows * BLOCK, 0);
        self.sv.resize(BLOCK, 0);
        self.sg.resize(BLOCK, 0);
        self.sr.resize(BLOCK, 0);
        self.vmask.resize(BLOCK, 0);
        self.score.clear();
        self.score.resize(slots, 0);

        let PackedScratch {
            csr_off,
            csr_rows,
            arow_off,
            arow_idx,
            ev,
            eg,
            er,
            stamp,
            gen,
            sv,
            sg,
            sr,
            vmask,
            score,
            ..
        } = self;

        let mut total: u128 = 0;
        let mut violated: usize = 0;

        let mut b0 = 0;
        while b0 < slots {
            let bl = BLOCK.min(slots - b0);

            // A fresh generation invalidates every lane the previous
            // block stamped — no clearing. (The wrap back to 0 would
            // alias lanes grown at 0, so wipe once per 2^32 blocks.)
            *gen = gen.wrapping_add(1);
            if *gen == 0 {
                stamp.fill(0);
                *gen = 1;
            }
            let gen = *gen;

            // FILL: scatter stated preferences into the plan-row lanes.
            for ub in 0..bl {
                let u = b0 + ub;
                if refs[u] == 0 {
                    continue; // dead slot: lanes stay stale, weight 0 below
                }
                let (s, e) = (ranges[u].0 as usize, ranges[u].1 as usize);
                let prefs = p_attr[s..e]
                    .iter()
                    .zip(&p_purpose[s..e])
                    .zip(p_vis[s..e].iter().zip(&p_gran[s..e]).zip(&p_ret[s..e]));
                if let Some(one) = &single_target {
                    for ((&pa, &pp), ((&tv, &tg), &tr)) in prefs {
                        let r = one[pa as usize * pop_np + pp as usize];
                        if r == u32::MAX {
                            continue;
                        }
                        let idx = r as usize * BLOCK + ub;
                        if stamp[idx] != gen {
                            stamp[idx] = gen;
                            ev[idx] = tv;
                            eg[idx] = tg;
                            er[idx] = tr;
                        } else if plan.lattice_mode {
                            ev[idx] = ev[idx].max(tv);
                            eg[idx] = eg[idx].max(tg);
                            er[idx] = er[idx].max(tr);
                        }
                        // flat mode: first stated tuple wins, rest skipped
                    }
                } else {
                    for ((&pa, &pp), ((&tv, &tg), &tr)) in prefs {
                        let cell = pa as usize * pop_np + pp as usize;
                        let rows = &csr_rows[csr_off[cell] as usize..csr_off[cell + 1] as usize];
                        for &r in rows {
                            let idx = r as usize * BLOCK + ub;
                            if stamp[idx] != gen {
                                stamp[idx] = gen;
                                ev[idx] = tv;
                                eg[idx] = tg;
                                er[idx] = tr;
                            } else if plan.lattice_mode {
                                ev[idx] = ev[idx].max(tv);
                                eg[idx] = eg[idx].max(tg);
                                er[idx] = er[idx].max(tr);
                            }
                        }
                    }
                }
            }

            // SWEEP: branch-free diffs + violation mask, factored per
            // plan attribute. Lanes the fill stage didn't stamp mask to
            // ZERO — the implicit deny-all.
            vmask[..bl].fill(0);
            let vms = &mut vmask[..bl];
            let scs = &mut score[b0..b0 + bl];
            if exact {
                let mut first_attr = true;
                for (a, pop_attr) in binding.plan_attr_to_pop.iter().enumerate() {
                    let rows = &arow_idx[arow_off[a] as usize..arow_off[a + 1] as usize];
                    if rows.is_empty() {
                        continue;
                    }
                    // Per-dimension weighted diffs over the attribute's
                    // plan rows: u32 lane math, widening mul-accumulate.
                    let mut first = true;
                    for &r in rows {
                        let row = &rp[r as usize];
                        let eb = r as usize * BLOCK;
                        let evs = &ev[eb..eb + bl];
                        let egs = &eg[eb..eb + bl];
                        let ers = &er[eb..eb + bl];
                        let sts = &stamp[eb..eb + bl];
                        let svs = &mut sv[..bl];
                        let sgs = &mut sg[..bl];
                        let srs = &mut sr[..bl];
                        let w = row.w as u64;
                        for ub in 0..bl {
                            let live = 0u32.wrapping_sub((sts[ub] == gen) as u32);
                            let dv = row.pv.saturating_sub(evs[ub] & live);
                            let dg = row.pg.saturating_sub(egs[ub] & live);
                            let dr = row.pr.saturating_sub(ers[ub] & live);
                            vms[ub] |= dv | dg | dr;
                            if first {
                                svs[ub] = dv as u64 * w;
                                sgs[ub] = dg as u64 * w;
                                srs[ub] = dr as u64 * w;
                            } else {
                                svs[ub] += dv as u64 * w;
                                sgs[ub] += dg as u64 * w;
                                srs[ub] += dr as u64 * w;
                            }
                        }
                        first = false;
                    }
                    // Fused datum products: one multiply per dimension
                    // lands the attribute's exact severity contribution.
                    match pop_attr {
                        Some(pa) => {
                            let mut d = b0 * stride + *pa as usize;
                            for ub in 0..bl {
                                let val = d_value[d] as u64;
                                let term = sv[ub] * (val * d_vis[d] as u64)
                                    + sg[ub] * (val * d_gran[d] as u64)
                                    + sr[ub] * (val * d_ret[d] as u64);
                                if first_attr {
                                    scs[ub] = term;
                                } else {
                                    scs[ub] += term;
                                }
                                d += stride;
                            }
                        }
                        None => {
                            for ub in 0..bl {
                                let term = sv[ub] + sg[ub] + sr[ub];
                                if first_attr {
                                    scs[ub] = term;
                                } else {
                                    scs[ub] += term;
                                }
                            }
                        }
                    }
                    first_attr = false;
                }
                if first_attr {
                    scs.fill(0); // no plan rows at all
                }
            } else {
                // Fallback: replay the reference's exact saturating chain
                // in plan-row order (saturation points depend on the
                // association, so no factoring here).
                scs.fill(0);
                for (r, row) in rp.iter().enumerate() {
                    let eb = r * BLOCK;
                    let evs = &ev[eb..eb + bl];
                    let egs = &eg[eb..eb + bl];
                    let ers = &er[eb..eb + bl];
                    let sts = &stamp[eb..eb + bl];
                    let w = row.w as u64;
                    let pop_attr = binding.plan_attr_to_pop[row.attr];
                    for ub in 0..bl {
                        let live = 0u32.wrapping_sub((sts[ub] == gen) as u32);
                        let dv = row.pv.saturating_sub(evs[ub] & live);
                        let dg = row.pg.saturating_sub(egs[ub] & live);
                        let dr = row.pr.saturating_sub(ers[ub] & live);
                        vms[ub] |= dv | dg | dr;
                        let (pv, pg, pr) = match pop_attr {
                            Some(pa) => {
                                let d = (b0 + ub) * stride + pa as usize;
                                let val = d_value[d] as u64;
                                (
                                    val * d_vis[d] as u64,
                                    val * d_gran[d] as u64,
                                    val * d_ret[d] as u64,
                                )
                            }
                            None => (1, 1, 1),
                        };
                        scs[ub] = scs[ub]
                            .saturating_add((dv as u64 * w).saturating_mul(pv))
                            .saturating_add((dg as u64 * w).saturating_mul(pg))
                            .saturating_add((dr as u64 * w).saturating_mul(pr));
                    }
                }
            }

            // AGGREGATE: pack the violation predicates into u64 words and
            // walk set bits, weighing each by the row's multiplicity.
            let mut w0 = 0;
            while w0 < bl {
                let wl = 64.min(bl - w0);
                let mut word: u64 = 0;
                for (k, &m) in vmask[w0..w0 + wl].iter().enumerate() {
                    word |= ((m != 0) as u64) << k;
                }
                while word != 0 {
                    let k = word.trailing_zeros() as usize;
                    violated += refs[b0 + w0 + k] as usize;
                    word &= word - 1;
                }
                w0 += 64;
            }
            for ub in 0..bl {
                let rf = refs[b0 + ub];
                if rf != 0 {
                    total += score[b0 + ub] as u128 * rf as u128;
                }
            }

            b0 += BLOCK;
        }

        // DEFAULTED: thresholds are per-occurrence (merged id-rows), so
        // this is the one O(N) loop — two array reads and a compare each.
        let urows = pop.urows();
        let rows = pop.rows();
        let thresholds = pop.thresholds_slice();
        let mut defaulted = 0usize;
        for (&u, &row) in urows.iter().zip(rows) {
            defaulted += defaults(score[u as usize], thresholds[row as usize]) as usize;
        }

        PolicyOutcome {
            total_violations: total,
            violated,
            defaulted,
            population: pop.len(),
        }
    }
}
