//! The violation predicate (paper §5, Definition 1).
//!
//! Provider `i`'s privacy is violated iff there is a preference tuple and a
//! *comparable* house-policy tuple (same attribute, same purpose) where the
//! policy exceeds the preference on visibility, granularity, or retention.
//! Purposes the provider never mentioned are treated as if the provider had
//! stated `⟨pr, 0, 0, 0⟩` — reveal nothing — so a policy that uses data for
//! an unconsented purpose always violates.

use serde::{Deserialize, Serialize};

use qpv_policy::{HousePolicy, ProviderPreferences};
use qpv_taxonomy::{AttrName, PrivacyPoint, Purpose, PurposeLattice, ViolationGeometry};

/// One comparable preference/policy pair where the policy escapes the
/// preference box — evidence for `w_i = 1`.
///
/// The attribute and purpose are shared `Arc<str>` handles ([`AttrName`],
/// [`Purpose`]): the compiled path resolves them from its `SymbolTable`
/// per violation without copying, and serialization renders them as plain
/// JSON strings — byte-identical to the `String` representation they
/// replaced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolationWitness {
    /// The attribute involved.
    pub attribute: AttrName,
    /// The shared purpose.
    pub purpose: Purpose,
    /// The provider's effective preference point (the implicit `⟨0,0,0⟩`
    /// when the purpose was never stated).
    pub preference: PrivacyPoint,
    /// Whether the preference was implicit (Definition 1's added tuple).
    pub implicit_preference: bool,
    /// The policy point.
    pub policy: PrivacyPoint,
    /// Per-dimension exceedance.
    pub geometry: ViolationGeometry,
}

/// Iterate every comparable `(preference, policy)` pair for the attributes
/// the provider supplies data for, materialising implicit deny-all
/// preferences per Definition 1.
///
/// `attributes` is the set of attributes provider `i` has data stored for —
/// under the paper's Assumption 5 (one row per provider) this is simply the
/// data table's attribute list. Policy tuples for attributes the provider
/// does not supply are not comparable to anything and are skipped.
pub fn comparable_pairs<'a>(
    prefs: &'a ProviderPreferences,
    policy: &'a HousePolicy,
    attributes: &'a [&'a str],
) -> impl Iterator<Item = ViolationWitnessCandidate<'a>> + 'a {
    policy
        .tuples()
        .iter()
        .filter(move |pt| attributes.contains(&pt.attribute.as_str()))
        .map(move |pt| {
            let stated = prefs.has_stated(&pt.attribute, &pt.tuple.purpose);
            let preference = prefs.effective_point(&pt.attribute, &pt.tuple.purpose);
            ViolationWitnessCandidate {
                attribute: &pt.attribute,
                purpose: &pt.tuple.purpose,
                preference,
                implicit_preference: !stated,
                policy: pt.tuple.point,
            }
        })
}

/// A comparable pair before the exceedance test.
#[derive(Debug, Clone)]
pub struct ViolationWitnessCandidate<'a> {
    /// The attribute shared by both tuples.
    pub attribute: &'a str,
    /// The purpose shared by both tuples.
    pub purpose: &'a Purpose,
    /// The provider's effective preference point.
    pub preference: PrivacyPoint,
    /// Whether the preference was implicit.
    pub implicit_preference: bool,
    /// The policy point.
    pub policy: PrivacyPoint,
}

/// Definition 1: `w_i`. `true` iff any comparable pair has the policy
/// exceeding the preference on some ordered dimension.
pub fn is_violated(prefs: &ProviderPreferences, policy: &HousePolicy, attributes: &[&str]) -> bool {
    comparable_pairs(prefs, policy, attributes)
        .any(|c| ViolationGeometry::compare(&c.preference, &c.policy).is_violation())
}

/// All violation witnesses for a provider (empty ⇔ `w_i = 0`).
pub fn witnesses(
    prefs: &ProviderPreferences,
    policy: &HousePolicy,
    attributes: &[&str],
) -> Vec<ViolationWitness> {
    comparable_pairs(prefs, policy, attributes)
        .filter_map(|c| {
            let geometry = ViolationGeometry::compare(&c.preference, &c.policy);
            geometry.is_violation().then(|| ViolationWitness {
                attribute: AttrName::from(c.attribute),
                purpose: c.purpose.clone(),
                preference: c.preference,
                implicit_preference: c.implicit_preference,
                policy: c.policy,
                geometry,
            })
        })
        .collect()
}

/// The provider's effective preference point for `(attribute, purpose)`
/// under *lattice* purpose semantics (the §3 extension the paper points at):
/// a stated consent for purpose `p` also covers any policy purpose `q ⊑ p`
/// — using data for a *narrower* purpose than consented is within consent.
///
/// When several stated purposes cover `q`, the componentwise join of their
/// points applies (the provider separately consented to each exposure, so
/// the house may use the most permissive stated bound per dimension).
/// Returns the point and whether it was implicit (no stated purpose covers
/// `q`, falling back to Definition 1's deny-all).
pub fn effective_point_lattice(
    prefs: &ProviderPreferences,
    attribute: &str,
    policy_purpose: &Purpose,
    lattice: &PurposeLattice,
) -> (PrivacyPoint, bool) {
    let mut covered = false;
    let mut point = PrivacyPoint::ZERO;
    for t in prefs.for_attribute(attribute) {
        if lattice.dominated_by(policy_purpose, &t.purpose) {
            point = point.join(&t.point);
            covered = true;
        }
    }
    (point, !covered)
}

/// [`witnesses`] under lattice purpose semantics. With an empty lattice
/// this degrades exactly to flat matching (distinct purposes incomparable),
/// so the flat model is the special case — the ablation A2 measures what
/// the refinement buys.
pub fn witnesses_lattice(
    prefs: &ProviderPreferences,
    policy: &HousePolicy,
    attributes: &[&str],
    lattice: &PurposeLattice,
) -> Vec<ViolationWitness> {
    policy
        .tuples()
        .iter()
        .filter(|pt| attributes.contains(&pt.attribute.as_str()))
        .filter_map(|pt| {
            let (preference, implicit) =
                effective_point_lattice(prefs, &pt.attribute, &pt.tuple.purpose, lattice);
            let geometry = ViolationGeometry::compare(&preference, &pt.tuple.point);
            geometry.is_violation().then(|| ViolationWitness {
                attribute: AttrName::from(pt.attribute.as_str()),
                purpose: pt.tuple.purpose.clone(),
                preference,
                implicit_preference: implicit,
                policy: pt.tuple.point,
                geometry,
            })
        })
        .collect()
}

/// Definition 1's `w_i` under lattice purpose semantics. Short-circuits on
/// the first violating pair, like the flat [`is_violated`] — no witness
/// vector is materialised.
pub fn is_violated_lattice(
    prefs: &ProviderPreferences,
    policy: &HousePolicy,
    attributes: &[&str],
    lattice: &PurposeLattice,
) -> bool {
    policy
        .tuples()
        .iter()
        .filter(|pt| attributes.contains(&pt.attribute.as_str()))
        .any(|pt| {
            let (preference, _) =
                effective_point_lattice(prefs, &pt.attribute, &pt.tuple.purpose, lattice);
            ViolationGeometry::compare(&preference, &pt.tuple.point).is_violation()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::{Dim, PrivacyTuple};

    fn tuple(purpose: &str, v: u32, g: u32, r: u32) -> PrivacyTuple {
        PrivacyTuple::from_point(purpose, PrivacyPoint::from_raw(v, g, r))
    }

    fn policy() -> HousePolicy {
        HousePolicy::builder("acme")
            .tuple("weight", tuple("billing", 2, 3, 90))
            .tuple("age", tuple("billing", 2, 2, 30))
            .build()
    }

    const ATTRS: &[&str] = &["weight", "age"];

    #[test]
    fn bounded_preferences_are_not_violated() {
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 3, 3, 100))
            .tuple("age", tuple("billing", 2, 2, 30))
            .build();
        assert!(!is_violated(&prefs, &policy(), ATTRS));
        assert!(witnesses(&prefs, &policy(), ATTRS).is_empty());
    }

    #[test]
    fn single_dimension_exceedance_violates() {
        // Policy retention 90 > preference retention 30 on weight.
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 3, 3, 30))
            .tuple("age", tuple("billing", 3, 3, 365))
            .build();
        assert!(is_violated(&prefs, &policy(), ATTRS));
        let w = witnesses(&prefs, &policy(), ATTRS);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].attribute, "weight");
        assert_eq!(w[0].geometry.along(Dim::Retention), 60);
        assert_eq!(w[0].geometry.along(Dim::Visibility), 0);
        assert!(!w[0].implicit_preference);
    }

    #[test]
    fn unstated_purpose_is_an_implicit_deny_all() {
        // Provider consents to billing generously but never mentions "ads".
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 9, 9, 999))
            .tuple("age", tuple("billing", 9, 9, 999))
            .build();
        let hp = policy().with_new_purpose("ads", PrivacyPoint::from_raw(1, 1, 1));
        assert!(is_violated(&prefs, &hp, ATTRS));
        let w = witnesses(&prefs, &hp, ATTRS);
        assert_eq!(w.len(), 2); // one per attribute
        assert!(w.iter().all(|x| x.implicit_preference));
        assert!(w.iter().all(|x| x.preference == PrivacyPoint::ZERO));
    }

    #[test]
    fn policy_attributes_the_provider_does_not_supply_are_skipped() {
        let prefs = ProviderPreferences::new(ProviderId(1));
        // Provider supplies nothing: no comparable pairs, no violation —
        // you cannot violate the privacy of data that was never provided.
        assert!(!is_violated(&prefs, &policy(), &[]));
        // Supplies only age, bounded by... nothing stated ⇒ implicit zero ⇒
        // the age policy (2,2,30) violates.
        assert!(is_violated(&prefs, &policy(), &["age"]));
        let w = witnesses(&prefs, &policy(), &["age"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].attribute, "age");
    }

    #[test]
    fn narrower_policy_never_violates() {
        // Policy strictly inside the stated preference on every dimension.
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 2, 3, 90))
            .tuple("age", tuple("billing", 2, 2, 30))
            .build();
        // Equal points: bounded, not violated (Definition 1 is strict).
        assert!(!is_violated(&prefs, &policy(), ATTRS));
    }

    #[test]
    fn lattice_matching_covers_narrower_purposes() {
        // Provider consents to the broad purpose "operations"; the policy
        // uses the narrower "billing".
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("billing", "operations").unwrap();
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("operations", 3, 3, 100))
            .build();
        let hp = HousePolicy::builder("h")
            .tuple("weight", tuple("billing", 2, 2, 50))
            .build();
        // Flat matching: "billing" unstated ⇒ implicit deny-all ⇒ violated.
        assert!(is_violated(&prefs, &hp, &["weight"]));
        // Lattice matching: the operations consent covers billing.
        assert!(!is_violated_lattice(&prefs, &hp, &["weight"], &lattice));
        // But exceeding the stated bound still violates under the lattice.
        let hp_wide = HousePolicy::builder("h")
            .tuple("weight", tuple("billing", 4, 2, 50))
            .build();
        let w = witnesses_lattice(&prefs, &hp_wide, &["weight"], &lattice);
        assert_eq!(w.len(), 1);
        assert!(!w[0].implicit_preference);
    }

    #[test]
    fn empty_lattice_equals_flat_matching() {
        let lattice = PurposeLattice::new();
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 9, 9, 999))
            .build();
        let hp = policy().with_new_purpose("ads", PrivacyPoint::from_raw(1, 1, 1));
        let flat = witnesses(&prefs, &hp, ATTRS);
        let lat = witnesses_lattice(&prefs, &hp, ATTRS, &lattice);
        assert_eq!(flat, lat);
    }

    #[test]
    fn lattice_join_of_multiple_covering_consents() {
        // Two stated purposes both cover "billing": join applies.
        let mut lattice = PurposeLattice::new();
        lattice.add_edge("billing", "operations").unwrap();
        lattice.add_edge("billing", "finance").unwrap();
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("operations", 3, 1, 10))
            .tuple("weight", tuple("finance", 1, 3, 5))
            .build();
        let (point, implicit) =
            effective_point_lattice(&prefs, "weight", &Purpose::new("billing"), &lattice);
        assert!(!implicit);
        assert_eq!(point, PrivacyPoint::from_raw(3, 3, 10));
    }

    #[test]
    fn multiple_policy_tuples_per_attribute_all_checked() {
        let hp = HousePolicy::builder("acme")
            .tuple("weight", tuple("billing", 1, 1, 1))
            .tuple("weight", tuple("research", 1, 4, 1))
            .build();
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", tuple("billing", 2, 2, 2))
            .tuple("weight", tuple("research", 2, 2, 2))
            .build();
        let w = witnesses(&prefs, &hp, &["weight"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].purpose, Purpose::new("research"));
        assert_eq!(w[0].geometry.along(Dim::Granularity), 2);
    }
}
