//! The sensitivity model `⟨σ, Σ⟩` (paper §6.1, Equations 10–11).
//!
//! Severity weights come in three layers, all positive integers:
//!
//! * `Σ^a` — how sensitive attribute `a` is socially (health and financial
//!   data rank highest per the Westin/Kobsa findings the paper cites);
//! * `s^a_i` — how sensitive provider `i` considers *their own* value of
//!   `a` (a weight of 310 kg is more sensitive than one of 70 kg);
//! * `s^a_i[dim]` — how much provider `i` cares about violations along each
//!   ordered dimension of `a` (Ted's granularity sensitivity of 5 is what
//!   pushes him over his default threshold in the worked example).
//!
//! Every lookup defaults to `1` (neutral weight), so a sparse model is
//! usable immediately and Equation 14 degrades to raw order-distance.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::ProviderId;
use qpv_taxonomy::Dim;

/// Per-attribute social sensitivity `Σ` (Equation 10's second component).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSensitivities {
    weights: HashMap<String, u32>,
}

impl AttributeSensitivities {
    /// All attributes at the neutral weight 1.
    pub fn new() -> AttributeSensitivities {
        AttributeSensitivities::default()
    }

    /// Set `Σ^a` for an attribute.
    pub fn set(&mut self, attribute: impl Into<String>, weight: u32) -> &mut Self {
        self.weights.insert(attribute.into(), weight);
        self
    }

    /// `Σ^a`, defaulting to 1.
    pub fn get(&self, attribute: &str) -> u32 {
        self.weights.get(attribute).copied().unwrap_or(1)
    }

    /// Attributes with explicit weights.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, u32)> {
        self.weights.iter().map(|(a, w)| (a.as_str(), *w))
    }
}

/// One provider's sensitivity for one attribute:
/// `σ^j_i = ⟨s^j_i, s^j_i[V], s^j_i[G], s^j_i[R]⟩` (Equation 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatumSensitivity {
    /// Sensitivity of the data value itself (`s^j_i`).
    pub value: u32,
    /// Sensitivity to visibility violations (`s^j_i[V]`).
    pub visibility: u32,
    /// Sensitivity to granularity violations (`s^j_i[G]`).
    pub granularity: u32,
    /// Sensitivity to retention violations (`s^j_i[R]`).
    pub retention: u32,
}

impl Default for DatumSensitivity {
    fn default() -> DatumSensitivity {
        DatumSensitivity::neutral()
    }
}

impl DatumSensitivity {
    /// All weights 1.
    pub const fn neutral() -> DatumSensitivity {
        DatumSensitivity {
            value: 1,
            visibility: 1,
            granularity: 1,
            retention: 1,
        }
    }

    /// Construct from `⟨value, vis, gran, ret⟩` — the paper's tuple order
    /// (Table 1 writes e.g. Ted's σ as `⟨3, 1, 5, 2⟩`).
    pub const fn new(value: u32, visibility: u32, granularity: u32, retention: u32) -> Self {
        DatumSensitivity {
            value,
            visibility,
            granularity,
            retention,
        }
    }

    /// The per-dimension weight `s[dim]`.
    pub fn along(&self, dim: Dim) -> u32 {
        match dim {
            Dim::Visibility => self.visibility,
            Dim::Granularity => self.granularity,
            Dim::Retention => self.retention,
        }
    }
}

/// The full sensitivity model `Sensitivity = ⟨σ, Σ⟩` (Equation 10).
///
/// The paper notes sensitivities are "tied to a specific purpose"; this
/// model supports that with optional per-purpose overrides of the attribute
/// weights, while the common case (the worked example included) uses one
/// global set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SensitivityModel {
    /// `Σ`: attribute weights.
    pub attributes: AttributeSensitivities,
    /// `σ`: per-provider, per-attribute datum sensitivities.
    providers: HashMap<ProviderId, HashMap<String, DatumSensitivity>>,
    /// Per-purpose overrides of `Σ` (purpose name → weights).
    purpose_overrides: HashMap<String, AttributeSensitivities>,
}

impl SensitivityModel {
    /// A neutral model (all weights 1).
    pub fn new() -> SensitivityModel {
        SensitivityModel::default()
    }

    /// A model carrying only the house-side attribute weights `Σ` — no
    /// per-provider datums, no purpose overrides. `attribute_weight` on
    /// this model answers exactly what [`crate::profile::assemble`]'s
    /// output would (assembly never sets overrides), which is all plan
    /// compilation reads; per-provider datums resolve separately.
    pub fn from_attribute_weights(weights: &AttributeSensitivities) -> SensitivityModel {
        SensitivityModel {
            attributes: weights.clone(),
            ..SensitivityModel::default()
        }
    }

    /// Set the social weight `Σ^a`.
    pub fn set_attribute(&mut self, attribute: impl Into<String>, weight: u32) -> &mut Self {
        self.attributes.set(attribute, weight);
        self
    }

    /// Set provider `i`'s sensitivity tuple for an attribute.
    pub fn set_datum(
        &mut self,
        provider: ProviderId,
        attribute: impl Into<String>,
        sens: DatumSensitivity,
    ) -> &mut Self {
        self.providers
            .entry(provider)
            .or_default()
            .insert(attribute.into(), sens);
        self
    }

    /// Override `Σ` for a specific purpose.
    pub fn set_purpose_override(
        &mut self,
        purpose: impl Into<String>,
        attribute: impl Into<String>,
        weight: u32,
    ) -> &mut Self {
        self.purpose_overrides
            .entry(purpose.into())
            .or_default()
            .set(attribute, weight);
        self
    }

    /// `Σ^a`, honouring a per-purpose override when present.
    pub fn attribute_weight(&self, attribute: &str, purpose: &str) -> u32 {
        if let Some(over) = self.purpose_overrides.get(purpose) {
            if over.weights_contains(attribute) {
                return over.get(attribute);
            }
        }
        self.attributes.get(attribute)
    }

    /// `σ^a_i`, defaulting to the neutral tuple.
    pub fn datum(&self, provider: ProviderId, attribute: &str) -> DatumSensitivity {
        self.providers
            .get(&provider)
            .and_then(|m| m.get(attribute))
            .copied()
            .unwrap_or_default()
    }

    /// The full datum-sensitivity map for a provider, if any were set.
    /// Lets batch consumers (the compiled audit plan) resolve the provider
    /// once and probe per-attribute, instead of hashing the provider id
    /// again for every attribute.
    pub fn provider_datums(
        &self,
        provider: ProviderId,
    ) -> Option<&HashMap<String, DatumSensitivity>> {
        self.providers.get(&provider)
    }

    /// All explicitly-set datum sensitivities for a provider.
    pub fn datum_entries(
        &self,
        provider: ProviderId,
    ) -> impl Iterator<Item = (&str, DatumSensitivity)> {
        self.providers
            .get(&provider)
            .into_iter()
            .flat_map(|m| m.iter().map(|(a, s)| (a.as_str(), *s)))
    }
}

impl AttributeSensitivities {
    fn weights_contains(&self, attribute: &str) -> bool {
        self.weights.contains_key(attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_neutral() {
        let m = SensitivityModel::new();
        assert_eq!(m.attribute_weight("weight", "billing"), 1);
        assert_eq!(
            m.datum(ProviderId(1), "weight"),
            DatumSensitivity::neutral()
        );
    }

    #[test]
    fn attribute_weights_apply() {
        let mut m = SensitivityModel::new();
        m.set_attribute("weight", 4);
        assert_eq!(m.attribute_weight("weight", "any"), 4);
        assert_eq!(m.attribute_weight("age", "any"), 1);
    }

    #[test]
    fn datum_sensitivities_are_per_provider() {
        let mut m = SensitivityModel::new();
        m.set_datum(ProviderId(1), "weight", DatumSensitivity::new(3, 1, 5, 2));
        let ted = m.datum(ProviderId(1), "weight");
        assert_eq!(ted.value, 3);
        assert_eq!(ted.along(Dim::Granularity), 5);
        assert_eq!(ted.along(Dim::Visibility), 1);
        assert_eq!(ted.along(Dim::Retention), 2);
        // Another provider stays neutral.
        assert_eq!(
            m.datum(ProviderId(2), "weight"),
            DatumSensitivity::neutral()
        );
    }

    #[test]
    fn purpose_overrides_take_precedence() {
        let mut m = SensitivityModel::new();
        m.set_attribute("weight", 4);
        m.set_purpose_override("research", "weight", 2);
        assert_eq!(m.attribute_weight("weight", "billing"), 4);
        assert_eq!(m.attribute_weight("weight", "research"), 2);
        // Override table present but attribute missing → fall through.
        assert_eq!(m.attribute_weight("age", "research"), 1);
    }

    #[test]
    fn datum_entries_lists_explicit_settings() {
        let mut m = SensitivityModel::new();
        m.set_datum(ProviderId(9), "a", DatumSensitivity::new(2, 1, 1, 1));
        m.set_datum(ProviderId(9), "b", DatumSensitivity::new(3, 1, 1, 1));
        let mut entries: Vec<_> = m.datum_entries(ProviderId(9)).collect();
        entries.sort_by_key(|(a, _)| a.to_string());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.value, 2);
        assert_eq!(m.datum_entries(ProviderId(10)).count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = SensitivityModel::new();
        m.set_attribute("weight", 4)
            .set_datum(ProviderId(1), "weight", DatumSensitivity::new(3, 1, 5, 2))
            .set_purpose_override("ads", "weight", 9);
        let json = serde_json::to_string(&m).unwrap();
        let back: SensitivityModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
