//! Provider default (paper §7, Definition 4).
//!
//! A provider leaves the system — *defaults* — when their accumulated
//! violation severity exceeds their personal tolerance:
//! `default_i = 1 ⟺ Violation_i > v_i` (strict, matching Equations 21–23:
//! Ted defaults at `60 > 50`, Bob stays at `80 < 100`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qpv_policy::ProviderId;

/// Definition 4 for one provider.
pub fn defaults(violation_score: u64, threshold: u64) -> bool {
    violation_score > threshold
}

/// Per-provider default thresholds `v_i`, with a fallback for providers
/// without an explicit value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefaultThresholds {
    thresholds: HashMap<ProviderId, u64>,
    fallback: u64,
}

impl DefaultThresholds {
    /// All providers share `fallback` until set individually.
    pub fn with_fallback(fallback: u64) -> DefaultThresholds {
        DefaultThresholds {
            thresholds: HashMap::new(),
            fallback,
        }
    }

    /// Set `v_i` for one provider.
    pub fn set(&mut self, provider: ProviderId, threshold: u64) -> &mut Self {
        self.thresholds.insert(provider, threshold);
        self
    }

    /// `v_i`, or the fallback.
    pub fn get(&self, provider: ProviderId) -> u64 {
        self.thresholds
            .get(&provider)
            .copied()
            .unwrap_or(self.fallback)
    }

    /// Whether a provider with the given violation score defaults.
    pub fn is_default(&self, provider: ProviderId, violation_score: u64) -> bool {
        defaults(violation_score, self.get(provider))
    }

    /// Providers with explicit thresholds.
    pub fn explicit(&self) -> impl Iterator<Item = (ProviderId, u64)> + '_ {
        self.thresholds.iter().map(|(p, t)| (*p, *t))
    }
}

impl Default for DefaultThresholds {
    /// Fallback threshold 0: any positive violation causes default — the
    /// most privacy-sensitive posture, which is the conservative default
    /// for the same reason unstated preferences deny everything.
    fn default() -> DefaultThresholds {
        DefaultThresholds::with_fallback(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_inequality_per_equations_21_to_23() {
        assert!(!defaults(0, 10)); // Alice: 0 < 10
        assert!(defaults(60, 50)); // Ted: 60 > 50
        assert!(!defaults(80, 100)); // Bob: 80 < 100
        assert!(!defaults(50, 50)); // boundary: equal is not a default
    }

    #[test]
    fn thresholds_with_fallback() {
        let mut t = DefaultThresholds::with_fallback(25);
        t.set(ProviderId(1), 50);
        assert_eq!(t.get(ProviderId(1)), 50);
        assert_eq!(t.get(ProviderId(2)), 25);
        assert!(t.is_default(ProviderId(2), 26));
        assert!(!t.is_default(ProviderId(1), 26));
        assert_eq!(t.explicit().count(), 1);
    }

    #[test]
    fn default_fallback_is_zero_tolerance() {
        let t = DefaultThresholds::default();
        assert!(t.is_default(ProviderId(7), 1));
        assert!(!t.is_default(ProviderId(7), 0));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = DefaultThresholds::with_fallback(10);
        t.set(ProviderId(3), 99);
        let json = serde_json::to_string(&t).unwrap();
        let back: DefaultThresholds = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
