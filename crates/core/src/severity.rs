//! Severity of violations (paper §6.2, Equations 12–16).
//!
//! The binary predicate of Definition 1 says *whether* privacy was violated;
//! the severity machinery says *how badly*:
//!
//! * `diff(p, P)` (Eq. 12) — raw order distance, implemented as
//!   [`qpv_taxonomy::PrivacyPoint::exceedance`];
//! * `comp` (Eq. 13) — the same-attribute, same-purpose comparability gate;
//! * `conf` (Eq. 14) — the sensitivity-weighted sum
//!   `comp × Σ_dim diff(p[dim], P[dim]) · Σ^a · s^a_i · s^a_i[dim]`;
//! * `Violation_i` (Eq. 15) — `Σ conf` over all comparable pairs, combining
//!   the paper's *breadth* (many attributes) and *depth* (one large
//!   exceedance) aspects;
//! * `Violations` (Eq. 16) — `Σ_i Violation_i` across providers.
//!
//! All arithmetic is in `u64`/`u128` with saturation: a severity score is a
//! ranking device, and saturating at the top of the scale is strictly better
//! than wrapping to a tiny value.

use qpv_policy::{HousePolicy, ProviderPreferences};
use qpv_taxonomy::{PrivacyPoint, Purpose};

use crate::sensitivity::SensitivityModel;
use crate::violation::comparable_pairs;

/// Equation 14's `conf` for one comparable pair, given the provider's
/// sensitivity context.
///
/// The caller guarantees comparability (same attribute and purpose); the
/// `comp` gate of Equation 13 therefore reduces to "the caller matched the
/// tuples up", which is what [`comparable_pairs`] does.
pub fn conf(
    preference: &PrivacyPoint,
    policy: &PrivacyPoint,
    attribute_weight: u32,
    datum: crate::sensitivity::DatumSensitivity,
) -> u64 {
    let mut total: u64 = 0;
    for (dim, diff) in preference.exceedance(policy) {
        if diff == 0 {
            continue;
        }
        let term = (diff as u64)
            .saturating_mul(attribute_weight as u64)
            .saturating_mul(datum.value as u64)
            .saturating_mul(datum.along(dim) as u64);
        total = total.saturating_add(term);
    }
    total
}

/// Equation 15: `Violation_i` — the total severity of all conflicts between
/// provider `i`'s preferences and the house policy, over the attributes the
/// provider supplies.
pub fn violation_score(
    prefs: &ProviderPreferences,
    policy: &HousePolicy,
    attributes: &[&str],
    sensitivity: &SensitivityModel,
) -> u64 {
    comparable_pairs(prefs, policy, attributes)
        .map(|c| {
            let weight = sensitivity.attribute_weight(c.attribute, c.purpose.name());
            let datum = sensitivity.datum(prefs.provider, c.attribute);
            conf(&c.preference, &c.policy, weight, datum)
        })
        .fold(0u64, u64::saturating_add)
}

/// Equation 15 restricted to one `(attribute, purpose)` policy tuple — the
/// building block of the incremental auditor, which adds and removes
/// per-tuple contributions as the policy changes.
pub fn tuple_contribution(
    prefs: &ProviderPreferences,
    attribute: &str,
    purpose: &Purpose,
    policy_point: &PrivacyPoint,
    sensitivity: &SensitivityModel,
) -> u64 {
    let preference = prefs.effective_point(attribute, purpose);
    let weight = sensitivity.attribute_weight(attribute, purpose.name());
    let datum = sensitivity.datum(prefs.provider, attribute);
    conf(&preference, policy_point, weight, datum)
}

/// [`violation_score`] under lattice purpose semantics: each policy tuple
/// is scored against the provider's lattice-effective preference point
/// (see [`crate::violation::effective_point_lattice`]).
pub fn violation_score_lattice(
    prefs: &ProviderPreferences,
    policy: &HousePolicy,
    attributes: &[&str],
    sensitivity: &SensitivityModel,
    lattice: &qpv_taxonomy::PurposeLattice,
) -> u64 {
    policy
        .tuples()
        .iter()
        .filter(|pt| attributes.contains(&pt.attribute.as_str()))
        .map(|pt| {
            let (preference, _) = crate::violation::effective_point_lattice(
                prefs,
                &pt.attribute,
                &pt.tuple.purpose,
                lattice,
            );
            let weight = sensitivity.attribute_weight(&pt.attribute, pt.tuple.purpose.name());
            let datum = sensitivity.datum(prefs.provider, &pt.attribute);
            conf(&preference, &pt.tuple.point, weight, datum)
        })
        .fold(0u64, u64::saturating_add)
}

/// Equation 16: `Violations = Σ_i Violation_i`.
pub fn total_violations<'a>(
    providers: impl IntoIterator<Item = &'a ProviderPreferences>,
    policy: &HousePolicy,
    attributes: &[&str],
    sensitivity: &SensitivityModel,
) -> u128 {
    providers
        .into_iter()
        .map(|p| violation_score(p, policy, attributes, sensitivity) as u128)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::DatumSensitivity;
    use qpv_policy::ProviderId;
    use qpv_taxonomy::PrivacyTuple;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    #[test]
    fn conf_weights_each_dimension_independently() {
        // pref (2,2,2), policy (4,1,5): diffs (2,0,3).
        let datum = DatumSensitivity::new(2, 3, 5, 7);
        let score = conf(&pt(2, 2, 2), &pt(4, 1, 5), 10, datum);
        // vis: 2 * 10 * 2 * 3 = 120; ret: 3 * 10 * 2 * 7 = 420.
        assert_eq!(score, 540);
    }

    #[test]
    fn conf_is_zero_without_exceedance() {
        let datum = DatumSensitivity::new(100, 100, 100, 100);
        assert_eq!(conf(&pt(5, 5, 5), &pt(5, 5, 5), 100, datum), 0);
        assert_eq!(conf(&pt(5, 5, 5), &pt(1, 1, 1), 100, datum), 0);
    }

    #[test]
    fn conf_saturates_instead_of_overflowing() {
        let datum = DatumSensitivity::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX);
        let score = conf(
            &pt(0, 0, 0),
            &pt(u32::MAX, u32::MAX, u32::MAX),
            u32::MAX,
            datum,
        );
        assert_eq!(score, u64::MAX);
    }

    /// The paper's worked example (§8, Table 1 and Equations 19–24),
    /// reproduced verbatim: Σ_weight = 4, policy ⟨pr, v, g, r⟩, and the
    /// three providers' preferences expressed relative to (v, g, r).
    mod worked_example {
        use super::*;

        const V: u32 = 5;
        const G: u32 = 5;
        const R: u32 = 5;

        fn policy() -> HousePolicy {
            HousePolicy::builder("house")
                .tuple("weight", PrivacyTuple::from_point("pr", pt(V, G, R)))
                .build()
        }

        fn sensitivity() -> SensitivityModel {
            let mut m = SensitivityModel::new();
            m.set_attribute("weight", 4);
            m.set_datum(ProviderId(0), "weight", DatumSensitivity::new(1, 1, 2, 1)); // Alice
            m.set_datum(ProviderId(1), "weight", DatumSensitivity::new(3, 1, 5, 2)); // Ted
            m.set_datum(ProviderId(2), "weight", DatumSensitivity::new(4, 1, 3, 2)); // Bob
            m
        }

        fn alice() -> ProviderPreferences {
            ProviderPreferences::builder(ProviderId(0))
                .tuple(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(V + 2, G + 1, R + 3)),
                )
                .build()
        }

        fn ted() -> ProviderPreferences {
            ProviderPreferences::builder(ProviderId(1))
                .tuple(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(V + 2, G - 1, R + 2)),
                )
                .build()
        }

        fn bob() -> ProviderPreferences {
            ProviderPreferences::builder(ProviderId(2))
                .tuple(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(V, G - 1, R - 1)),
                )
                .build()
        }

        #[test]
        fn equation_20_conf_values() {
            let s = sensitivity();
            let hp = policy();
            assert_eq!(violation_score(&alice(), &hp, &["weight"], &s), 0);
            assert_eq!(violation_score(&ted(), &hp, &["weight"], &s), 60); // 1·4·3·5
            assert_eq!(violation_score(&bob(), &hp, &["weight"], &s), 80); // 1·4·4·3 + 1·4·4·2
        }

        #[test]
        fn table_1_w_i_flags() {
            let hp = policy();
            assert!(!crate::violation::is_violated(&alice(), &hp, &["weight"]));
            assert!(crate::violation::is_violated(&ted(), &hp, &["weight"]));
            assert!(crate::violation::is_violated(&bob(), &hp, &["weight"]));
        }

        #[test]
        fn equation_16_total() {
            let s = sensitivity();
            let hp = policy();
            let all = [alice(), ted(), bob()];
            assert_eq!(total_violations(all.iter(), &hp, &["weight"], &s), 140);
        }
    }

    #[test]
    fn tuple_contribution_matches_full_score_for_single_tuple_policy() {
        let mut s = SensitivityModel::new();
        s.set_attribute("weight", 4);
        s.set_datum(ProviderId(1), "weight", DatumSensitivity::new(3, 1, 5, 2));
        let prefs = ProviderPreferences::builder(ProviderId(1))
            .tuple("weight", PrivacyTuple::from_point("pr", pt(7, 4, 7)))
            .build();
        let hp = HousePolicy::builder("h")
            .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
            .build();
        let full = violation_score(&prefs, &hp, &["weight"], &s);
        let single = tuple_contribution(&prefs, "weight", &Purpose::new("pr"), &pt(5, 5, 5), &s);
        assert_eq!(full, single);
        assert_eq!(full, 60);
    }

    #[test]
    fn breadth_and_depth_both_accumulate() {
        // Breadth: small violations on many attributes.
        let mut s = SensitivityModel::new();
        for a in ["a", "b", "c"] {
            s.set_attribute(a, 1);
        }
        let prefs_broad = ProviderPreferences::builder(ProviderId(1))
            .tuple("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .tuple("c", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .build();
        let hp_broad = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(2, 1, 1)))
            .tuple("b", PrivacyTuple::from_point("pr", pt(2, 1, 1)))
            .tuple("c", PrivacyTuple::from_point("pr", pt(2, 1, 1)))
            .build();
        let broad = violation_score(&prefs_broad, &hp_broad, &["a", "b", "c"], &s);
        // Depth: one large violation on a single attribute.
        let prefs_deep = ProviderPreferences::builder(ProviderId(1))
            .tuple("a", PrivacyTuple::from_point("pr", pt(1, 1, 1)))
            .build();
        let hp_deep = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(4, 1, 1)))
            .build();
        let deep = violation_score(&prefs_deep, &hp_deep, &["a"], &s);
        assert_eq!(broad, 3);
        assert_eq!(deep, 3);
    }

    #[test]
    fn total_violations_uses_wide_arithmetic() {
        let s = SensitivityModel::new();
        let hp = HousePolicy::builder("h")
            .tuple("a", PrivacyTuple::from_point("pr", pt(9, 9, 9)))
            .build();
        let providers: Vec<ProviderPreferences> = (0..100)
            .map(|i| ProviderPreferences::new(ProviderId(i)))
            .collect();
        let total = total_violations(providers.iter(), &hp, &["a"], &s);
        assert_eq!(total, 100 * 27);
    }
}
