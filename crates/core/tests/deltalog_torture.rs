//! Crash-torture suite for the delta log: crash at *every* delta-log I/O
//! op index and prove recovery, mirroring `qpv-reldb`'s `torture.rs`
//! methodology.
//!
//! 1. Build the model: `model[d]` = the profile population after `d`
//!    deltas, computed through [`PopulationDelta::apply_to_profiles`]
//!    (the pinned delta oracle).
//! 2. Dry-run the scripted workload — create, appends, group commits of
//!    varying batch sizes, two snapshot rotations — under a
//!    never-faulting injector to count the total delta-log I/O ops `N`.
//! 3. For every op index `i < N`, run the workload in a fresh directory
//!    under a plan that crash-stops (even `i`) or tears (odd `i`, seeded
//!    by `i`) at op `i`, then recover and assert:
//!
//!    * **committed-prefix durability** — auditing the recovered
//!      population is byte-identical (serialized JSON) to a fresh
//!      compile + audit of `model[d]` for some `d` between the deltas
//!      acknowledged durable (synced `Ok`) and the deltas appended when
//!      the crash hit: a torn group commit may persist any frame prefix
//!      of the batch, but never a partial frame and never reordered
//!      frames;
//!    * **idempotent recovery** — a second recover observes the identical
//!      population and generation, because recovery writes nothing;
//!    * **no panics** — torn tails and lost batches surface as shorter
//!      prefixes or `Err`, never a panic.
//!
//!    A crash inside the initial [`DeltaLog::create`] (before `CURRENT`
//!    is first published) must leave the directory recoverable by
//!    re-running `create` — and [`DeltaLog::recover`] must refuse it
//!    with an error, not invent an empty population.

use std::path::{Path, PathBuf};

use qpv_core::deltalog::DeltaLog;
use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{AuditEngine, CompiledPopulation, PopulationDelta, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::fault::{FaultInjector, FaultKind, FaultPlan};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

fn profile_for(id: u64, x: u64) -> ProviderProfile {
    let mut p = ProviderProfile::new(ProviderId(id), 10 + (x % 90));
    p.preferences.add(
        "weight",
        PrivacyTuple::from_point("pr", pt(1 + (x % 5) as u32, 2, 20 + (x % 30) as u32)),
    );
    if !x.is_multiple_of(3) {
        p.preferences.add(
            "age",
            PrivacyTuple::from_point("research", pt(2 + (x % 3) as u32, 1, 45)),
        );
    }
    p.sensitivities.insert(
        "weight".into(),
        DatumSensitivity::new(1 + (x % 6) as u32, 1, 1 + (x % 3) as u32, 2),
    );
    p
}

fn initial() -> Vec<ProviderProfile> {
    (0..8).map(|i| profile_for(i, 7 * i + 3)).collect()
}

/// The delta stream: every op kind, including unknown-id ops that count
/// into `DeltaOutcome::skipped` and bind to nothing.
fn deltas() -> Vec<PopulationDelta> {
    vec![
        PopulationDelta::new().upsert(profile_for(100, 11)),
        PopulationDelta::new().set_threshold(ProviderId(0), 5),
        PopulationDelta::new().remove(ProviderId(3)),
        PopulationDelta::new().set_attribute_prefs(
            ProviderId(1),
            "weight",
            vec![PrivacyTuple::from_point("pr", pt(1, 1, 5))],
        ),
        PopulationDelta::new().set_sensitivity(
            ProviderId(2),
            "weight",
            DatumSensitivity::new(6, 3, 3, 3),
        ),
        // Unknown ids: counted skips, no state change.
        PopulationDelta::new()
            .remove(ProviderId(999))
            .set_threshold(ProviderId(998), 1),
        PopulationDelta::new().upsert(profile_for(101, 23)),
        PopulationDelta::new()
            .upsert(profile_for(4, 51))
            .remove(ProviderId(5)),
        PopulationDelta::new().set_threshold(ProviderId(100), 200),
        PopulationDelta::new().set_attribute_prefs(ProviderId(6), "age", vec![]),
        PopulationDelta::new().upsert(profile_for(102, 37)),
        PopulationDelta::new().remove(ProviderId(0)),
    ]
}

/// `model[d]` = population after the first `d` deltas, via the oracle.
fn model_states() -> Vec<Vec<ProviderProfile>> {
    let mut profiles = initial();
    let mut states = vec![profiles.clone()];
    for delta in deltas() {
        delta.apply_to_profiles(&mut profiles);
        states.push(profiles.clone());
    }
    states
}

#[derive(Debug, Clone, Copy)]
enum Action {
    /// Frame delta `i` into the pending group-commit batch (no I/O).
    Append(usize),
    /// Group commit everything pending (one fsync, one failpoint).
    Sync,
    /// Rotate: snapshot of the durable population + fresh log + publish.
    /// Only scripted when the batch is drained, so the mirror is exactly
    /// `model[acked]`.
    Snapshot,
}

/// Mixed batch sizes (1, 2, and 3 frames per commit) around two snapshot
/// rotations, so crash points cover mid-batch tears, empty-tail
/// generations, and a tail spanning a rotation.
fn script() -> Vec<Action> {
    use Action::*;
    vec![
        Append(0),
        Sync,
        Append(1),
        Append(2),
        Sync,
        Append(3),
        Append(4),
        Append(5),
        Sync,
        Snapshot,
        Append(6),
        Sync,
        Append(7),
        Append(8),
        Sync,
        Snapshot,
        Append(9),
        Append(10),
        Sync,
        Append(11),
        Sync,
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-dltorture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunResult {
    /// Did `create` publish generation 0? If not, nothing is recoverable.
    created: bool,
    /// Deltas acknowledged durable (their group commit returned `Ok`).
    acked: usize,
    /// Deltas appended to the log when the run stopped — an upper bound
    /// on what a torn commit can have persisted.
    appended: usize,
}

fn run_until_crash(dir: &Path, injector: FaultInjector) -> RunResult {
    let model = model_states();
    let all = deltas();
    let mut log = match DeltaLog::create_with(
        dir,
        &CompiledPopulation::from_profiles(&initial()),
        Some(injector),
    ) {
        Ok(log) => log,
        Err(_) => {
            return RunResult {
                created: false,
                acked: 0,
                appended: 0,
            }
        }
    };
    let mut acked = 0usize;
    let mut appended = 0usize;
    for action in script() {
        let result = match action {
            Action::Append(i) => {
                log.append(&all[i]);
                appended += 1;
                Ok(())
            }
            Action::Sync => log.sync().map(|()| acked = appended),
            Action::Snapshot => {
                assert_eq!(acked, appended, "script bug: snapshot of a dirty batch");
                log.snapshot(&CompiledPopulation::from_profiles(&model[acked]))
            }
        };
        if result.is_err() {
            break;
        }
    }
    RunResult {
        created: true,
        acked,
        appended,
    }
}

fn engine() -> AuditEngine {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    w.set("age", 2);
    let policy = HousePolicy::builder("torture")
        .tuple("weight", PrivacyTuple::from_point("pr", pt(4, 3, 40)))
        .tuple("age", PrivacyTuple::from_point("research", pt(3, 2, 60)))
        .build();
    AuditEngine::new(policy, ["weight", "age"], w)
}

fn report_pop(pop: &CompiledPopulation) -> String {
    serde_json::to_string(&engine().audit_compiled(pop)).unwrap()
}

fn report_json(profiles: &[ProviderProfile]) -> String {
    report_pop(&CompiledPopulation::from_profiles(profiles))
}

#[test]
fn crash_at_every_delta_log_op_recovers_committed_prefix() {
    let model = model_states();

    // Dry run: count the workload's delta-log I/O ops.
    let dry_dir = temp_dir("dry");
    let dry = FaultInjector::new(FaultPlan::none());
    let result = run_until_crash(&dry_dir, dry.clone());
    assert!(result.created);
    assert_eq!(result.acked, deltas().len(), "dry run must not fail");
    let total_ops = dry.ops_seen();
    std::fs::remove_dir_all(&dry_dir).unwrap();
    assert!(
        total_ops >= 15,
        "workload too small: only {total_ops} crash points"
    );
    eprintln!("deltalog torture: enumerating {total_ops} crash points");

    for i in 0..total_ops {
        let kind = if i % 2 == 0 {
            FaultKind::CrashStop
        } else {
            FaultKind::TornWrite
        };
        let dir = temp_dir(&format!("crash-{i}"));
        let injector = FaultInjector::new(FaultPlan::fail_at(i, kind).with_seed(i));
        let result = run_until_crash(&dir, injector);

        if !result.created {
            // Crashed before the first CURRENT publish: recovery must
            // refuse (there is nothing durable to recover), and re-running
            // create must initialise cleanly over the debris.
            assert!(
                DeltaLog::recover(&dir).is_err(),
                "crash at op {i}: recovered a never-published log"
            );
            let _ = DeltaLog::create(&dir, &CompiledPopulation::from_profiles(&initial()))
                .unwrap_or_else(|e| panic!("crash at op {i}: re-create failed: {e}"));
            let (_, rec) = DeltaLog::recover(&dir)
                .unwrap_or_else(|e| panic!("crash at op {i}: recovery after re-create: {e}"));
            assert_eq!(
                report_pop(&rec.population),
                report_json(&model[0]),
                "crash at op {i}: re-created state"
            );
            std::fs::remove_dir_all(&dir).unwrap();
            continue;
        }

        let (_, rec) = DeltaLog::recover(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i} ({kind:?}): recovery failed: {e}"));
        // Committed-prefix durability + audit identity in one check: the
        // recovered population must audit byte-identically to a fresh
        // compile + audit of some model state between the acknowledged
        // prefix and the appended frames — a torn group commit may
        // persist any frame prefix of the batch, but never a torn frame
        // and never reordered frames.
        let recovered_report = report_pop(&rec.population);
        assert!(
            (result.acked..=result.appended).any(|d| recovered_report == report_json(&model[d])),
            "crash at op {i} ({kind:?}): recovered audit matches no model state in {}..={}",
            result.acked,
            result.appended
        );

        // Idempotency: recovery writes nothing, so a second recover lands
        // on the identical state.
        let (_, rec2) = DeltaLog::recover(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i}: second recovery failed: {e}"));
        assert_eq!(
            report_pop(&rec2.population),
            recovered_report,
            "crash at op {i}: recovery is not idempotent"
        );
        assert_eq!(rec2.generation, rec.generation);
        assert_eq!(rec2.deltas_replayed, rec.deltas_replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A flaky medium — periodic transient faults that the caller retries —
/// eventually crash-stopping. Retries shift the op indices the whole run,
/// yet the committed-prefix invariant must still hold at every crash
/// point sampled across the stream.
#[test]
fn transient_retries_then_crash_preserve_the_prefix() {
    let model = model_states();
    let all = deltas();

    /// Retry a fallible step across transient faults, like a caller with
    /// `RetryPolicy::standard()` would. Non-transient errors (the crash)
    /// surface immediately.
    fn with_retries(
        mut f: impl FnMut() -> qpv_reldb::error::DbResult<()>,
    ) -> qpv_reldb::error::DbResult<()> {
        let mut r = f();
        for _ in 0..3 {
            match &r {
                Err(e) if e.is_transient() => r = f(),
                _ => break,
            }
        }
        r
    }

    fn run_flaky(dir: &Path, injector: FaultInjector) -> Option<RunResult> {
        let model = model_states();
        let all = deltas();
        let mut log = None;
        // `create` is idempotent until the first CURRENT publish, so a
        // transient inside it is retried by re-running it whole.
        if with_retries(|| {
            DeltaLog::create_with(
                dir,
                &CompiledPopulation::from_profiles(&initial()),
                Some(injector.clone()),
            )
            .map(|l| log = Some(l))
        })
        .is_err()
        {
            return None;
        }
        let mut log = log.expect("create retried to success");
        let mut acked = 0usize;
        let mut appended = 0usize;
        for action in script() {
            let result = match action {
                Action::Append(i) => {
                    log.append(&all[i]);
                    appended += 1;
                    Ok(())
                }
                Action::Sync => with_retries(|| log.sync()).map(|()| acked = appended),
                Action::Snapshot => {
                    with_retries(|| log.snapshot(&CompiledPopulation::from_profiles(&model[acked])))
                }
            };
            if result.is_err() {
                break;
            }
        }
        Some(RunResult {
            created: true,
            acked,
            appended,
        })
    }

    // Dry run under transients-only to size the retried op stream.
    let dry_dir = temp_dir("flaky-dry");
    let dry = FaultInjector::new(FaultPlan::every_kth(4, FaultKind::Transient));
    let result = run_flaky(&dry_dir, dry.clone()).expect("create must survive transients");
    assert_eq!(result.acked, all.len(), "retries must absorb transients");
    let total_ops = dry.ops_seen();
    std::fs::remove_dir_all(&dry_dir).unwrap();

    for c in [
        total_ops / 4,
        total_ops / 2,
        3 * total_ops / 4,
        total_ops - 1,
    ] {
        let dir = temp_dir(&format!("flaky-{c}"));
        let plan =
            FaultPlan::every_kth(4, FaultKind::Transient).and_fail_at(c, FaultKind::CrashStop);
        let Some(result) = run_flaky(&dir, FaultInjector::new(plan)) else {
            // Crashed inside create: same contract as the main suite.
            assert!(DeltaLog::recover(&dir).is_err());
            std::fs::remove_dir_all(&dir).unwrap();
            continue;
        };
        let (_, rec) = DeltaLog::recover(&dir)
            .unwrap_or_else(|e| panic!("flaky crash at op {c}: recovery failed: {e}"));
        let recovered_report = report_pop(&rec.population);
        assert!(
            (result.acked..=result.appended).any(|d| recovered_report == report_json(&model[d])),
            "flaky crash at op {c}: recovered audit matches no model state in {}..={}",
            result.acked,
            result.appended
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
