//! Property suite for the two equivalence contracts this crate promises:
//!
//! 1. [`qpv_core::incremental::IncrementalAuditor`] reaches exactly the
//!    state a full [`qpv_core::AuditEngine`] re-audit computes, for *any*
//!    sequence of policy edits (the ablation A1 soundness condition).
//! 2. [`qpv_core::AuditEngine::par_audit`] returns a report equal to the
//!    sequential [`qpv_core::AuditEngine::run`] for every thread count.
//!
//! Populations and edit sequences are drawn from a seeded strategy so each
//! property is checked across many structurally different inputs, not one
//! hand-picked fixture.

use std::num::NonZeroUsize;

use proptest::prelude::*;

use qpv_core::incremental::IncrementalAuditor;
use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{AuditEngine, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

/// A structurally varied population derived from a single seed: mixed
/// purposes, partially stated preferences, uneven sensitivities and
/// thresholds.
fn population(n: usize, seed: u64) -> Vec<ProviderProfile> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            let mut p = ProviderProfile::new(ProviderId(i), 10 + (x % 140));
            p.preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(1 + (x % 5) as u32, 2, 20 + (x % 30) as u32)),
            );
            if x % 3 != 0 {
                // A third of providers leave "age" unstated: implicit
                // deny-all must flow through both code paths identically.
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point(
                        "research",
                        pt(2 + (x % 3) as u32, 1 + (x % 4) as u32, 45),
                    ),
                );
            }
            p.sensitivities.insert(
                "weight".into(),
                DatumSensitivity::new(1 + (x % 6) as u32, 1, 1 + (x % 3) as u32, 2),
            );
            if x % 2 == 0 {
                p.sensitivities
                    .insert("age".into(), DatumSensitivity::new(2, 1, 1, 1));
            }
            p
        })
        .collect()
}

fn weights() -> AttributeSensitivities {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    w.set("age", 2);
    w
}

/// A policy parameterised by one edit level; different levels move
/// different subsets of the `(attribute, purpose)` groups, so a sequence
/// of levels exercises add/retract/replace paths.
fn policy(level: u32) -> HousePolicy {
    let mut b = HousePolicy::builder("h").tuple(
        "weight",
        PrivacyTuple::from_point("pr", pt(level, 3, 30 + level)),
    );
    if level.is_multiple_of(2) {
        b = b.tuple(
            "age",
            PrivacyTuple::from_point("research", pt(2 + level / 3, 2, 60)),
        );
    }
    if level >= 7 {
        // Purpose creep: a purpose nobody consented to.
        b = b.tuple("weight", PrivacyTuple::from_point("ads", pt(3, 3, 365)));
    }
    b.build()
}

fn engine(hp: &HousePolicy) -> AuditEngine {
    AuditEngine::new(hp.clone(), ["weight", "age"], weights())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1: any edit sequence leaves the incremental auditor in
    /// exactly the state a from-scratch audit of the final policy computes.
    #[test]
    fn incremental_auditor_matches_full_reaudit(
        seed in 0u64..1_000_000,
        edits in proptest::collection::vec(0u32..10, 1..7),
    ) {
        let profiles = population(60, seed);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(5),
        );
        for level in edits {
            let hp = policy(level);
            auditor.apply_policy(hp.clone());
            let report = engine(&hp).run(&profiles);
            for (i, audited) in report.providers.iter().enumerate() {
                prop_assert_eq!(auditor.score(i), audited.score, "provider {}", i);
                prop_assert_eq!(auditor.violated(i), audited.violated);
                prop_assert_eq!(auditor.defaulted(i), audited.defaulted);
            }
            prop_assert_eq!(auditor.total_violations(), report.total_violations);
            prop_assert_eq!(auditor.p_violation(), report.p_violation());
            prop_assert_eq!(auditor.p_default(), report.p_default());
        }
    }

    /// Contract 2: the sharded audit is indistinguishable from the
    /// sequential one at every thread count, over populations straddling
    /// the fall-back threshold.
    #[test]
    fn par_audit_equals_sequential_for_all_thread_counts(
        seed in 0u64..1_000_000,
        n in 200usize..600,
        level in 0u32..10,
    ) {
        let profiles = population(n, seed);
        let eng = engine(&policy(level));
        let sequential = eng.run(&profiles);
        for threads in [1usize, 2, 4, 8] {
            let parallel = eng.par_audit(&profiles, NonZeroUsize::new(threads).unwrap()).unwrap();
            prop_assert_eq!(&parallel, &sequential, "{} threads", threads);
        }
    }

    /// The two parallel layers compose: a sharded initial pass plus
    /// sharded edits equals the sequential incremental path.
    #[test]
    fn parallel_incremental_matches_sequential_incremental(
        seed in 0u64..1_000_000,
        edits in proptest::collection::vec(0u32..10, 1..4),
    ) {
        let profiles = population(300, seed);
        let attrs = || vec!["weight".to_string(), "age".to_string()];
        let nz = NonZeroUsize::new(4).unwrap();
        let mut seq =
            IncrementalAuditor::new(profiles.clone(), attrs(), &weights(), policy(5));
        let mut par =
            IncrementalAuditor::new_parallel(profiles, attrs(), &weights(), policy(5), nz);
        for level in edits {
            seq.apply_policy(policy(level));
            par.apply_policy_parallel(policy(level), nz);
            for i in 0..seq.population() {
                prop_assert_eq!(par.score(i), seq.score(i), "provider {}", i);
            }
            prop_assert_eq!(par.total_violations(), seq.total_violations());
        }
    }
}
