//! Property test for the [`Ppdb`] delta-handoff protocol under consumer
//! crashes and concurrent writes: **no delta is ever lost, none is ever
//! applied twice**, and the consumer's final audit is byte-identical to
//! a serial oracle that saw every op exactly once.
//!
//! The consumer protocol under test (see `qpv_core::ppdb::DeltaQueue`):
//! `peek_delta_seq()` → apply ops one at a time → `ack_delta_through()`.
//! A crash can land *between any two of those steps* — after applying
//! `j` of the peeked ops but before the ack, for every `j`. Two consumer
//! recovery models cover both real-world shapes:
//!
//! * **Durable consumer** (`crash_everywhere_durable_consumer`): each
//!   apply is durable (the DeltaLog model — a frame is fsynced before
//!   the ack moves). Recovery keeps the applied state and its seq
//!   cursor, re-peeks, and *skips* `applied_through - first_seq` ops.
//!   The skip is what prevents double-apply.
//! * **Amnesiac consumer** (`crash_everywhere_amnesiac_consumer`): state
//!   since the last ack is lost (an in-memory mirror). Recovery rolls
//!   back to the acked checkpoint and replays everything still pending.
//!   Un-acked ops staying in the queue is what prevents loss.
//!
//! In both schedules the writer keeps writing between the crash and the
//! recovery, so the re-peeked batch is never the crashed batch — the
//! seq tags, not batch shapes, must carry the protocol.
//!
//! `threaded_handoff_is_exactly_once` runs the same invariants with a
//! real writer thread and a real consumer thread racing through the
//! shared [`DeltaQueue`] handle, with the backlog capacity squeezed so
//! the writer also exercises typed `Backpressure` and retry.

use std::sync::{Arc, Mutex};

use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{
    AuditEngine, CompiledPopulation, DeltaOp, PopulationDelta, Ppdb, PpdbConfig, ProviderProfile,
};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_reldb::db::Database;
use qpv_reldb::error::DbError;
use qpv_reldb::row::Row;
use qpv_reldb::schema::{Schema, SchemaBuilder};
use qpv_reldb::types::DataType;
use qpv_reldb::value::Value;
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

fn data_schema() -> Schema {
    SchemaBuilder::new()
        .column("provider_id", DataType::Int)
        .nullable_column("weight", DataType::Int)
        .build()
        .unwrap()
}

fn profile(id: u64, threshold: u64) -> ProviderProfile {
    let mut p = ProviderProfile::new(ProviderId(id), threshold);
    p.preferences
        .add("weight", PrivacyTuple::from_point("pr", pt(3, 2, 30)));
    p.sensitivities
        .insert("weight".into(), DatumSensitivity::new(3, 1, 5, 2));
    p
}

fn data_row(id: u64) -> Row {
    Row::from_values([Value::Int(id as i64), Value::Int(70)])
}

fn fresh_ppdb(capacity: usize) -> Ppdb {
    Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("people", "provider_id").with_delta_capacity(capacity),
        data_schema(),
    )
    .unwrap()
}

/// One writer op == exactly one [`DeltaOp`] pushed, so seq `i` is the
/// i-th script entry and the oracle is the script itself.
#[derive(Clone, Copy, Debug)]
enum WriterOp {
    Register(u64, u64),
    SetThreshold(u64, u64),
    SetSensitivity(u64),
    SetPreferences(u64),
    Remove(u64),
}

fn script() -> Vec<WriterOp> {
    use WriterOp::*;
    vec![
        Register(1, 40),
        Register(2, 500),
        Register(3, 40),
        SetThreshold(1, 10),
        Register(4, 999),
        SetSensitivity(2),
        SetPreferences(3),
        Remove(2),
        Register(5, 25),
        SetThreshold(5, 80),
        SetPreferences(1),
        Register(6, 60),
        SetSensitivity(4),
        Remove(3),
        SetThreshold(6, 5),
        Register(7, 70),
    ]
}

/// Perform one script op, retrying while the backlog is full. Returns
/// how many times backpressure pushed back.
fn perform(ppdb: &mut Ppdb, op: WriterOp) -> usize {
    let mut stalls = 0;
    loop {
        let result = match op {
            WriterOp::Register(id, thr) => ppdb.register_provider(&profile(id, thr), data_row(id)),
            WriterOp::SetThreshold(id, thr) => ppdb.set_threshold(ProviderId(id), thr),
            WriterOp::SetSensitivity(id) => {
                ppdb.set_sensitivity(ProviderId(id), "weight", DatumSensitivity::new(9, 1, 1, 1))
            }
            WriterOp::SetPreferences(id) => ppdb.set_preferences(
                ProviderId(id),
                "weight",
                vec![PrivacyTuple::from_point("pr", pt(1, 1, 1))],
            ),
            WriterOp::Remove(id) => ppdb.remove_provider(ProviderId(id)),
        };
        match result {
            Ok(()) => return stalls,
            Err(DbError::Backpressure { .. }) => {
                stalls += 1;
                std::thread::yield_now();
            }
            Err(e) => panic!("writer op {op:?} failed: {e}"),
        }
    }
}

fn engine() -> AuditEngine {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    let policy = HousePolicy::builder("people")
        .tuple("weight", PrivacyTuple::from_point("pr", pt(5, 5, 5)))
        .build();
    AuditEngine::new(policy, ["weight"], w)
}

fn report(pop: &CompiledPopulation) -> String {
    serde_json::to_string(&engine().audit_compiled(pop)).unwrap()
}

/// The serial oracle: one consumer that saw every op exactly once, in
/// order, with no crashes.
fn oracle_report() -> (usize, String) {
    let mut ppdb = fresh_ppdb(1024);
    for op in script() {
        perform(&mut ppdb, op);
    }
    let (base, ops) = ppdb.peek_delta_seq();
    assert_eq!(base, 0);
    let mut pop = CompiledPopulation::from_profiles(&[]);
    pop.apply_delta(&ops).unwrap();
    (ops.len(), report(&pop))
}

fn apply_one(pop: &mut CompiledPopulation, op: &DeltaOp) {
    let mut d = PopulationDelta::new();
    d.push(op.clone());
    pop.apply_delta(&d).unwrap();
}

/// Deterministic crash schedule: the consumer activates after every
/// writer op and crashes once its total apply count hits `crash_after`
/// — i.e. after applying `crash_after` ops overall, before the next
/// apply or ack. `durable` picks the recovery model.
///
/// Returns `(applied_seqs, final_report)` where `applied_seqs` is every
/// seq whose apply *survived* into the final state, in apply order.
fn run_with_crash(crash_after: usize, durable: bool) -> (Vec<u64>, String) {
    let mut ppdb = fresh_ppdb(1024);
    let mut pop = CompiledPopulation::from_profiles(&[]);
    let mut applied_through = 0u64;
    let mut applied_seqs: Vec<u64> = Vec::new();
    // The amnesiac consumer's durable checkpoint: state at last ack.
    let mut checkpoint = (pop.clone(), 0u64, Vec::new());
    let mut budget = Some(crash_after);
    let mut crashed = false;

    let consume = |ppdb: &mut Ppdb,
                   pop: &mut CompiledPopulation,
                   applied_through: &mut u64,
                   applied_seqs: &mut Vec<u64>,
                   checkpoint: &mut (CompiledPopulation, u64, Vec<u64>),
                   budget: &mut Option<usize>|
     -> bool {
        let (base, ops) = ppdb.peek_delta_seq();
        assert!(
            base <= *applied_through,
            "queue acked past the consumer's cursor"
        );
        let skip = (*applied_through - base) as usize;
        for (i, op) in ops.ops().iter().enumerate().skip(skip) {
            if *budget == Some(0) {
                return true; // crash before this apply
            }
            apply_one(pop, op);
            applied_seqs.push(base + i as u64);
            *applied_through += 1;
            if let Some(b) = budget.as_mut() {
                *b -= 1;
            }
        }
        if *budget == Some(0) {
            *budget = None; // the crash point: between last apply and ack
            return true;
        }
        ppdb.ack_delta_through(*applied_through);
        *checkpoint = (pop.clone(), *applied_through, applied_seqs.clone());
        false
    };

    for (step, op) in script().into_iter().enumerate() {
        assert_eq!(perform(&mut ppdb, op), 0, "capacity 1024 never pushes back");
        if crashed {
            // Writer keeps going while the consumer is down. Recover the
            // consumer two ops after the crash so re-peeked batches never
            // match the crashed batch shape.
            if step % 2 == 0 {
                if !durable {
                    // Everything since the last ack is lost.
                    pop = checkpoint.0.clone();
                    applied_through = checkpoint.1;
                    applied_seqs = checkpoint.2.clone();
                }
                budget = None;
                // `crashed` is refreshed by the consume below.
            } else {
                continue;
            }
        }
        crashed = consume(
            &mut ppdb,
            &mut pop,
            &mut applied_through,
            &mut applied_seqs,
            &mut checkpoint,
            &mut budget,
        );
    }
    // Final recovery + drain.
    if crashed && !durable {
        pop = checkpoint.0.clone();
        applied_through = checkpoint.1;
        applied_seqs = checkpoint.2.clone();
    }
    budget = None;
    let crashed_again = consume(
        &mut ppdb,
        &mut pop,
        &mut applied_through,
        &mut applied_seqs,
        &mut checkpoint,
        &mut budget,
    );
    assert!(!crashed_again);
    assert_eq!(ppdb.delta_backlog_len(), 0, "drain must empty the queue");
    (applied_seqs, report(&pop))
}

fn assert_exactly_once(applied_seqs: &[u64], total: usize, report: &str, oracle: &str, tag: &str) {
    assert_eq!(
        applied_seqs,
        (0..total as u64).collect::<Vec<_>>().as_slice(),
        "{tag}: surviving applies must be every seq exactly once, in order"
    );
    assert_eq!(report, oracle, "{tag}: audit must match the serial oracle");
}

/// Durable consumer: crash between peek and ack at *every* apply count.
#[test]
fn crash_everywhere_durable_consumer() {
    let (total, oracle) = oracle_report();
    for crash_after in 0..=total {
        let (applied, report) = run_with_crash(crash_after, true);
        assert_exactly_once(
            &applied,
            total,
            &report,
            &oracle,
            &format!("durable, crash after {crash_after} applies"),
        );
    }
}

/// Amnesiac consumer: same crash points; replay-from-ack must converge
/// to the identical exactly-once history.
#[test]
fn crash_everywhere_amnesiac_consumer() {
    let (total, oracle) = oracle_report();
    for crash_after in 0..=total {
        let (applied, report) = run_with_crash(crash_after, false);
        assert_exactly_once(
            &applied,
            total,
            &report,
            &oracle,
            &format!("amnesiac, crash after {crash_after} applies"),
        );
    }
}

/// Real threads, real races: a writer thread pushes the script through
/// a capacity-4 queue (so it hits typed backpressure and retries) while
/// a consumer thread drains through its own [`qpv_core::DeltaQueue`]
/// handle. Every op must arrive exactly once, in seq order.
#[test]
fn threaded_handoff_is_exactly_once() {
    let (total, oracle) = oracle_report();
    let ppdb = fresh_ppdb(4);
    let queue = ppdb.delta_queue();
    let ppdb = Arc::new(Mutex::new(ppdb));

    let writer = {
        let ppdb = Arc::clone(&ppdb);
        std::thread::spawn(move || {
            let mut stalls = 0;
            for op in script() {
                // The consumer acks through the queue's own mutex, so
                // holding the Ppdb lock across backpressure retries
                // cannot deadlock the drain.
                stalls += perform(&mut ppdb.lock().unwrap(), op);
            }
            stalls
        })
    };

    // Consumer: drain via the shared handle until every op was seen.
    let mut pop = CompiledPopulation::from_profiles(&[]);
    let mut applied_through = 0u64;
    let mut applied_seqs = Vec::new();
    while (applied_through as usize) < total {
        let (base, ops) = queue.peek();
        assert!(base <= applied_through);
        let skip = (applied_through - base) as usize;
        for (i, op) in ops.ops().iter().enumerate().skip(skip) {
            apply_one(&mut pop, op);
            applied_seqs.push(base + i as u64);
            applied_through += 1;
        }
        queue.ack_through(applied_through);
        std::thread::yield_now();
    }
    writer.join().unwrap();
    assert!(queue.is_empty(), "writer done and consumer saw every op");
    assert_exactly_once(&applied_seqs, total, &report(&pop), &oracle, "threaded");
}

/// `perform`'s retry loop is honest: with a capacity-1 queue and no
/// consumer, the writer's second op reports backpressure stalls rather
/// than sneaking a write through.
#[test]
fn backpressure_is_typed_not_silent() {
    let mut ppdb = fresh_ppdb(1);
    assert_eq!(
        perform(&mut ppdb, WriterOp::Register(1, 40)),
        0,
        "first op fits"
    );
    let err = ppdb.set_threshold(ProviderId(1), 9).unwrap_err();
    assert!(matches!(
        err,
        DbError::Backpressure {
            pending: 1,
            capacity: 1
        }
    ));
    // Drain and retry: the op that was refused goes through unchanged.
    let (base, ops) = ppdb.peek_delta_seq();
    ppdb.ack_delta_through(base + ops.len() as u64);
    assert_eq!(perform(&mut ppdb, WriterOp::SetThreshold(1, 9)), 0);
    assert_eq!(ppdb.delta_backlog_len(), 1);
}
