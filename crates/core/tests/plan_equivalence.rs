//! Property suite for the compiled-plan contract: every path that routes
//! through [`qpv_core::CompiledAuditPlan`] — the sequential engine, the
//! work-stealing parallel engine, and the interned incremental auditor —
//! produces results **bitwise identical** to the original string-resolving
//! reference path ([`qpv_core::AuditEngine::run_reference`]), flat and
//! lattice, on arbitrary populations.
//!
//! Populations deliberately include the cases where the compiled path
//! could diverge: duplicate `(attribute, purpose)` preference tuples
//! (find-first vs join semantics), purposes only the lattice knows,
//! purposes nobody stated, attributes the table doesn't store, and one
//! pathologically skewed provider (~100× the average tuples) for the
//! dynamic scheduler.

use std::num::NonZeroUsize;

use proptest::prelude::*;

use qpv_core::incremental::IncrementalAuditor;
use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{AuditEngine, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

/// A structurally varied population derived from a single seed, stressing
/// every resolution rule the plan compiles away.
fn population(n: usize, seed: u64) -> Vec<ProviderProfile> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            let mut p = ProviderProfile::new(ProviderId(i), 10 + (x % 140));
            p.preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(1 + (x % 5) as u32, 2, 20 + (x % 30) as u32)),
            );
            if x % 4 == 0 {
                // Duplicate (attribute, purpose): flat matching must keep
                // the first stated tuple, lattice matching must join both.
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(4, 1 + (x % 4) as u32, 10)),
                );
            }
            if x % 3 != 0 {
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point(
                        "research",
                        pt(2 + (x % 3) as u32, 1 + (x % 4) as u32, 45),
                    ),
                );
            }
            if x % 5 == 0 {
                // A broad purpose only the lattice connects to the policy.
                p.preferences
                    .add("weight", PrivacyTuple::from_point("ops", pt(5, 5, 90)));
            }
            if x % 7 == 0 {
                // Noise the plan never interns: an unknown purpose and an
                // attribute outside the data table.
                p.preferences
                    .add("weight", PrivacyTuple::from_point("mystery", pt(9, 9, 9)));
                p.preferences
                    .add("shoe_size", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
            }
            p.sensitivities.insert(
                "weight".into(),
                DatumSensitivity::new(1 + (x % 6) as u32, 1, 1 + (x % 3) as u32, 2),
            );
            if x % 2 == 0 {
                p.sensitivities
                    .insert("age".into(), DatumSensitivity::new(2, 1, 1, 1));
            }
            p
        })
        .collect()
}

/// Blow up one provider's preference list to ~100× the average.
fn skew(profiles: &mut [ProviderProfile], victim: usize) {
    for i in 0..600u32 {
        profiles[victim].preferences.add(
            "weight",
            PrivacyTuple::from_point("pr", pt(1 + (i % 5), 2, 20 + (i % 30))),
        );
    }
}

fn weights() -> AttributeSensitivities {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    w.set("age", 2);
    w
}

fn policy(level: u32) -> HousePolicy {
    let mut b = HousePolicy::builder("h").tuple(
        "weight",
        PrivacyTuple::from_point("pr", pt(level, 3, 30 + level)),
    );
    if level.is_multiple_of(2) {
        b = b.tuple(
            "age",
            PrivacyTuple::from_point("research", pt(2 + level / 3, 2, 60)),
        );
    }
    if level >= 5 {
        // A second tuple for an already-seen attribute, under a purpose
        // that is narrower than stated consents in the lattice.
        b = b.tuple("weight", PrivacyTuple::from_point("billing", pt(3, 3, 40)));
    }
    if level >= 7 {
        b = b.tuple("weight", PrivacyTuple::from_point("ads", pt(3, 3, 365)));
    }
    b.build()
}

/// billing ⊑ pr ⊑ ops; research ⊑ ops.
fn lattice() -> PurposeLattice {
    let mut l = PurposeLattice::new();
    l.add_edge("billing", "pr").unwrap();
    l.add_edge("pr", "ops").unwrap();
    l.add_edge("research", "ops").unwrap();
    l
}

fn engine(hp: &HousePolicy) -> AuditEngine {
    AuditEngine::new(hp.clone(), ["weight", "age"], weights())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flat matching: compiled == reference, provider by provider.
    #[test]
    fn compiled_flat_equals_reference(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        level in 0u32..10,
    ) {
        let profiles = population(n, seed);
        let eng = engine(&policy(level));
        prop_assert_eq!(eng.run(&profiles), eng.run_reference(&profiles));
    }

    /// Lattice matching: compiled coverage sets == dominated_by walks.
    #[test]
    fn compiled_lattice_equals_reference(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        level in 0u32..10,
    ) {
        let profiles = population(n, seed);
        let eng = engine(&policy(level)).with_lattice(lattice());
        prop_assert_eq!(eng.run(&profiles), eng.run_reference(&profiles));
    }

    /// The work-stealing parallel path equals the reference for every
    /// thread count, flat and lattice, including under skew.
    #[test]
    fn parallel_compiled_equals_reference(
        seed in 0u64..1_000_000,
        n in 300usize..600,
        level in 0u32..10,
        with_lattice in 0u32..2,
    ) {
        let mut profiles = population(n, seed);
        skew(&mut profiles, n / 2);
        let mut eng = engine(&policy(level));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let reference = eng.run_reference(&profiles);
        for threads in [1usize, 2, 4, 8] {
            let parallel = eng.par_audit(&profiles, NonZeroUsize::new(threads).unwrap()).unwrap();
            prop_assert_eq!(&parallel, &reference, "{} threads", threads);
        }
    }

    /// The interned incremental auditor tracks the reference path exactly
    /// across edit sequences.
    #[test]
    fn incremental_interned_matches_reference(
        seed in 0u64..1_000_000,
        edits in proptest::collection::vec(0u32..10, 1..6),
    ) {
        let profiles = population(60, seed);
        let mut auditor = IncrementalAuditor::new(
            profiles.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(4),
        );
        for level in edits {
            let hp = policy(level);
            auditor.apply_policy(hp.clone());
            let report = engine(&hp).run_reference(&profiles);
            for (i, audited) in report.providers.iter().enumerate() {
                prop_assert_eq!(auditor.score(i), audited.score, "provider {}", i);
                prop_assert_eq!(auditor.violated(i), audited.violated);
                prop_assert_eq!(auditor.defaulted(i), audited.defaulted);
            }
            prop_assert_eq!(auditor.total_violations(), report.total_violations);
            prop_assert_eq!(auditor.p_violation(), report.p_violation());
            prop_assert_eq!(auditor.p_default(), report.p_default());
        }
    }
}

/// Duplicate provider ids: the reference path resolves datums and
/// thresholds through the assembled (merged, last-wins) structures, and
/// the compiled path must fall back to the same resolution instead of
/// reading each profile directly.
#[test]
fn duplicate_provider_ids_match_reference() {
    let mut profiles = population(40, 77);
    // Re-register provider 3 with different sensitivities and threshold;
    // both occurrences must see the merged view.
    let mut dup = ProviderProfile::new(ProviderId(3), 9999);
    dup.preferences
        .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
    dup.sensitivities
        .insert("weight".into(), DatumSensitivity::new(6, 2, 3, 1));
    dup.sensitivities
        .insert("age".into(), DatumSensitivity::new(5, 1, 1, 4));
    profiles.push(dup);
    for with_lattice in [false, true] {
        let mut eng = engine(&policy(6));
        if with_lattice {
            eng = eng.with_lattice(lattice());
        }
        assert_eq!(
            eng.run(&profiles),
            eng.run_reference(&profiles),
            "lattice={with_lattice}"
        );
    }
}

/// Deterministic skew-stress: one provider with ~100× tuples, and the
/// parallel report must be **byte-identical** (serialized JSON) to the
/// sequential one — the scheduling must be invisible in the output.
#[test]
fn skewed_parallel_report_is_byte_identical() {
    let mut profiles = population(500, 1234);
    skew(&mut profiles, 250);
    for with_lattice in [false, true] {
        let mut eng = engine(&policy(6));
        if with_lattice {
            eng = eng.with_lattice(lattice());
        }
        let sequential = eng.run(&profiles);
        let reference = eng.run_reference(&profiles);
        assert_eq!(sequential, reference, "lattice={with_lattice}");
        let seq_json = serde_json::to_string(&sequential).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = eng
                .par_audit(&profiles, NonZeroUsize::new(threads).unwrap())
                .unwrap();
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                seq_json,
                "lattice={with_lattice}, {threads} threads"
            );
        }
    }
}
