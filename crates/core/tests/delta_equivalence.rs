//! Property suite for the delta pipeline: applying a random
//! [`PopulationDelta`] sequence to a compiled population (and to a live
//! [`IncrementalAuditor`]) lands **byte-identically** — serialized-JSON
//! equal — on the state a fresh compile + audit of the mutated profile
//! list produces, flat and lattice, sequential and parallel.
//!
//! Ops are generated as plain integer tuples and decoded deterministically
//! here, so failing cases shrink along integers and vector length — the
//! dimensions the vendored `proptest` knows how to minimize. The decoded
//! mix covers every [`DeltaOp`] variant, including upserts of brand-new
//! ids, repeated edits of the same provider, removals, retractions
//! (empty preference replacement), and ops naming unknown providers
//! (which must no-op on both sides).

use std::num::NonZeroUsize;

use proptest::prelude::*;

use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{
    AuditEngine, CompiledPopulation, DeltaOp, IncrementalAuditor, PopulationDelta, ProviderProfile,
};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

/// Same structural-variety generator as `pop_equivalence.rs`, minus the
/// duplicate-id case: deltas refuse populations with duplicate
/// occurrences, so every id here is unique.
fn population(n: usize, seed: u64) -> Vec<ProviderProfile> {
    (0..n as u64).map(|i| profile_for(i, seed)).collect()
}

/// Deterministic profile for `id`: structure varies with the mixed seed,
/// covering multiple tuples per attribute, unknown purposes, and
/// attributes the data table does not store.
fn profile_for(id: u64, seed: u64) -> ProviderProfile {
    let x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
    let mut p = ProviderProfile::new(ProviderId(id), 10 + (x % 140));
    p.preferences.add(
        "weight",
        PrivacyTuple::from_point("pr", pt(1 + (x % 5) as u32, 2, 20 + (x % 30) as u32)),
    );
    if x.is_multiple_of(4) {
        p.preferences.add(
            "weight",
            PrivacyTuple::from_point("pr", pt(4, 1 + (x % 4) as u32, 10)),
        );
    }
    if !x.is_multiple_of(3) {
        p.preferences.add(
            "age",
            PrivacyTuple::from_point("research", pt(2 + (x % 3) as u32, 1 + (x % 4) as u32, 45)),
        );
    }
    if x.is_multiple_of(5) {
        p.preferences
            .add("weight", PrivacyTuple::from_point("ops", pt(5, 5, 90)));
    }
    if x.is_multiple_of(7) {
        p.preferences
            .add("weight", PrivacyTuple::from_point("mystery", pt(9, 9, 9)));
        p.preferences
            .add("shoe_size", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
    }
    p.sensitivities.insert(
        "weight".into(),
        DatumSensitivity::new(1 + (x % 6) as u32, 1, 1 + (x % 3) as u32, 2),
    );
    if x.is_multiple_of(2) {
        p.sensitivities
            .insert("age".into(), DatumSensitivity::new(2, 1, 1, 1));
    }
    p
}

const ATTRS: [&str; 3] = ["weight", "age", "shoe_size"];
const PURPOSES: [&str; 4] = ["pr", "research", "ops", "mystery"];

/// Decode one `(kind, id_sel, x)` integer tuple into a [`DeltaOp`] against
/// a population of `n` original ids. `id_sel` deliberately overshoots `n`
/// sometimes, producing upserts of new ids and edits/removals of unknown
/// ids (silent no-ops on both the compiled and the profile-replay side).
fn decode_op(n: usize, kind: u32, id_sel: u64, x: u64) -> DeltaOp {
    let id = id_sel % (n as u64 + n as u64 / 2 + 4);
    match kind % 6 {
        0 | 1 => DeltaOp::Upsert(profile_for(id, x)),
        2 => DeltaOp::Remove(ProviderId(id)),
        3 => {
            let attribute = ATTRS[(x % ATTRS.len() as u64) as usize].to_string();
            let tuples = (0..x % 3)
                .map(|t| {
                    PrivacyTuple::from_point(
                        PURPOSES[((x + t) % PURPOSES.len() as u64) as usize],
                        pt(
                            1 + ((x + t) % 6) as u32,
                            1 + (x % 4) as u32,
                            10 + (x % 50) as u32,
                        ),
                    )
                })
                .collect();
            DeltaOp::SetAttributePrefs {
                id: ProviderId(id),
                attribute,
                tuples,
            }
        }
        4 => DeltaOp::SetSensitivity {
            id: ProviderId(id),
            attribute: ATTRS[(x % ATTRS.len() as u64) as usize].to_string(),
            sensitivity: DatumSensitivity::new(
                (x % 7) as u32,
                (x % 3) as u32,
                ((x / 3) % 4) as u32,
                (x % 5) as u32,
            ),
        },
        _ => DeltaOp::SetThreshold {
            id: ProviderId(id),
            threshold: x % 300,
        },
    }
}

fn decode_delta(n: usize, ops: &[(u32, u64, u64)]) -> PopulationDelta {
    let mut delta = PopulationDelta::new();
    for &(kind, id_sel, x) in ops {
        delta.push(decode_op(n, kind, id_sel, x));
    }
    delta
}

fn weights() -> AttributeSensitivities {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    w.set("age", 2);
    w
}

fn policy(level: u32) -> HousePolicy {
    let mut b = HousePolicy::builder("h").tuple(
        "weight",
        PrivacyTuple::from_point("pr", pt(level, 3, 30 + level)),
    );
    if level.is_multiple_of(2) {
        b = b.tuple(
            "age",
            PrivacyTuple::from_point("research", pt(2 + level / 3, 2, 60)),
        );
    }
    if level >= 5 {
        b = b.tuple("weight", PrivacyTuple::from_point("billing", pt(3, 3, 40)));
    }
    if level >= 7 {
        b = b.tuple("weight", PrivacyTuple::from_point("ads", pt(3, 3, 365)));
    }
    b.build()
}

/// billing ⊑ pr ⊑ ops; research ⊑ ops.
fn lattice() -> PurposeLattice {
    let mut l = PurposeLattice::new();
    l.add_edge("billing", "pr").unwrap();
    l.add_edge("pr", "ops").unwrap();
    l.add_edge("research", "ops").unwrap();
    l
}

fn engine(hp: &HousePolicy) -> AuditEngine {
    AuditEngine::new(hp.clone(), ["weight", "age"], weights())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta-applied compiled population == fresh compile of the mutated
    /// profiles, as serialized JSON reports: flat, lattice, and the
    /// parallel path for several thread counts.
    #[test]
    fn delta_applied_population_equals_fresh_compile(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        level in 0u32..10,
        ops in proptest::collection::vec((0u32..6, 0u64..200, 0u64..1_000), 1..40),
    ) {
        let profiles = population(n, seed);
        let delta = decode_delta(n, &ops);

        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let outcome = pop.apply_delta(&delta).unwrap();
        prop_assert_eq!(pop.epoch(), 1);
        prop_assert_eq!(outcome.epoch, 1);

        let mut mutated = profiles;
        delta.apply_to_profiles(&mut mutated);
        let fresh = CompiledPopulation::from_profiles(&mutated);
        prop_assert_eq!(pop.len(), fresh.len());

        for with_lattice in [false, true] {
            let mut eng = engine(&policy(level));
            if with_lattice {
                eng = eng.with_lattice(lattice());
            }
            let via_delta = serde_json::to_string(&eng.audit_compiled(&pop)).unwrap();
            let via_fresh = serde_json::to_string(&eng.audit_compiled(&fresh)).unwrap();
            prop_assert_eq!(&via_delta, &via_fresh, "lattice={}", with_lattice);
            for threads in [2usize, 4] {
                let par = eng
                    .par_audit_compiled(&pop, NonZeroUsize::new(threads).unwrap())
                    .unwrap();
                prop_assert_eq!(
                    &serde_json::to_string(&par).unwrap(),
                    &via_delta,
                    "lattice={} threads={}", with_lattice, threads
                );
            }
        }
    }

    /// Delta-fed live auditor == fresh auditor over the mutated profiles:
    /// identical per-provider scores/flags and identical JSON outcome,
    /// whether the fresh build is sequential or parallel.
    #[test]
    fn delta_fed_auditor_equals_fresh_build(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        level in 0u32..10,
        ops in proptest::collection::vec((0u32..6, 0u64..200, 0u64..1_000), 1..40),
    ) {
        let profiles = population(n, seed);
        let delta = decode_delta(n, &ops);

        let mut live = IncrementalAuditor::from_population(
            CompiledPopulation::from_profiles(&profiles),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(level),
        );
        live.apply_delta(&delta).unwrap();

        let mut mutated = profiles;
        delta.apply_to_profiles(&mut mutated);
        let fresh = IncrementalAuditor::new(
            mutated.clone(),
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(level),
        );
        prop_assert_eq!(
            serde_json::to_string(&live.outcome()).unwrap(),
            serde_json::to_string(&fresh.outcome()).unwrap()
        );
        // Occurrence order may differ (swap-remove vs rebuild), so compare
        // per provider id.
        prop_assert_eq!(live.population(), mutated.len());
        for (j, p) in mutated.iter().enumerate() {
            let i = live.compiled().occurrence_of(p.id()).unwrap();
            prop_assert_eq!(live.score(i), fresh.score(j), "id {:?}", p.id());
            prop_assert_eq!(live.violated(i), fresh.violated(j), "id {:?}", p.id());
            prop_assert_eq!(live.defaulted(i), fresh.defaulted(j), "id {:?}", p.id());
        }
        let par = IncrementalAuditor::new_parallel(
            mutated,
            vec!["weight".into(), "age".into()],
            &weights(),
            policy(level),
            NonZeroUsize::new(4).unwrap(),
        );
        prop_assert_eq!(
            serde_json::to_string(&live.outcome()).unwrap(),
            serde_json::to_string(&par.outcome()).unwrap()
        );
    }

    /// The compiled path's [`DeltaOutcome::skipped`] counter agrees with
    /// an id-set walk of the same op sequence: exactly the ops that named
    /// an id absent *at their point in the sequence* are counted, and the
    /// profile-replay oracle treats those same ops as no-ops (the states
    /// still converge). Guards the silent-skip fix: unknown-id ops are
    /// counted, never silently dropped.
    #[test]
    fn skipped_counter_matches_oracle_membership(
        seed in 0u64..1_000_000,
        n in 1usize..60,
        ops in proptest::collection::vec((0u32..6, 0u64..200, 0u64..1_000), 1..40),
    ) {
        let profiles = population(n, seed);
        let delta = decode_delta(n, &ops);

        // Walk the ops against the evolving id set, exactly as the
        // profile oracle binds them.
        let mut present: std::collections::HashSet<u64> =
            profiles.iter().map(|p| p.id().0).collect();
        let mut expected_skips = 0u64;
        for op in delta.ops() {
            match op {
                DeltaOp::Upsert(p) => {
                    present.insert(p.id().0);
                }
                DeltaOp::Remove(id) => {
                    if !present.remove(&id.0) {
                        expected_skips += 1;
                    }
                }
                DeltaOp::SetAttributePrefs { id, .. }
                | DeltaOp::SetSensitivity { id, .. }
                | DeltaOp::SetThreshold { id, .. } => {
                    if !present.contains(&id.0) {
                        expected_skips += 1;
                    }
                }
            }
        }

        let mut pop = CompiledPopulation::from_profiles(&profiles);
        let outcome = pop.apply_delta(&delta).unwrap();
        prop_assert_eq!(outcome.skipped, expected_skips);

        // And the skipped ops bound to nothing on the oracle side either:
        // both paths land on the same population.
        let mut mutated = profiles;
        delta.apply_to_profiles(&mut mutated);
        let fresh = CompiledPopulation::from_profiles(&mutated);
        prop_assert_eq!(pop.len(), fresh.len());
        let eng = engine(&policy(4));
        prop_assert_eq!(
            serde_json::to_string(&eng.audit_compiled(&pop)).unwrap(),
            serde_json::to_string(&eng.audit_compiled(&fresh)).unwrap()
        );
    }

    /// After a random delta the packed counts pass — now running over a
    /// row table carrying dead (refcount-zero) slots and freelists — still
    /// equals the reference audit of the mutated profiles on every exact
    /// aggregate, flat and lattice.
    #[test]
    fn delta_churned_counts_equal_reference(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        level in 0u32..10,
        with_lattice in 0u32..2,
        ops in proptest::collection::vec((0u32..6, 0u64..200, 0u64..1_000), 1..40),
    ) {
        let profiles = population(n, seed);
        let delta = decode_delta(n, &ops);
        let mut pop = CompiledPopulation::from_profiles(&profiles);
        pop.apply_delta(&delta).unwrap();
        pop.debug_validate();

        let mut mutated = profiles;
        delta.apply_to_profiles(&mut mutated);
        let mut eng = engine(&policy(level));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let reference = eng.run_reference(&mutated);
        let counts = eng.counts(&pop);
        prop_assert_eq!(counts.population, mutated.len());
        prop_assert_eq!(counts.total_violations, reference.total_violations);
        prop_assert_eq!(
            counts.violated,
            reference.providers.iter().filter(|p| p.violated).count()
        );
        prop_assert_eq!(
            counts.defaulted,
            reference.providers.iter().filter(|p| p.defaulted).count()
        );
    }

    /// Splitting one delta into two sequential batches lands on the same
    /// state as applying it whole (epochs aside) — deltas compose.
    #[test]
    fn split_deltas_compose(
        seed in 0u64..1_000_000,
        n in 1usize..60,
        split in 0usize..40,
        ops in proptest::collection::vec((0u32..6, 0u64..200, 0u64..1_000), 2..40),
    ) {
        let profiles = population(n, seed);
        let delta = decode_delta(n, &ops);
        let cut = split % (ops.len() + 1);
        let first = decode_delta(n, &ops[..cut]);
        let second = decode_delta(n, &ops[cut..]);

        let mut whole = CompiledPopulation::from_profiles(&profiles);
        whole.apply_delta(&delta).unwrap();
        let mut batched = CompiledPopulation::from_profiles(&profiles);
        batched.apply_delta(&first).unwrap();
        batched.apply_delta(&second).unwrap();
        prop_assert_eq!(batched.epoch(), 2);

        let eng = engine(&policy(6));
        prop_assert_eq!(
            serde_json::to_string(&eng.audit_compiled(&whole)).unwrap(),
            serde_json::to_string(&eng.audit_compiled(&batched)).unwrap()
        );
    }
}

/// Drive every intern-table refcount to zero and back: remove the whole
/// population, re-upsert identical content, then flap one provider's
/// preferences between two shapes for several rounds. The freed slots
/// must be recycled (resident footprint returns to baseline after the
/// refill and stays flat once both flap shapes have existed), the table
/// invariants must hold after every epoch, and the packed counts pass
/// must agree with a fresh compile even while dead slots are present.
#[test]
fn refcounts_drain_to_zero_and_slots_recycle() {
    let profiles = population(12, 99);
    let mut pop = CompiledPopulation::from_profiles(&profiles);
    // An empty delta forces the lazy provider index into existence so the
    // baseline footprint is comparable with the post-churn one.
    pop.apply_delta(&PopulationDelta::new()).unwrap();
    let baseline_rows = pop.unique_row_count();
    let baseline_bytes = pop.resident_bytes();
    assert!(baseline_rows > 0);

    // Drain: removing every provider takes every refcount to zero.
    let mut drain = PopulationDelta::new();
    for p in &profiles {
        drain.push(DeltaOp::Remove(p.id()));
    }
    pop.apply_delta(&drain).unwrap();
    pop.debug_validate();
    assert_eq!(pop.len(), 0);
    assert_eq!(pop.unique_row_count(), 0);

    // Refill with identical content: the rows re-intern into the freed
    // slots, so the footprint lands exactly back on the baseline.
    let mut refill = PopulationDelta::new();
    for p in &profiles {
        refill.push(DeltaOp::Upsert(p.clone()));
    }
    pop.apply_delta(&refill).unwrap();
    pop.debug_validate();
    assert_eq!(pop.unique_row_count(), baseline_rows);
    assert_eq!(pop.resident_bytes(), baseline_bytes);

    // Flap one provider between two preference shapes. The first two
    // rounds may grow the table (each shape interned once); after that
    // every flap frees a slot of exactly the shape the next flap needs,
    // so the footprint must be flat.
    let victim = profiles[4].id();
    let eng = engine(&policy(4));
    let mut mutated = profiles.clone();
    let mut sizes = Vec::new();
    for round in 0..8u32 {
        let tuples = if round.is_multiple_of(2) {
            vec![PrivacyTuple::from_point("ops", pt(7, 7, 70))]
        } else {
            vec![
                PrivacyTuple::from_point("pr", pt(2, 2, 20)),
                PrivacyTuple::from_point("research", pt(3, 1, 45)),
            ]
        };
        let mut flap = PopulationDelta::new();
        flap.push(DeltaOp::SetAttributePrefs {
            id: victim,
            attribute: "weight".into(),
            tuples,
        });
        pop.apply_delta(&flap).unwrap();
        pop.debug_validate();
        flap.apply_to_profiles(&mut mutated);
        sizes.push(pop.resident_bytes());

        let fresh = CompiledPopulation::from_profiles(&mutated);
        assert_eq!(
            serde_json::to_string(&eng.audit_compiled(&pop)).unwrap(),
            serde_json::to_string(&eng.audit_compiled(&fresh)).unwrap(),
            "round {round}"
        );
        assert_eq!(eng.counts(&pop), eng.counts(&fresh), "round {round}");
    }
    assert!(
        sizes[2..].windows(2).all(|w| w[0] == w[1]),
        "footprint flat after both shapes exist: {sizes:?}"
    );
}
